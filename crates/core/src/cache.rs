//! The domain privilege cache (§4.3): small fully-associative LRU caches
//! for HPT entries and SGT entries.

/// Hit/miss/flush counters for one cache.
///
/// This is the observability layer's [`isa_obs::CacheCounters`] — the
/// one definition of hit-rate math shared by every bench table and run
/// report in the workspace.
pub use isa_obs::CacheCounters as CacheStats;

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    payload: [u64; 4],
    stamp: u64,
}

/// A fully-associative LRU cache with 256-bit payloads.
///
/// The prototype implements the HPT cache as three separate caches plus
/// one SGT cache (§7 "Configuration"); all four are instances of this
/// structure. A capacity of zero models the `8E.N` configuration's
/// missing SGT cache: every lookup misses.
#[derive(Debug, Clone)]
pub struct PrivCache {
    entries: Vec<Entry>,
    capacity: usize,
    tick: u64,
    /// Counters for the evaluation (§7.1 reports hit rates).
    pub stats: CacheStats,
}

impl PrivCache {
    /// A cache with room for `capacity` entries (0 = always miss).
    pub fn new(capacity: usize) -> PrivCache {
        PrivCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of entries the cache can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `tag`, updating LRU order and statistics.
    pub fn lookup(&mut self, tag: u64) -> Option<[u64; 4]> {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.tag == tag) {
            e.stamp = self.tick;
            self.stats.hits += 1;
            return Some(e.payload);
        }
        self.stats.misses += 1;
        None
    }

    /// Probe without touching LRU order or statistics (prefetch checks).
    pub fn contains(&self, tag: u64) -> bool {
        self.entries.iter().any(|e| e.tag == tag)
    }

    /// Insert `tag` → `payload`, evicting the least-recently-used entry
    /// if full. No-op for zero-capacity caches.
    pub fn insert(&mut self, tag: u64, payload: [u64; 4]) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.tag == tag) {
            e.payload = payload;
            e.stamp = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push(Entry {
            tag,
            payload,
            stamp: self.tick,
        });
    }

    /// Drop every entry (the `pflh` instruction); returns the number of
    /// live entries discarded so flush events can report it.
    pub fn flush(&mut self) -> u64 {
        let discarded = self.entries.len() as u64;
        self.stats.flushes += discarded;
        self.entries.clear();
        discarded
    }

    /// Current number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = PrivCache::new(4);
        assert_eq!(c.lookup(7), None);
        c.insert(7, [1, 2, 3, 4]);
        assert_eq!(c.lookup(7), Some([1, 2, 3, 4]));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PrivCache::new(2);
        c.insert(1, [1; 4]);
        c.insert(2, [2; 4]);
        c.lookup(1); // 1 is now more recent than 2
        c.insert(3, [3; 4]); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn reinsert_updates_payload_without_eviction() {
        let mut c = PrivCache::new(2);
        c.insert(1, [1; 4]);
        c.insert(2, [2; 4]);
        c.insert(1, [9; 4]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(1), Some([9; 4]));
        assert!(c.contains(2));
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut c = PrivCache::new(0);
        c.insert(1, [1; 4]);
        assert_eq!(c.lookup(1), None);
        assert_eq!(c.stats.hits, 0);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn flush_empties_and_counts() {
        let mut c = PrivCache::new(4);
        c.insert(1, [0; 4]);
        c.insert(2, [0; 4]);
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.stats.flushes, 2);
        assert_eq!(c.lookup(1), None);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = PrivCache::new(4);
        assert_eq!(c.stats.hit_rate(), 1.0);
        c.lookup(1);
        c.insert(1, [0; 4]);
        for _ in 0..99 {
            c.lookup(1);
        }
        assert!((c.stats.hit_rate() - 0.99).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let mut c = PrivCache::new(8);
        for i in 0..1000 {
            c.insert(i, [i; 4]);
            assert!(c.len() <= 8);
        }
        // The most recent 8 tags must all be present.
        for i in 992..1000 {
            assert!(c.contains(i), "tag {i}");
        }
    }
}
