//! The domain privilege cache (§4.3): small fully-associative LRU caches
//! for HPT entries and SGT entries.
//!
//! Every entry carries a *seal* over `(tag, payload)` computed at insert
//! time. When integrity checking is on (the default), a hit re-verifies
//! the seal: a mismatch means the line was corrupted in place (a soft
//! error injected by the chaos harness), so the line is scrubbed, the
//! detection is counted, and the lookup reports a miss — the caller
//! re-walks the trusted tables, which is the recovery path. With
//! integrity off the corrupt payload is served as-is, modeling the
//! unprotected window the layer closes.

/// Hit/miss/flush counters for one cache.
///
/// This is the observability layer's [`isa_obs::CacheCounters`] — the
/// one definition of hit-rate math shared by every bench table and run
/// report in the workspace.
pub use isa_obs::CacheCounters as CacheStats;

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    payload: [u64; 4],
    stamp: u64,
    seal: u64,
}

/// Seal over one cache line: tag-keyed and payload-keyed so any single
/// bit flip in either breaks verification.
fn line_seal(tag: u64, payload: &[u64; 4]) -> u64 {
    let mut s = isa_fault::mix64(tag);
    for w in payload {
        s = isa_fault::mix64(s ^ *w);
    }
    s
}

/// A fully-associative LRU cache with 256-bit payloads.
///
/// The prototype implements the HPT cache as three separate caches plus
/// one SGT cache (§7 "Configuration"); all four are instances of this
/// structure. A capacity of zero models the `8E.N` configuration's
/// missing SGT cache: every lookup misses.
#[derive(Debug, Clone)]
pub struct PrivCache {
    entries: Vec<Entry>,
    capacity: usize,
    tick: u64,
    integrity: bool,
    /// Counters for the evaluation (§7.1 reports hit rates).
    pub stats: CacheStats,
    /// Corrupted lines detected (seal mismatch) and scrubbed on lookup.
    pub corrupt_detected: u64,
}

impl PrivCache {
    /// A cache with room for `capacity` entries (0 = always miss).
    pub fn new(capacity: usize) -> PrivCache {
        PrivCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            integrity: true,
            stats: CacheStats::default(),
            corrupt_detected: 0,
        }
    }

    /// Enable or disable seal verification on hits (on by default).
    pub fn set_integrity(&mut self, on: bool) {
        self.integrity = on;
    }

    /// Number of entries the cache can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `tag`, updating LRU order and statistics. A hit whose
    /// seal fails verification is scrubbed and reported as a miss so
    /// the caller re-walks trusted memory (fail-closed recovery).
    pub fn lookup(&mut self, tag: u64) -> Option<[u64; 4]> {
        self.tick += 1;
        if let Some(i) = self.entries.iter().position(|e| e.tag == tag) {
            let e = &mut self.entries[i];
            if !self.integrity || e.seal == line_seal(e.tag, &e.payload) {
                e.stamp = self.tick;
                self.stats.hits += 1;
                return Some(e.payload);
            }
            self.entries.swap_remove(i);
            self.corrupt_detected += 1;
        }
        self.stats.misses += 1;
        None
    }

    /// Probe without touching LRU order or statistics (prefetch checks).
    pub fn contains(&self, tag: u64) -> bool {
        self.entries.iter().any(|e| e.tag == tag)
    }

    /// Insert `tag` → `payload`, evicting the least-recently-used entry
    /// if full. No-op for zero-capacity caches.
    pub fn insert(&mut self, tag: u64, payload: [u64; 4]) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.tag == tag) {
            e.payload = payload;
            e.seal = line_seal(tag, &payload);
            e.stamp = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push(Entry {
            tag,
            payload,
            stamp: self.tick,
            seal: line_seal(tag, &payload),
        });
    }

    /// Chaos-harness hook: flip `bit` (mod 256) of the payload of the
    /// resident entry selected by `pick` (mod occupancy), leaving its
    /// seal untouched. Returns false when the cache is empty.
    pub fn corrupt_entry(&mut self, pick: u64, bit: u32) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let i = (pick % self.entries.len() as u64) as usize;
        let bit = bit % 256;
        self.entries[i].payload[(bit / 64) as usize] ^= 1u64 << (bit % 64);
        true
    }

    /// Chaos-harness hook: silently drop the resident entry selected by
    /// `pick` (decayed valid bit — no flush accounting). Returns false
    /// when the cache is empty.
    pub fn evict_entry(&mut self, pick: u64) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let i = (pick % self.entries.len() as u64) as usize;
        self.entries.swap_remove(i);
        true
    }

    /// Chaos-harness hook for targeted tests: flip `bit` (mod 256) of
    /// the payload of the entry with exactly `tag`, if resident.
    pub fn corrupt_tagged(&mut self, tag: u64, bit: u32) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.tag == tag) {
            let bit = bit % 256;
            e.payload[(bit / 64) as usize] ^= 1u64 << (bit % 64);
            true
        } else {
            false
        }
    }

    /// Drop every entry (the `pflh` instruction); returns the number of
    /// live entries discarded so flush events can report it.
    pub fn flush(&mut self) -> u64 {
        let discarded = self.entries.len() as u64;
        self.stats.flushes += discarded;
        self.entries.clear();
        discarded
    }

    /// Current number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    // ---- snapshot/restore ----

    /// Export all mutable state (snapshot seam). Entry seals are
    /// exported verbatim — NOT recomputed — so a snapshot taken after a
    /// chaos-harness corruption restores to the same pending-detection
    /// state instead of silently "healing" the corrupt line.
    pub fn export_state(&self) -> PrivCacheState {
        PrivCacheState {
            entries: self
                .entries
                .iter()
                .map(|e| (e.tag, e.payload, e.stamp, e.seal))
                .collect(),
            tick: self.tick,
            stats: self.stats,
            corrupt_detected: self.corrupt_detected,
        }
    }

    /// Restore state exported by [`PrivCache::export_state`]. Entries
    /// beyond the configured capacity are dropped (shape mismatch fails
    /// toward an emptier, always-re-walking cache, never a panic).
    pub fn import_state(&mut self, s: &PrivCacheState) {
        self.entries.clear();
        for &(tag, payload, stamp, seal) in s.entries.iter().take(self.capacity) {
            self.entries.push(Entry {
                tag,
                payload,
                stamp,
                seal,
            });
        }
        self.tick = s.tick;
        self.stats = s.stats;
        self.corrupt_detected = s.corrupt_detected;
    }
}

/// Plain-data image of one [`PrivCache`], produced by
/// [`PrivCache::export_state`]. The `isa-replay` crate serializes this
/// into the machine snapshot container.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrivCacheState {
    /// Resident lines in storage order: `(tag, payload, stamp, seal)`.
    /// Seals are carried verbatim; see [`PrivCache::export_state`].
    pub entries: Vec<(u64, [u64; 4], u64, u64)>,
    /// LRU clock.
    pub tick: u64,
    /// Hit/miss/flush counters.
    pub stats: CacheStats,
    /// Scrubbed-corruption count.
    pub corrupt_detected: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = PrivCache::new(4);
        assert_eq!(c.lookup(7), None);
        c.insert(7, [1, 2, 3, 4]);
        assert_eq!(c.lookup(7), Some([1, 2, 3, 4]));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PrivCache::new(2);
        c.insert(1, [1; 4]);
        c.insert(2, [2; 4]);
        c.lookup(1); // 1 is now more recent than 2
        c.insert(3, [3; 4]); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn reinsert_updates_payload_without_eviction() {
        let mut c = PrivCache::new(2);
        c.insert(1, [1; 4]);
        c.insert(2, [2; 4]);
        c.insert(1, [9; 4]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(1), Some([9; 4]));
        assert!(c.contains(2));
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut c = PrivCache::new(0);
        c.insert(1, [1; 4]);
        assert_eq!(c.lookup(1), None);
        assert_eq!(c.stats.hits, 0);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn flush_empties_and_counts() {
        let mut c = PrivCache::new(4);
        c.insert(1, [0; 4]);
        c.insert(2, [0; 4]);
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.stats.flushes, 2);
        assert_eq!(c.lookup(1), None);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = PrivCache::new(4);
        assert_eq!(c.stats.hit_rate(), 1.0);
        c.lookup(1);
        c.insert(1, [0; 4]);
        for _ in 0..99 {
            c.lookup(1);
        }
        assert!((c.stats.hit_rate() - 0.99).abs() < 1e-9);
    }

    #[test]
    fn corrupt_line_is_scrubbed_and_counted() {
        let mut c = PrivCache::new(4);
        c.insert(7, [1, 2, 3, 4]);
        assert!(c.corrupt_tagged(7, 5));
        // Integrity on: the hit fails seal verification, the line is
        // scrubbed, the lookup reports a miss.
        assert_eq!(c.lookup(7), None);
        assert_eq!(c.corrupt_detected, 1);
        assert!(!c.contains(7));
        // The re-walked insert verifies again.
        c.insert(7, [1, 2, 3, 4]);
        assert_eq!(c.lookup(7), Some([1, 2, 3, 4]));
    }

    #[test]
    fn integrity_off_serves_corrupt_payload() {
        let mut c = PrivCache::new(4);
        c.set_integrity(false);
        c.insert(7, [1, 2, 3, 4]);
        assert!(c.corrupt_tagged(7, 0));
        assert_eq!(c.lookup(7), Some([0, 2, 3, 4]));
        assert_eq!(c.corrupt_detected, 0);
    }

    #[test]
    fn evict_entry_silently_drops() {
        let mut c = PrivCache::new(4);
        c.insert(1, [1; 4]);
        assert!(c.evict_entry(0));
        assert!(c.is_empty());
        assert_eq!(c.stats.flushes, 0);
        assert!(!c.evict_entry(0));
    }

    #[test]
    fn corrupt_empty_cache_is_noop() {
        let mut c = PrivCache::new(4);
        assert!(!c.corrupt_entry(3, 8));
        assert!(!c.corrupt_tagged(1, 0));
    }

    #[test]
    fn export_import_preserves_pending_corruption() {
        let mut c = PrivCache::new(4);
        c.insert(7, [1, 2, 3, 4]);
        c.insert(9, [5, 6, 7, 8]);
        c.lookup(9);
        assert!(c.corrupt_tagged(7, 5));
        let state = c.export_state();
        // Restore into a fresh cache: the corrupt line must still be
        // corrupt (seal carried verbatim, not recomputed).
        let mut r = PrivCache::new(4);
        r.import_state(&state);
        assert_eq!(r.export_state(), state, "re-export must be stable");
        assert_eq!(r.lookup(7), None, "corruption must survive restore");
        assert_eq!(r.corrupt_detected, 1);
        assert_eq!(r.lookup(9), Some([5, 6, 7, 8]));
        // Stats continued from the snapshot, not from zero.
        assert_eq!(r.stats.hits, c.stats.hits + 1);
    }

    #[test]
    fn import_clamps_to_capacity() {
        let mut big = PrivCache::new(8);
        for i in 0..8 {
            big.insert(i, [i; 4]);
        }
        let mut small = PrivCache::new(2);
        small.import_state(&big.export_state());
        assert_eq!(small.len(), 2);
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let mut c = PrivCache::new(8);
        for i in 0..1000 {
            c.insert(i, [i; 4]);
            assert!(c.len() <= 8);
        }
        // The most recent 8 tags must all be present.
        for i in 992..1000 {
            assert!(c.contains(i), "tag {i}");
        }
    }
}
