//! The Privilege Check Unit (PCU) — ISA-Grid's hardware extension
//! (§3.3, §4), implemented against the `isa-sim` [`Extension`] seam.

use isa_obs::{
    AuditKind, AuditLog, AuditRecord, CacheKind, CheckKind, Counters, TraceEvent, TraceSink,
};
use isa_sim::csr::addr;
use isa_sim::{Bus, CpuState, Decoded, Exception, ExtEvents, Extension, Flow, Kind, Priv};

use crate::cache::{CacheStats, PrivCache, PrivCacheState};
use crate::domain::{DomainId, DomainSpec, GateId, GateSpec};
use crate::integrity::{SealStore, SealVerdict};
use crate::layout::{
    mask_slot, GridLayout, INST_BITMAP_WORDS, MASK_SLOTS, REG_GROUPS, REG_GROUP_CSRS,
    SGT_FLAG_VALID,
};
use crate::shootdown::{ShootdownCell, FLUSH_CYCLES_PER_ENTRY};
use isa_fault::{CacheSel, FaultKind, FaultPlan};
use std::sync::Arc;

/// Default for [`PcuConfig::shootdown_deadline_polls`]: how many commit
/// polls a pending shootdown may go undelivered (due to injected
/// drops/delays) before the PCU gives up retrying, flushes, and faults
/// the offending hart (`GridIntegrityFault` on the epoch).
pub const SHOOTDOWN_DEADLINE_POLLS: u32 = 16;

/// Sizing of the domain privilege cache (§4.3, §7 "Configuration").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcuConfig {
    /// Entries in the instruction-bitmap HPT cache.
    pub inst_cache: usize,
    /// Entries in the register-bitmap HPT cache.
    pub reg_cache: usize,
    /// Entries in the bit-mask-array HPT cache.
    pub mask_cache: usize,
    /// Entries in the SGT cache (0 = no SGT cache, the `8E.N` config).
    pub sgt_cache: usize,
    /// Enable the instruction-privilege register cache bypass (§4.3
    /// "Cache Bypass For Saving Energy").
    pub bypass: bool,
    /// Implement the three HPT caches as one unified cache with typed
    /// tags (§4.3: "may improve the overall hit rate but incur increased
    /// hardware complexity"). Entry count = `inst_cache`.
    pub unified_hpt: bool,
    /// Entries in the Draco-style legal-instruction cache (§8 "Cache
    /// Optimization"): caches (domain, instruction bytes) pairs whose
    /// check already passed, skipping the check logic entirely on a hit.
    /// 0 disables it. Value-dependent checks (CSR writes under a
    /// bit-mask) are never short-circuited.
    pub legal_cache: usize,
    /// Fail-closed integrity layer: verify table-word seals on every
    /// Grid Cache refill and cache-line seals on every hit, resolving
    /// corruption as scrub-and-re-walk or deny + `GridIntegrityFault`.
    /// On by default; turn off only to demonstrate the unprotected
    /// stale-allow window.
    pub integrity: bool,
    /// Commit polls a pending shootdown may stay undelivered before the
    /// PCU restores coherence by flushing anyway and faults the hart.
    /// Default [`SHOOTDOWN_DEADLINE_POLLS`]; the chaos sweep compresses
    /// or relaxes the window through this knob.
    pub shootdown_deadline_polls: u32,
}

impl PcuConfig {
    /// The paper's `16E.` configuration: 16 entries per cache.
    pub fn sixteen_e() -> PcuConfig {
        PcuConfig {
            inst_cache: 16,
            reg_cache: 16,
            mask_cache: 16,
            sgt_cache: 16,
            bypass: true,
            unified_hpt: false,
            legal_cache: 0,
            integrity: true,
            shootdown_deadline_polls: SHOOTDOWN_DEADLINE_POLLS,
        }
    }

    /// The paper's `8E.` configuration: 8 entries per cache.
    pub fn eight_e() -> PcuConfig {
        PcuConfig {
            inst_cache: 8,
            reg_cache: 8,
            mask_cache: 8,
            sgt_cache: 8,
            ..Self::sixteen_e()
        }
    }

    /// The paper's `8E.N` configuration: 8-entry HPT caches, no SGT cache.
    pub fn eight_e_n() -> PcuConfig {
        PcuConfig {
            sgt_cache: 0,
            ..Self::eight_e()
        }
    }

    /// `8E.` with the cache bypass disabled (energy ablation of §4.3).
    pub fn eight_e_no_bypass() -> PcuConfig {
        PcuConfig {
            bypass: false,
            ..Self::eight_e()
        }
    }

    /// `8E.` with a unified HPT cache of 24 entries (same total storage
    /// as three 8-entry caches).
    pub fn unified_24e() -> PcuConfig {
        PcuConfig {
            inst_cache: 24,
            unified_hpt: true,
            ..Self::eight_e()
        }
    }

    /// `8E.` plus a Draco-style legal-instruction cache (§8).
    pub fn eight_e_draco(entries: usize) -> PcuConfig {
        PcuConfig {
            legal_cache: entries,
            ..Self::eight_e()
        }
    }

    /// Start building a configuration field by field; the builder's
    /// preset shorthands (`.sixteen_e()`, …) load a named configuration
    /// as the starting point.
    ///
    /// ```
    /// use isa_grid::PcuConfig;
    /// let cfg = PcuConfig::builder().sixteen_e().sgt_cache(32).build();
    /// assert_eq!(cfg.inst_cache, 16);
    /// assert_eq!(cfg.sgt_cache, 32);
    /// ```
    pub fn builder() -> PcuConfigBuilder {
        PcuConfigBuilder {
            cfg: PcuConfig::eight_e(),
        }
    }
}

/// Builder for [`PcuConfig`] — the supported way to construct
/// non-preset configurations (instead of bare struct literals).
#[derive(Debug, Clone)]
pub struct PcuConfigBuilder {
    cfg: PcuConfig,
}

impl PcuConfigBuilder {
    /// Load the `16E.` preset as the starting point.
    pub fn sixteen_e(mut self) -> Self {
        self.cfg = PcuConfig::sixteen_e();
        self
    }

    /// Load the `8E.` preset as the starting point.
    pub fn eight_e(mut self) -> Self {
        self.cfg = PcuConfig::eight_e();
        self
    }

    /// Load the `8E.N` preset as the starting point.
    pub fn eight_e_n(mut self) -> Self {
        self.cfg = PcuConfig::eight_e_n();
        self
    }

    /// Entries in the instruction-bitmap HPT cache.
    pub fn inst_cache(mut self, entries: usize) -> Self {
        self.cfg.inst_cache = entries;
        self
    }

    /// Entries in the register-bitmap HPT cache.
    pub fn reg_cache(mut self, entries: usize) -> Self {
        self.cfg.reg_cache = entries;
        self
    }

    /// Entries in the bit-mask-array HPT cache.
    pub fn mask_cache(mut self, entries: usize) -> Self {
        self.cfg.mask_cache = entries;
        self
    }

    /// Entries in the SGT cache (0 disables it, as in `8E.N`).
    pub fn sgt_cache(mut self, entries: usize) -> Self {
        self.cfg.sgt_cache = entries;
        self
    }

    /// Enable or disable the instruction-privilege register bypass.
    pub fn bypass(mut self, on: bool) -> Self {
        self.cfg.bypass = on;
        self
    }

    /// Use one unified HPT cache with typed tags instead of three.
    pub fn unified_hpt(mut self, on: bool) -> Self {
        self.cfg.unified_hpt = on;
        self
    }

    /// Entries in the Draco-style legal-instruction cache (0 disables).
    pub fn legal_cache(mut self, entries: usize) -> Self {
        self.cfg.legal_cache = entries;
        self
    }

    /// Enable or disable the fail-closed integrity layer (on by
    /// default).
    pub fn integrity(mut self, on: bool) -> Self {
        self.cfg.integrity = on;
        self
    }

    /// Commit polls a pending shootdown may stay undelivered before the
    /// PCU flushes anyway and faults the hart (default
    /// [`SHOOTDOWN_DEADLINE_POLLS`]).
    pub fn shootdown_deadline_polls(mut self, polls: u32) -> Self {
        self.cfg.shootdown_deadline_polls = polls;
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> PcuConfig {
        self.cfg
    }
}

impl Default for PcuConfig {
    fn default() -> Self {
        PcuConfig::eight_e()
    }
}

/// The ISA-Grid register file of Table 2.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct GridRegs {
    domain: u64,
    pdomain: u64,
    domain_nr: u64,
    csr_cap: u64,
    csr_mask: u64,
    inst_cap: u64,
    gate_addr: u64,
    gate_nr: u64,
    hcsp: u64,
    hcsb: u64,
    hcsl: u64,
    tmemb: u64,
    tmeml: u64,
}

/// Aggregate PCU event counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PcuStats {
    /// Instruction privilege checks performed (active domains only).
    pub inst_checks: u64,
    /// Explicit CSR privilege checks performed.
    pub csr_checks: u64,
    /// `hccall`/`hccalls` executed.
    pub gate_calls: u64,
    /// `hcrets` executed.
    pub gate_returns: u64,
    /// Privilege violations raised.
    pub faults: u64,
    /// `pfch` instructions executed.
    pub prefetches: u64,
    /// `pflh` instructions executed.
    pub flushes: u64,
    /// Legal-instruction-cache hits (checks skipped entirely).
    pub legal_hits: u64,
    /// Physical accesses blocked by the trusted-memory fence.
    pub tmem_denials: u64,
    /// Cross-hart shootdowns this PCU published (table mutations and
    /// PCU fences).
    pub shootdowns_sent: u64,
    /// Shootdowns this PCU honored by flushing before its next commit.
    pub shootdowns_taken: u64,
    /// Live cache entries discarded by shootdown flushes.
    pub shootdown_flushed: u64,
    /// Modeled cycles spent re-warming caches after shootdowns.
    pub shootdown_flush_cycles: u64,
}

/// Per-cache statistics snapshot.
///
/// This is the observability layer's [`isa_obs::CacheBank`]: the same
/// `inst`/`reg`/`mask`/`sgt` fields as before, plus the legal-cache
/// tally that previously needed a separate accessor.
pub type GridCacheStats = isa_obs::CacheBank;

/// The thread-shippable essence of a configured [`Pcu`]: cache
/// configuration, trusted-memory layout and Table 2 register values,
/// plus a handle on the machine's shared seal store and a checksum over
/// the register file. See [`Pcu::snapshot`].
#[derive(Debug, Clone)]
pub struct PcuSnapshot {
    cfg: PcuConfig,
    layout: Option<GridLayout>,
    regs: GridRegs,
    seals: Arc<SealStore>,
    seal: u64,
}

/// Checksum over the Table 2 register file, stamped into snapshots and
/// re-verified at [`PcuSnapshot::build`]: a bit flipped in cached
/// snapshot state is detected before the mirror ever checks anything.
fn regs_seal(regs: &GridRegs) -> u64 {
    let fields = [
        regs.domain,
        regs.pdomain,
        regs.domain_nr,
        regs.csr_cap,
        regs.csr_mask,
        regs.inst_cap,
        regs.gate_addr,
        regs.gate_nr,
        regs.hcsp,
        regs.hcsb,
        regs.hcsl,
        regs.tmemb,
        regs.tmeml,
    ];
    let mut s = isa_fault::SEED_REMAP;
    for f in fields {
        s = isa_fault::mix64(s ^ f);
    }
    s
}

impl PcuSnapshot {
    /// Reconstruct a PCU from the snapshot: same tables and registers,
    /// cold private caches, zeroed statistics (the same contract as
    /// [`Pcu::mirror`]). Trusted memory is not touched. If the register
    /// file fails checksum verification (a fault was injected with
    /// [`PcuSnapshot::corrupt`]) the PCU comes up *poisoned*: it denies
    /// every non-M-mode check fail-closed rather than enforcing — or
    /// silently skipping — a corrupted policy.
    pub fn build(&self) -> Pcu {
        let mut p = Pcu::new(self.cfg);
        p.layout = self.layout;
        p.regs = self.regs;
        p.seals = Arc::clone(&self.seals);
        if self.cfg.integrity && regs_seal(&self.regs) != self.seal {
            p.poisoned = true;
        }
        p
    }

    /// Chaos-harness hook: flip `bit` of one Table 2 register word
    /// (selected by `entropy`) *without* updating the checksum,
    /// modeling corruption of cached PCU state in transit.
    pub fn corrupt(&mut self, entropy: u64, bit: u32) {
        let mask = 1u64 << (bit % 64);
        let r = &mut self.regs;
        match entropy % 13 {
            0 => r.domain ^= mask,
            1 => r.pdomain ^= mask,
            2 => r.domain_nr ^= mask,
            3 => r.csr_cap ^= mask,
            4 => r.csr_mask ^= mask,
            5 => r.inst_cap ^= mask,
            6 => r.gate_addr ^= mask,
            7 => r.gate_nr ^= mask,
            8 => r.hcsp ^= mask,
            9 => r.hcsb ^= mask,
            10 => r.hcsl ^= mask,
            11 => r.tmemb ^= mask,
            _ => r.tmeml ^= mask,
        }
    }
}

/// Tag-space prefixes when the three HPT caches share one storage.
const UTAG_INST: u64 = 1 << 60;
const UTAG_REG: u64 = 2 << 60;
const UTAG_MASK: u64 = 3 << 60;

/// The instruction-privilege register: the cache-bypass latch holding the
/// current domain's instruction bitmap (§4.3).
#[derive(Debug, Default, Clone, Copy)]
struct InstPrivReg {
    domain: u64,
    words: [u64; INST_BITMAP_WORDS],
    valid: bool,
}

/// The Privilege Check Unit.
///
/// Plug it into a [`isa_sim::Machine`] and configure domains and gates
/// through the host-side API (which plays the role of domain-0 software
/// writing the in-memory structures):
///
/// ```
/// use isa_grid::{GridLayout, Pcu, PcuConfig, DomainSpec, GateSpec, DomainId};
/// use isa_sim::{Machine, Bus};
///
/// let mut m = Machine::new(Pcu::new(PcuConfig::eight_e()));
/// let layout = GridLayout::new(0x8380_0000, 1 << 20);
/// m.ext.install(&mut m.bus, layout);
/// let d = m.ext.add_domain(&mut m.bus, &DomainSpec::compute_only());
/// let g = m.ext.add_gate(&mut m.bus, GateSpec {
///     gate_addr: 0x8000_0000,
///     dest_addr: 0x8000_1000,
///     dest_domain: d,
/// });
/// assert_eq!(d, DomainId(1));
/// assert_eq!(m.ext.current_domain(), DomainId::INIT);
/// ```
#[derive(Debug)]
pub struct Pcu {
    cfg: PcuConfig,
    layout: Option<GridLayout>,
    regs: GridRegs,
    inst_cache: PrivCache,
    reg_cache: PrivCache,
    mask_cache: PrivCache,
    sgt_cache: PrivCache,
    legal_cache: PrivCache,
    ipr: InstPrivReg,
    ev: ExtEvents,
    trace: TraceSink,
    /// SMP coherence cell shared with the other harts' PCUs, plus the
    /// hart this PCU belongs to. `None` on single-hart machines.
    shoot: Option<Arc<ShootdownCell>>,
    hart: usize,
    /// Aggregate counters for the evaluation harnesses.
    pub stats: PcuStats,
    /// Structured log of every denied check (bounded; always on — the
    /// cost lands only on the rare fault path and never adds modeled
    /// cycles).
    audit: AuditLog,
    /// Seal registry over the trusted-memory tables, shared by every
    /// mirror of this machine so legitimate cross-hart updates never
    /// false-positive.
    seals: Arc<SealStore>,
    /// Deterministic fault schedule, when the chaos harness is attached.
    faults: Option<FaultPlan>,
    /// Instruction-check commits observed (drives the fault schedule).
    commits: u64,
    /// Set when snapshot verification failed: deny everything outside
    /// M-mode (fail closed on undecodable PCU state).
    poisoned: bool,
    /// Outstanding injected shootdown delivery failures (drops/delays).
    shoot_defer: u32,
    /// Consecutive polls the current pending shootdown has gone
    /// undelivered; bounded by [`SHOOTDOWN_DEADLINE_POLLS`].
    shoot_defer_polls: u32,
    /// Fault-injection/detection tallies.
    fstats: FaultLayerStats,
    /// Cache scrubs already folded into `fstats` (reconciliation mark).
    scrubs_seen: u64,
    /// Test-only seeded bug: when set, a failed instruction-bitmap check
    /// is *not* enforced — the forbidden instruction executes anyway.
    /// Exists so the differential oracle has a known-bad PCU to catch;
    /// never set outside tests.
    skip_inst_check: bool,
}

/// Tallies of the fail-closed integrity layer, mapped into the
/// `run.fault_*` counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultLayerStats {
    /// Faults the attached plan actually applied.
    pub injected: u64,
    /// Corruptions detected (seal mismatch, scrub, poisoned snapshot,
    /// expired shootdown).
    pub detected: u64,
    /// Detections recovered in place (scrub + re-walk) without a trap.
    pub recovered: u64,
    /// Detections resolved as deny + architectural trap.
    pub denied: u64,
    /// Shootdown deliveries that blew the bounded-backoff deadline.
    pub shootdown_expired: u64,
}

/// Plain-data image of every piece of mutable [`Pcu`] state, produced
/// by [`Pcu::export_state`] and consumed by [`Pcu::import_state`].
///
/// Excluded on purpose: the [`PcuConfig`] (part of the machine recipe,
/// which the restoring caller rebuilds), the trace sink and hart id
/// (host-side attachments), the shared [`SealStore`] and
/// [`crate::ShootdownCell`] (exported once per machine, not per PCU),
/// the per-step event accumulator (always empty at step boundaries),
/// and the test-only seeded-bug switch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcuState {
    /// The 13 Grid CSRs in address order: `domain`, `pdomain`,
    /// `domain_nr`, `csr_cap`, `csr_mask`, `inst_cap`, `gate_addr`,
    /// `gate_nr`, `hcsp`, `hcsb`, `hcsl`, `tmemb`, `tmeml`.
    pub regs: [u64; 13],
    /// Installed trusted-memory layout, if any.
    pub layout: Option<GridLayout>,
    /// Instruction-bitmap shadow register: owning domain.
    pub ipr_domain: u64,
    /// Instruction-bitmap shadow register: bitmap words.
    pub ipr_words: [u64; INST_BITMAP_WORDS],
    /// Instruction-bitmap shadow register: valid bit.
    pub ipr_valid: bool,
    /// HPT instruction-bitmap cache image.
    pub inst_cache: PrivCacheState,
    /// HPT register-bitmap cache image.
    pub reg_cache: PrivCacheState,
    /// HPT mask-slot cache image.
    pub mask_cache: PrivCacheState,
    /// SGT gate-entry cache image.
    pub sgt_cache: PrivCacheState,
    /// Legal-instruction decision cache image.
    pub legal_cache: PrivCacheState,
    /// Check/fault/flush counters.
    pub stats: PcuStats,
    /// Fail-closed integrity-layer counters.
    pub fstats: FaultLayerStats,
    /// Scrub recoveries already reconciled into `fstats`.
    pub scrubs_seen: u64,
    /// Commit counter driving fault-plan firing.
    pub commits: u64,
    /// Fail-closed poison latch.
    pub poisoned: bool,
    /// Remaining deferred shootdown polls (fault-injection backoff).
    pub shoot_defer: u32,
    /// Polls consumed while deferring the pending shootdown.
    pub shoot_defer_polls: u32,
    /// Attached fault schedule with its live cursor, if any.
    pub faults: Option<FaultPlan>,
    /// Privilege-event audit log.
    pub audit: AuditLog,
}

impl Pcu {
    /// A PCU with the given cache configuration. Until
    /// [`Pcu::install`] runs, the CPU is in domain-0 and nothing is
    /// restricted — exactly the paper's reset state (§4.4).
    pub fn new(cfg: PcuConfig) -> Pcu {
        let mut p = Pcu {
            cfg,
            layout: None,
            regs: GridRegs {
                domain_nr: 1,
                ..GridRegs::default()
            },
            inst_cache: PrivCache::new(cfg.inst_cache),
            reg_cache: PrivCache::new(cfg.reg_cache),
            mask_cache: PrivCache::new(cfg.mask_cache),
            sgt_cache: PrivCache::new(cfg.sgt_cache),
            legal_cache: PrivCache::new(cfg.legal_cache),
            ipr: InstPrivReg::default(),
            ev: ExtEvents::default(),
            trace: TraceSink::off(),
            shoot: None,
            hart: 0,
            stats: PcuStats::default(),
            audit: AuditLog::new(),
            seals: SealStore::new(),
            faults: None,
            commits: 0,
            poisoned: false,
            shoot_defer: 0,
            shoot_defer_polls: 0,
            fstats: FaultLayerStats::default(),
            scrubs_seen: 0,
            skip_inst_check: false,
        };
        if !cfg.integrity {
            p.set_integrity(false);
        }
        p
    }

    /// A fresh PCU for another hart that shares this PCU's installed
    /// tables: same configuration, layout and Table 2 registers (both
    /// harts read the same in-memory structures), but cold private
    /// caches and zeroed statistics. Unlike [`Pcu::install`] it does
    /// *not* touch trusted memory. Carve a per-hart trusted stack with
    /// [`Pcu::set_trusted_stack`] afterwards, and attach the shared
    /// [`ShootdownCell`] with [`Pcu::attach_shootdown`].
    pub fn mirror(&self) -> Pcu {
        self.snapshot().build()
    }

    /// A plain-data snapshot of this PCU's configuration, layout and
    /// Table 2 registers. Unlike `Pcu` itself (which owns a trace
    /// sink), the snapshot is `Send + Sync`, so a parallel runner can
    /// capture it once and [`PcuSnapshot::build`] per-hart mirrors
    /// inside worker threads.
    pub fn snapshot(&self) -> PcuSnapshot {
        PcuSnapshot {
            cfg: self.cfg,
            layout: self.layout,
            regs: self.regs,
            seals: Arc::clone(&self.seals),
            seal: regs_seal(&self.regs),
        }
    }

    /// Attach a deterministic fault schedule (the chaos harness): due
    /// events are applied at instruction-check commit boundaries.
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Enable or disable the fail-closed integrity layer at runtime
    /// (both the table-word seals and the cache-line seals).
    pub fn set_integrity(&mut self, on: bool) {
        self.cfg.integrity = on;
        self.inst_cache.set_integrity(on);
        self.reg_cache.set_integrity(on);
        self.mask_cache.set_integrity(on);
        self.sgt_cache.set_integrity(on);
        self.legal_cache.set_integrity(on);
    }

    /// The integrity layer's injection/detection tallies.
    pub fn fault_stats(&self) -> FaultLayerStats {
        self.fstats
    }

    /// The shared trusted-memory seal store.
    pub fn seal_store(&self) -> &Arc<SealStore> {
        &self.seals
    }

    /// Whether snapshot verification poisoned this PCU (fail-closed
    /// deny-everything mode).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Join the SMP coherence protocol: shootdowns published through
    /// `cell` by other harts flush this PCU's caches before its next
    /// commit, and this PCU's table mutations / fences publish to them.
    pub fn attach_shootdown(&mut self, cell: Arc<ShootdownCell>, hart: usize) {
        assert!(hart < cell.harts(), "hart {hart} outside the cell");
        self.shoot = Some(cell);
        self.hart = hart;
    }

    /// The shared shootdown cell, if this PCU participates in one.
    pub fn shootdown_cell(&self) -> Option<&Arc<ShootdownCell>> {
        self.shoot.as_ref()
    }

    /// Route trace events into `sink`. Share a clone of the same sink
    /// with the [`isa_sim::Machine`] so PCU events interleave with
    /// retire events in commit order.
    pub fn set_tracer(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The sink this PCU emits trace events into.
    pub fn tracer(&self) -> &TraceSink {
        &self.trace
    }

    /// Initialize the in-memory privilege structures: zero the tables and
    /// point the Table 2 base registers at them. This is what domain-0
    /// firmware does right after reset.
    pub fn install(&mut self, bus: &mut Bus, layout: GridLayout) {
        let zero = vec![0u8; (layout.tstack_base() - layout.tmem_base) as usize];
        bus.write_bytes(layout.tmem_base, &zero);
        // Engage the integrity layer over the freshly zeroed tables:
        // absent seals verify against an expected value of 0.
        self.seals.reset(layout.tmem_base, layout.tstack_base());
        self.regs = GridRegs {
            domain: 0,
            pdomain: 0,
            domain_nr: 1, // domain-0 exists implicitly
            csr_cap: layout.csr_cap(),
            csr_mask: layout.csr_mask(),
            inst_cap: layout.inst_cap(),
            gate_addr: layout.gate_addr(),
            gate_nr: 0,
            hcsp: layout.tstack_base(),
            hcsb: layout.tstack_base(),
            hcsl: layout.tmem_end(),
            tmemb: layout.tmem_base,
            tmeml: layout.tmem_end(),
        };
        self.layout = Some(layout);
        self.inst_cache.flush();
        self.reg_cache.flush();
        self.mask_cache.flush();
        self.sgt_cache.flush();
        self.legal_cache.flush();
        self.ipr.valid = false;
        self.publish_shootdown();
    }

    /// The active layout.
    ///
    /// # Panics
    ///
    /// Panics if [`Pcu::install`] has not run.
    pub fn layout(&self) -> GridLayout {
        self.layout.expect("PCU not installed")
    }

    /// Register a new ISA domain by writing its bitmaps and masks into
    /// the HPT (what the domain-0 registration function does at runtime).
    ///
    /// # Panics
    ///
    /// Panics if the PCU is not installed or the domain table is full.
    pub fn add_domain(&mut self, bus: &mut Bus, spec: &DomainSpec) -> DomainId {
        let layout = self.layout();
        let id = self.regs.domain_nr;
        assert!(id < layout.max_domains, "domain table full");
        self.regs.domain_nr += 1;
        for (w, word) in spec.inst_bitmap.iter().enumerate() {
            self.write_sealed(bus, layout.inst_word_addr(id, w), *word);
        }
        self.write_sealed_bytes(bus, layout.reg_group_addr(id, 0), &spec.reg_bits);
        for (s, m) in spec.masks.iter().enumerate() {
            self.write_sealed(bus, layout.mask_addr(id, s), *m);
        }
        DomainId(id)
    }

    /// Re-write the privileges of an existing domain.
    ///
    /// # Panics
    ///
    /// Panics for unregistered domains or domain-0.
    pub fn update_domain(&mut self, bus: &mut Bus, id: DomainId, spec: &DomainSpec) {
        let layout = self.layout();
        assert!(id.0 != 0 && id.0 < self.regs.domain_nr, "unknown {id}");
        for (w, word) in spec.inst_bitmap.iter().enumerate() {
            self.write_sealed(bus, layout.inst_word_addr(id.0, w), *word);
        }
        self.write_sealed_bytes(bus, layout.reg_group_addr(id.0, 0), &spec.reg_bits);
        for (s, m) in spec.masks.iter().enumerate() {
            self.write_sealed(bus, layout.mask_addr(id.0, s), *m);
        }
        // Stale privileges may be cached; domain-0 flushes after updates,
        // and remote harts must flush before their next commit.
        self.inst_cache.flush();
        self.reg_cache.flush();
        self.mask_cache.flush();
        self.legal_cache.flush();
        self.ipr.valid = false;
        self.publish_shootdown();
    }

    /// Register an unforgeable switching gate in the SGT (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if the PCU is not installed, the SGT is full, or the
    /// destination domain does not exist.
    pub fn add_gate(&mut self, bus: &mut Bus, spec: GateSpec) -> GateId {
        let layout = self.layout();
        let id = self.regs.gate_nr;
        assert!(id < layout.max_gates, "SGT full");
        assert!(
            spec.dest_domain.0 < self.regs.domain_nr,
            "gate destination {} not registered",
            spec.dest_domain
        );
        self.regs.gate_nr += 1;
        let e = layout.sgt_entry_addr(id);
        self.write_sealed(bus, e, spec.gate_addr);
        self.write_sealed(bus, e + 8, spec.dest_addr);
        self.write_sealed(bus, e + 16, spec.dest_domain.0);
        self.write_sealed(bus, e + 24, SGT_FLAG_VALID);
        GateId(id)
    }

    /// Allocate a trusted stack for extended gates (`hccalls`/`hcrets`).
    /// `base`/`limit` must lie in trusted memory.
    ///
    /// # Panics
    ///
    /// Panics on a range outside trusted memory.
    pub fn set_trusted_stack(&mut self, base: u64, limit: u64) {
        assert!(
            base >= self.regs.tmemb && limit <= self.regs.tmeml && base <= limit,
            "trusted stack must lie inside trusted memory"
        );
        self.regs.hcsb = base;
        self.regs.hcsp = base;
        self.regs.hcsl = limit;
    }

    /// Save the trusted-stack registers of the current thread (domain-0's
    /// context-switch support, §5.2).
    pub fn save_trusted_stack(&self) -> (u64, u64, u64) {
        (self.regs.hcsp, self.regs.hcsb, self.regs.hcsl)
    }

    /// Restore previously saved trusted-stack registers.
    pub fn restore_trusted_stack(&mut self, sp: u64, sb: u64, sl: u64) {
        self.regs.hcsp = sp;
        self.regs.hcsb = sb;
        self.regs.hcsl = sl;
    }

    /// The domain the core currently runs in.
    pub fn current_domain(&self) -> DomainId {
        DomainId(self.regs.domain)
    }

    /// Force the current domain (testing / reset support only — real
    /// switches go through gates).
    #[doc(hidden)]
    pub fn force_domain(&mut self, d: DomainId) {
        self.regs.pdomain = self.regs.domain;
        self.regs.domain = d.0;
        self.ipr.valid = false;
    }

    /// Chaos-harness hook for targeted tests: flip the permit bit for
    /// `csr` (the read bit, or the write bit when `write`) in the cached
    /// register-bitmap line, if resident. Returns false when the line is
    /// not cached.
    #[doc(hidden)]
    pub fn corrupt_cached_reg_bit(&mut self, csr: u16, write: bool) -> bool {
        let domain = self.regs.domain;
        let group = csr as usize / REG_GROUP_CSRS;
        let unified = self.cfg.unified_hpt;
        let tag = (domain * REG_GROUPS as u64 + group as u64) | if unified { UTAG_REG } else { 0 };
        let bit = ((csr as usize % REG_GROUP_CSRS) * 2 + usize::from(write)) as u32;
        let cache = if unified {
            &mut self.inst_cache
        } else {
            &mut self.reg_cache
        };
        cache.corrupt_tagged(tag, bit)
    }

    /// Committed-instruction count on this hart — the clock the attached
    /// fault schedule is pinned to. Harnesses read it to offset injected
    /// plans past boot.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Chaos-harness hook: flip one bit of domain `id`'s instruction
    /// bitmap in trusted memory *without* resealing — a soft error aimed
    /// at a specific tenant. Local caches are flushed and a shootdown
    /// published so every hart re-walks the corrupt word and resolves it
    /// fail-closed (scrub-or-deny). Returns the flipped word's address;
    /// `None` when the PCU is uninstalled or the domain unregistered.
    #[doc(hidden)]
    pub fn chaos_flip_domain_inst_bit(
        &mut self,
        bus: &mut Bus,
        id: DomainId,
        bit: u32,
    ) -> Option<u64> {
        self.layout?;
        if id.0 == 0 || id.0 >= self.regs.domain_nr {
            return None;
        }
        let word = (bit as usize / 64) % INST_BITMAP_WORDS;
        let addr = self.layout_inst_addr(id.0, word);
        let old = bus.load(addr, 8).unwrap_or(0);
        bus.write_u64(addr, old ^ (1u64 << (bit % 64)));
        self.inst_cache.flush();
        self.reg_cache.flush();
        self.mask_cache.flush();
        self.legal_cache.flush();
        self.ipr.valid = false;
        self.publish_shootdown();
        self.fstats.injected += 1;
        self.note_fault_event();
        self.trace.emit(|| TraceEvent::FaultInjected {
            kind: "chaos_table_flip",
            detail: addr,
        });
        Some(addr)
    }

    /// Chaos-harness hook: defer this hart's next `polls` shootdown
    /// deliveries (as an injected `ShootdownDelay` would), jamming the
    /// coherence window so a subsequent publish can blow the delivery
    /// deadline.
    #[doc(hidden)]
    pub fn chaos_defer_shootdowns(&mut self, polls: u32) {
        self.shoot_defer = self.shoot_defer.saturating_add(polls);
        self.fstats.injected += 1;
        self.note_fault_event();
        let detail = u64::from(polls);
        self.trace.emit(|| TraceEvent::FaultInjected {
            kind: "chaos_shootdown_jam",
            detail,
        });
    }

    /// Legal-instruction-cache statistics (Draco ablation).
    pub fn legal_cache_stats(&self) -> CacheStats {
        self.legal_cache.stats
    }

    /// Snapshot the privilege-cache statistics.
    pub fn cache_stats(&self) -> GridCacheStats {
        GridCacheStats {
            inst: self.inst_cache.stats,
            reg: self.reg_cache.stats,
            mask: self.mask_cache.stats,
            sgt: self.sgt_cache.stats,
            legal: self.legal_cache.stats,
        }
    }

    /// Snapshot everything the PCU counts into the unified
    /// [`Counters`] registry (the timing and run sections are filled in
    /// by whoever owns the timing model and the run loop).
    pub fn counters(&self) -> Counters {
        let mut c = Counters {
            caches: self.cache_stats(),
            ..Counters::default()
        };
        c.checks.inst = self.stats.inst_checks;
        c.checks.csr = self.stats.csr_checks;
        c.checks.faults = self.stats.faults;
        c.checks.tmem_denials = self.stats.tmem_denials;
        c.gates.calls = self.stats.gate_calls;
        c.gates.returns = self.stats.gate_returns;
        c.gates.prefetches = self.stats.prefetches;
        c.gates.flushes = self.stats.flushes;
        c.run.trace_dropped = self.trace.dropped();
        c.run.audit_denied = self.audit.total();
        c.run.fault_injected = self.fstats.injected;
        c.run.fault_detected = self.fstats.detected;
        c.run.fault_recovered = self.fstats.recovered;
        c.run.fault_denied = self.fstats.denied;
        c.run.fault_shootdown_expired = self.fstats.shootdown_expired;
        c.smp.shootdowns = self.stats.shootdowns_sent;
        c.smp.shootdown_acks = self.stats.shootdowns_taken;
        c.smp.flushed_entries = self.stats.shootdown_flushed;
        c.smp.flush_cycles = self.stats.shootdown_flush_cycles;
        c
    }

    // ---- snapshot/restore ----

    /// The attached fault schedule, if any (snapshot seam; the replay
    /// harness clones it — with its live cursor — into machine forks).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Swap in a different trusted-memory seal store. Machine forks
    /// need this: [`Pcu::mirror`]/[`PcuSnapshot::build`] *share* the
    /// store by design (mirror PCUs of one machine verify against one
    /// baseline), so an independent fork must replace it with a
    /// [`SealStore::fork`] copy or its writes would reseal the original.
    pub fn replace_seal_store(&mut self, seals: Arc<SealStore>) {
        self.seals = seals;
    }

    /// Test-only seeded-bug switch: skip enforcement of failed
    /// instruction-bitmap checks. See the field docs; used by the
    /// differential-oracle tests to prove divergence detection.
    #[doc(hidden)]
    pub fn set_skip_inst_check(&mut self, skip: bool) {
        self.skip_inst_check = skip;
    }

    /// Export every piece of mutable PCU state (snapshot seam). The
    /// shared structures — seal store, shootdown cell — are exported
    /// separately, once per machine, by the replay harness; the trace
    /// sink is host-side and excluded. Call at a step boundary (the
    /// per-step event accumulator is excluded because `drain_events`
    /// empties it at the end of every step).
    pub fn export_state(&self) -> PcuState {
        let r = &self.regs;
        PcuState {
            regs: [
                r.domain,
                r.pdomain,
                r.domain_nr,
                r.csr_cap,
                r.csr_mask,
                r.inst_cap,
                r.gate_addr,
                r.gate_nr,
                r.hcsp,
                r.hcsb,
                r.hcsl,
                r.tmemb,
                r.tmeml,
            ],
            layout: self.layout,
            ipr_domain: self.ipr.domain,
            ipr_words: self.ipr.words,
            ipr_valid: self.ipr.valid,
            inst_cache: self.inst_cache.export_state(),
            reg_cache: self.reg_cache.export_state(),
            mask_cache: self.mask_cache.export_state(),
            sgt_cache: self.sgt_cache.export_state(),
            legal_cache: self.legal_cache.export_state(),
            stats: self.stats,
            fstats: self.fstats,
            scrubs_seen: self.scrubs_seen,
            commits: self.commits,
            poisoned: self.poisoned,
            shoot_defer: self.shoot_defer,
            shoot_defer_polls: self.shoot_defer_polls,
            faults: self.faults.clone(),
            audit: self.audit.clone(),
        }
    }

    /// Restore state exported by [`Pcu::export_state`] into a PCU built
    /// with the same [`PcuConfig`]. Cache-line and table seals restore
    /// verbatim (pending corruption survives the round trip); the
    /// shootdown attachment and seal store are left as-is — the caller
    /// restores those shared structures once per machine.
    pub fn import_state(&mut self, s: &PcuState) {
        let [domain, pdomain, domain_nr, csr_cap, csr_mask, inst_cap, gate_addr, gate_nr, hcsp, hcsb, hcsl, tmemb, tmeml] =
            s.regs;
        self.regs = GridRegs {
            domain,
            pdomain,
            domain_nr,
            csr_cap,
            csr_mask,
            inst_cap,
            gate_addr,
            gate_nr,
            hcsp,
            hcsb,
            hcsl,
            tmemb,
            tmeml,
        };
        self.layout = s.layout;
        self.ipr = InstPrivReg {
            domain: s.ipr_domain,
            words: s.ipr_words,
            valid: s.ipr_valid,
        };
        self.inst_cache.import_state(&s.inst_cache);
        self.reg_cache.import_state(&s.reg_cache);
        self.mask_cache.import_state(&s.mask_cache);
        self.sgt_cache.import_state(&s.sgt_cache);
        self.legal_cache.import_state(&s.legal_cache);
        self.stats = s.stats;
        self.fstats = s.fstats;
        self.scrubs_seen = s.scrubs_seen;
        self.commits = s.commits;
        self.poisoned = s.poisoned;
        self.shoot_defer = s.shoot_defer;
        self.shoot_defer_polls = s.shoot_defer_polls;
        self.faults = s.faults.clone();
        self.audit = s.audit.clone();
        self.ev = ExtEvents::default();
    }

    /// Reset cache and check statistics (not the caches themselves).
    pub fn reset_stats(&mut self) {
        self.inst_cache.stats = CacheStats::default();
        self.reg_cache.stats = CacheStats::default();
        self.mask_cache.stats = CacheStats::default();
        self.sgt_cache.stats = CacheStats::default();
        self.legal_cache.stats = CacheStats::default();
        self.stats = PcuStats::default();
    }

    // ---- internals ----

    /// Whether checks apply: M-mode is domain-0 firmware territory, and
    /// domain-0 itself "is given all the privileges by default" (§4.4).
    fn active(&self, cpu: &CpuState) -> bool {
        cpu.priv_level != Priv::M && self.regs.domain != 0
    }

    fn tmem_read(&self, bus: &mut Bus, a: u64) -> u64 {
        bus.load(a, 8).unwrap_or(0)
    }

    /// A trusted-memory read on a Grid Cache refill path: verified
    /// against the seal store when integrity is on. A mismatch means the
    /// word was corrupted outside the architectural write paths; the
    /// walk aborts with `GridIntegrityFault` and the caller resolves the
    /// check as deny.
    fn tmem_read_verified(&mut self, bus: &mut Bus, a: u64) -> Result<u64, Exception> {
        let v = self.tmem_read(bus, a);
        if !self.cfg.integrity {
            return Ok(v);
        }
        match self.seals.verify(a, v) {
            SealVerdict::Ok => Ok(v),
            SealVerdict::Corrupt => Err(Exception::GridIntegrityFault(a)),
        }
    }

    /// Write one trusted-table word through the architectural path and
    /// seal it.
    fn write_sealed(&mut self, bus: &mut Bus, addr: u64, value: u64) {
        bus.write_u64(addr, value);
        self.seals.seal(addr, value);
    }

    /// Write a byte run into the trusted tables and seal every touched
    /// 8-byte word (the table layouts keep these runs word-aligned).
    fn write_sealed_bytes(&mut self, bus: &mut Bus, addr: u64, bytes: &[u8]) {
        bus.write_bytes(addr, bytes);
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.seals
                .seal(addr + (i * 8) as u64, u64::from_le_bytes(w));
        }
    }

    /// Fetch (through the HPT cache) one word of the instruction bitmap.
    fn inst_word(&mut self, bus: &mut Bus, domain: u64, w: usize) -> Result<u64, Exception> {
        let mut tag = domain * INST_BITMAP_WORDS as u64 + w as u64;
        if self.cfg.unified_hpt {
            tag |= UTAG_INST;
        }
        if let Some(p) = self.inst_cache.lookup(tag) {
            self.trace.emit(|| TraceEvent::Cache {
                cache: CacheKind::HptInst,
                hit: true,
            });
            return Ok(p[0]);
        }
        self.trace.emit(|| TraceEvent::Cache {
            cache: CacheKind::HptInst,
            hit: false,
        });
        self.ev.hpt_inst_miss += 1;
        let word = self.tmem_read_verified(bus, self.layout_inst_addr(domain, w))?;
        self.inst_cache.insert(tag, [word, 0, 0, 0]);
        Ok(word)
    }

    fn layout_inst_addr(&self, domain: u64, w: usize) -> u64 {
        self.regs.inst_cap + domain * crate::layout::INST_BITMAP_STRIDE + (w * 8) as u64
    }

    fn layout_reg_group_addr(&self, domain: u64, g: usize) -> u64 {
        self.regs.csr_cap
            + domain * crate::layout::REG_BITMAP_STRIDE
            + (g * REG_GROUP_CSRS * 2 / 8) as u64
    }

    fn layout_mask_addr(&self, domain: u64, s: usize) -> u64 {
        self.regs.csr_mask + domain * crate::layout::MASK_STRIDE + (s * 8) as u64
    }

    /// The current domain's instruction bitmap, via the bypass register
    /// when enabled.
    fn ipr_words(&mut self, bus: &mut Bus) -> Result<[u64; INST_BITMAP_WORDS], Exception> {
        let domain = self.regs.domain;
        if self.cfg.bypass && self.ipr.valid && self.ipr.domain == domain {
            return Ok(self.ipr.words);
        }
        let mut words = [0u64; INST_BITMAP_WORDS];
        for (w, slot) in words.iter_mut().enumerate() {
            *slot = self.inst_word(bus, domain, w)?;
        }
        if self.cfg.bypass {
            self.ipr = InstPrivReg {
                domain,
                words,
                valid: true,
            };
        }
        Ok(words)
    }

    /// Fetch (through the HPT cache) the register-bitmap bits for `csr`:
    /// returns (readable, writable).
    fn reg_bits(
        &mut self,
        bus: &mut Bus,
        domain: u64,
        csr: u16,
    ) -> Result<(bool, bool), Exception> {
        let group = csr as usize / REG_GROUP_CSRS;
        let unified = self.cfg.unified_hpt;
        let tag = (domain * REG_GROUPS as u64 + group as u64) | if unified { UTAG_REG } else { 0 };
        let cache = if unified {
            &mut self.inst_cache
        } else {
            &mut self.reg_cache
        };
        let hit = cache.lookup(tag);
        self.trace.emit(|| TraceEvent::Cache {
            cache: CacheKind::HptReg,
            hit: hit.is_some(),
        });
        let payload = match hit {
            Some(p) => p,
            None => {
                self.ev.hpt_reg_miss += 1;
                let base = self.layout_reg_group_addr(domain, group);
                let mut p = [0u64; 4];
                for (i, slot) in p.iter_mut().enumerate() {
                    *slot = self.tmem_read_verified(bus, base + (i * 8) as u64)?;
                }
                let cache = if unified {
                    &mut self.inst_cache
                } else {
                    &mut self.reg_cache
                };
                cache.insert(tag, p);
                p
            }
        };
        let bit = (csr as usize % REG_GROUP_CSRS) * 2;
        let word = payload[bit / 64];
        let r = word >> (bit % 64) & 1 != 0;
        let w = word >> (bit % 64 + 1) & 1 != 0;
        Ok((r, w))
    }

    /// Fetch (through the HPT cache) the write bit-mask for `slot`.
    fn mask_for(&mut self, bus: &mut Bus, domain: u64, slot: usize) -> Result<u64, Exception> {
        let unified = self.cfg.unified_hpt;
        let tag = (domain * MASK_SLOTS as u64 + slot as u64) | if unified { UTAG_MASK } else { 0 };
        let cache = if unified {
            &mut self.inst_cache
        } else {
            &mut self.mask_cache
        };
        if let Some(p) = cache.lookup(tag) {
            self.trace.emit(|| TraceEvent::Cache {
                cache: CacheKind::HptMask,
                hit: true,
            });
            return Ok(p[0]);
        }
        self.trace.emit(|| TraceEvent::Cache {
            cache: CacheKind::HptMask,
            hit: false,
        });
        self.ev.hpt_mask_miss += 1;
        let m = self.tmem_read_verified(bus, self.layout_mask_addr(domain, slot))?;
        let cache = if unified {
            &mut self.inst_cache
        } else {
            &mut self.mask_cache
        };
        cache.insert(tag, [m, 0, 0, 0]);
        Ok(m)
    }

    /// Fetch (through the SGT cache) gate entry `gid`:
    /// `[gate_addr, dest_addr, dest_domain, flags]`.
    fn sgt_entry(&mut self, bus: &mut Bus, gid: u64) -> Result<[u64; 4], Exception> {
        if let Some(p) = self.sgt_cache.lookup(gid) {
            self.trace.emit(|| TraceEvent::Cache {
                cache: CacheKind::Sgt,
                hit: true,
            });
            return Ok(p);
        }
        self.trace.emit(|| TraceEvent::Cache {
            cache: CacheKind::Sgt,
            hit: false,
        });
        self.ev.sgt_miss += 1;
        let base = self.regs.gate_addr + gid * crate::layout::SGT_ENTRY_BYTES;
        let mut p = [0u64; 4];
        for (i, slot) in p.iter_mut().enumerate() {
            *slot = self.tmem_read_verified(bus, base + (i * 8) as u64)?;
        }
        self.sgt_cache.insert(gid, p);
        Ok(p)
    }

    fn fault(&mut self, e: Exception) -> Exception {
        self.stats.faults += 1;
        e
    }

    /// Record a denied check in the audit log, then count the fault.
    /// Every privilege violation the PCU raises goes through here so
    /// the log captures the full (PC, instruction, cause) context.
    fn deny(&mut self, cpu: &CpuState, kind: AuditKind, raw: u32, e: Exception) -> Exception {
        let detail = e.tval();
        self.deny_with_detail(cpu, kind, raw, e, detail)
    }

    /// [`Self::deny`] with an explicit audit `detail` word, for sites
    /// (like shootdown-deadline expiry) that pack extra context into the
    /// audit record beyond the exception's trap value.
    fn deny_with_detail(
        &mut self,
        cpu: &CpuState,
        kind: AuditKind,
        raw: u32,
        e: Exception,
        detail: u64,
    ) -> Exception {
        self.audit.push(AuditRecord {
            pc: cpu.pc,
            raw,
            priv_level: cpu.priv_level as u8,
            domain: self.regs.domain as u16,
            kind,
            cause: e.cause(),
            detail,
        });
        // Flag the denial on the step's drained events so the request
        // tracer can attribute it to the request in flight.
        self.ev.denied = true;
        self.ev.deny_cause = e.cause();
        self.ev.deny_detail = e.tval();
        self.fault(e)
    }

    /// Resolve a corrupt-table detection fail-closed: count it, emit the
    /// integrity trace event, audit the denial and raise the fault.
    fn integrity_deny(&mut self, cpu: &CpuState, raw: u32, e: Exception) -> Exception {
        self.fstats.detected += 1;
        self.fstats.denied += 1;
        self.note_fault_event();
        let detail = e.tval();
        self.trace.emit(|| TraceEvent::IntegrityEvent {
            scope: "table",
            detail,
            recovered: false,
        });
        self.deny(cpu, AuditKind::Integrity, raw, e)
    }

    /// Mark one fault-layer event (injection or detection) on the
    /// current step's event record.
    fn note_fault_event(&mut self) {
        self.ev.fault_events = self.ev.fault_events.saturating_add(1);
    }

    /// A prefetch walk hit a corrupt table word: detection without a
    /// trap — the word is simply not cached, and the demand walk that
    /// actually needs it resolves fail-closed.
    fn note_prefetch_skip(&mut self, addr: u64) {
        self.fstats.detected += 1;
        self.fstats.recovered += 1;
        self.note_fault_event();
        self.trace.emit(|| TraceEvent::IntegrityEvent {
            scope: "prefetch",
            detail: addr,
            recovered: true,
        });
    }

    /// Fold cache-scrub detections (seal-mismatch hits scrubbed inside
    /// `PrivCache::lookup`) into the fault tallies and the step's event
    /// record. Scrubs are detect-and-recover: the re-walk from trusted
    /// memory is the recovery.
    fn reconcile_scrubs(&mut self) {
        let total = self.inst_cache.corrupt_detected
            + self.reg_cache.corrupt_detected
            + self.mask_cache.corrupt_detected
            + self.sgt_cache.corrupt_detected
            + self.legal_cache.corrupt_detected;
        let fresh = total - self.scrubs_seen;
        if fresh == 0 {
            return;
        }
        self.scrubs_seen = total;
        self.fstats.detected += fresh;
        self.fstats.recovered += fresh;
        self.ev.fault_events = self
            .ev
            .fault_events
            .saturating_add(fresh.min(u64::from(u16::MAX)) as u16);
        self.trace.emit(|| TraceEvent::IntegrityEvent {
            scope: "cache",
            detail: fresh,
            recovered: true,
        });
    }

    /// Drain and apply every fault-schedule event due at the current
    /// commit.
    fn poll_faults(&mut self, bus: &mut Bus) {
        loop {
            let due = match self.faults.as_mut() {
                Some(plan) => plan.next_due(self.commits),
                None => return,
            };
            match due {
                Some(kind) => self.apply_fault(bus, kind),
                None => return,
            }
        }
    }

    fn cache_for_mut(&mut self, sel: CacheSel) -> &mut PrivCache {
        match sel {
            CacheSel::Inst => &mut self.inst_cache,
            CacheSel::Reg => &mut self.reg_cache,
            CacheSel::Mask => &mut self.mask_cache,
            CacheSel::Sgt => &mut self.sgt_cache,
            CacheSel::Legal => &mut self.legal_cache,
        }
    }

    /// Apply one scheduled fault. Injections that find nothing to
    /// corrupt (an empty cache, an uninstalled PCU) are skipped without
    /// being counted — only applied faults appear in `fault_injected`.
    fn apply_fault(&mut self, bus: &mut Bus, kind: FaultKind) {
        let applied: Option<u64> = match kind {
            FaultKind::TableBitFlip { entropy, bit } => self.flip_table_word(bus, entropy, bit),
            FaultKind::CacheCorrupt {
                cache,
                entropy,
                bit,
            } => self
                .cache_for_mut(cache)
                .corrupt_entry(entropy, bit)
                .then_some(cache as u64),
            FaultKind::CacheEvict { cache, entropy } => self
                .cache_for_mut(cache)
                .evict_entry(entropy)
                .then_some(cache as u64),
            FaultKind::ShootdownDrop => {
                self.shoot_defer = self.shoot_defer.saturating_add(1);
                Some(1)
            }
            FaultKind::ShootdownDelay { polls } => {
                self.shoot_defer = self.shoot_defer.saturating_add(polls);
                Some(polls as u64)
            }
            // Snapshot flips are applied by the harness at snapshot-build
            // time (`PcuSnapshot::corrupt`), not at commit boundaries.
            FaultKind::SnapshotBitFlip { .. } => None,
        };
        if let Some(detail) = applied {
            self.fstats.injected += 1;
            self.note_fault_event();
            let name = kind.name();
            self.trace
                .emit(|| TraceEvent::FaultInjected { kind: name, detail });
        }
    }

    /// Flip `bit` of one privilege-table word in trusted memory,
    /// selected deterministically by `entropy` across the installed
    /// regions (inst bitmap / reg bitmap / bit-mask array / SGT). The
    /// flip goes around the architectural write path: no reseal, no
    /// shootdown — exactly what a soft error looks like.
    fn flip_table_word(&mut self, bus: &mut Bus, entropy: u64, bit: u32) -> Option<u64> {
        self.layout?;
        let domains = self.regs.domain_nr.max(1);
        let sub = entropy >> 2;
        let inst_pick = |pcu: &Pcu| {
            pcu.layout_inst_addr(
                sub % domains,
                ((sub >> 16) % INST_BITMAP_WORDS as u64) as usize,
            )
        };
        let addr = match entropy % 4 {
            0 => inst_pick(self),
            1 => {
                let g = ((sub >> 16) % REG_GROUPS as u64) as usize;
                self.layout_reg_group_addr(sub % domains, g) + ((sub >> 40) % 4) * 8
            }
            2 => self.layout_mask_addr(sub % domains, ((sub >> 16) % MASK_SLOTS as u64) as usize),
            _ if self.regs.gate_nr > 0 => {
                self.regs.gate_addr
                    + (sub % self.regs.gate_nr) * crate::layout::SGT_ENTRY_BYTES
                    + ((sub >> 16) % 4) * 8
            }
            _ => inst_pick(self),
        };
        let old = bus.load(addr, 8).unwrap_or(0);
        bus.write_u64(addr, old ^ (1u64 << (bit % 64)));
        Some(addr)
    }

    /// The audit log of denied checks accumulated so far.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Drain the audit log, returning the retained records and
    /// resetting the drop counter.
    pub fn take_audit(&mut self) -> Vec<AuditRecord> {
        self.audit.take()
    }

    fn gate_call(
        &mut self,
        cpu: &mut CpuState,
        bus: &mut Bus,
        d: &Decoded,
        extended: bool,
    ) -> Result<Flow, Exception> {
        self.stats.gate_calls += 1;
        let gid = cpu.reg(d.rs1);
        if gid >= self.regs.gate_nr {
            return Err(self.deny(cpu, AuditKind::Gate, d.raw, Exception::GridGateFault(gid)));
        }
        let [gate_addr, dest_addr, dest_domain, flags] = match self.sgt_entry(bus, gid) {
            Ok(p) => p,
            Err(e) => return Err(self.integrity_deny(cpu, d.raw, e)),
        };
        if flags & SGT_FLAG_VALID == 0 {
            return Err(self.deny(cpu, AuditKind::Gate, d.raw, Exception::GridGateFault(gid)));
        }
        // Property (i): each gate can only be called at its registered
        // address — defeats injected and ROP-constructed gates (§4.2).
        if gate_addr != cpu.pc {
            return Err(self.deny(
                cpu,
                AuditKind::Gate,
                d.raw,
                Exception::GridGateFault(cpu.pc),
            ));
        }
        if extended {
            let sp = self.regs.hcsp;
            if sp < self.regs.hcsb || sp + 16 > self.regs.hcsl {
                return Err(self.deny(cpu, AuditKind::Gate, d.raw, Exception::GridGateFault(sp)));
            }
            // The trusted stack lives in trusted memory; the PCU writes it
            // directly (software cannot, outside domain-0).
            bus.store(sp, 8, cpu.pc.wrapping_add(4))
                .ok_or(Exception::GridGateFault(sp))?;
            bus.store(sp + 8, 8, self.regs.domain)
                .ok_or(Exception::GridGateFault(sp))?;
            self.regs.hcsp = sp + 16;
            self.ev.tstack_ops += 2;
        }
        let from = self.regs.domain;
        self.regs.pdomain = from;
        self.regs.domain = dest_domain;
        self.ipr.valid = false;
        self.ev.gate_switch = true;
        self.trace.emit(|| TraceEvent::GateCall {
            gate: gate_addr,
            target: dest_addr,
            from_domain: from as u16,
            to_domain: dest_domain as u16,
            extended,
        });
        self.trace.emit(|| TraceEvent::DomainSwitch {
            from: from as u16,
            to: dest_domain as u16,
        });
        Ok(Flow::Jump(dest_addr))
    }

    fn gate_return(&mut self, cpu: &CpuState, bus: &mut Bus, raw: u32) -> Result<Flow, Exception> {
        self.stats.gate_returns += 1;
        let sp = self.regs.hcsp;
        if sp < self.regs.hcsb + 16 {
            return Err(self.deny(cpu, AuditKind::Gate, raw, Exception::GridGateFault(sp)));
        }
        let ret = self.tmem_read(bus, sp - 16);
        let dom = self.tmem_read(bus, sp - 8);
        self.ev.tstack_ops += 2;
        // "The extended return instruction is not allowed to return to
        // domain-0" (§4.4).
        if dom == 0 {
            return Err(self.deny(cpu, AuditKind::Gate, raw, Exception::GridGateFault(sp)));
        }
        self.regs.hcsp = sp - 16;
        let from = self.regs.domain;
        self.regs.pdomain = from;
        self.regs.domain = dom;
        self.ipr.valid = false;
        self.ev.gate_switch = true;
        self.trace.emit(|| TraceEvent::GateReturn {
            target: ret,
            from_domain: from as u16,
            to_domain: dom as u16,
        });
        self.trace.emit(|| TraceEvent::DomainSwitch {
            from: from as u16,
            to: dom as u16,
        });
        Ok(Flow::Jump(ret))
    }

    fn prefetch(&mut self, bus: &mut Bus, sel: u64) {
        self.stats.prefetches += 1;
        let domain = self.regs.domain;
        let fetch_group = |pcu: &mut Pcu, bus: &mut Bus, g: usize| {
            let tag = domain * REG_GROUPS as u64 + g as u64;
            if pcu.reg_cache.contains(tag) {
                return;
            }
            let base = pcu.layout_reg_group_addr(domain, g);
            let mut p = [0u64; 4];
            for (i, slot) in p.iter_mut().enumerate() {
                match pcu.tmem_read_verified(bus, base + (i * 8) as u64) {
                    Ok(v) => *slot = v,
                    Err(_) => {
                        pcu.note_prefetch_skip(base);
                        return;
                    }
                }
            }
            pcu.reg_cache.insert(tag, p);
            pcu.ev.prefetch_reads += 1;
        };
        let fetch_mask = |pcu: &mut Pcu, bus: &mut Bus, s: usize| {
            let tag = domain * MASK_SLOTS as u64 + s as u64;
            if pcu.mask_cache.contains(tag) {
                return;
            }
            let addr = pcu.layout_mask_addr(domain, s);
            let m = match pcu.tmem_read_verified(bus, addr) {
                Ok(v) => v,
                Err(_) => {
                    pcu.note_prefetch_skip(addr);
                    return;
                }
            };
            pcu.mask_cache.insert(tag, [m, 0, 0, 0]);
            pcu.ev.prefetch_reads += 1;
        };
        if sel == 0 {
            // "The pfch can fetch entries of all the CSRs" (§5.1) — bounded
            // by what the caches can actually hold.
            for g in 0..REG_GROUPS.min(self.reg_cache.capacity()) {
                fetch_group(self, bus, g);
            }
            for s in 0..MASK_SLOTS.min(self.mask_cache.capacity()) {
                fetch_mask(self, bus, s);
            }
        } else {
            let csr = (sel & 0xfff) as u16;
            fetch_group(self, bus, csr as usize / REG_GROUP_CSRS);
            if let Some(s) = mask_slot(csr) {
                fetch_mask(self, bus, s);
            }
        }
    }

    /// Flush one cache and report how much it discarded.
    fn flush_one(&mut self, kind: CacheKind) {
        let discarded = match kind {
            CacheKind::HptInst => self.inst_cache.flush(),
            CacheKind::HptReg => self.reg_cache.flush(),
            CacheKind::HptMask => self.mask_cache.flush(),
            CacheKind::Sgt => self.sgt_cache.flush(),
            CacheKind::Legal => self.legal_cache.flush(),
        };
        self.trace.emit(|| TraceEvent::CacheFlush {
            cache: kind,
            discarded,
        });
    }

    fn flush_caches(&mut self, sel: u64) {
        self.stats.flushes += 1;
        match sel {
            0 => {
                self.flush_one(CacheKind::HptInst);
                self.flush_one(CacheKind::HptReg);
                self.flush_one(CacheKind::HptMask);
                self.flush_one(CacheKind::Sgt);
                self.flush_one(CacheKind::Legal);
                self.ipr.valid = false;
            }
            1 => {
                self.flush_one(CacheKind::HptInst);
                self.flush_one(CacheKind::Legal);
                self.ipr.valid = false;
            }
            2 => self.flush_one(CacheKind::HptReg),
            3 => self.flush_one(CacheKind::HptMask),
            4 => self.flush_one(CacheKind::Sgt),
            _ => {}
        }
        // `pflh` is the PCU fence: publish so every other hart flushes
        // too before its next commit.
        self.publish_shootdown();
    }

    // ---- SMP coherence ----

    /// Publish a shootdown to the other harts (no-op when detached or
    /// single-hart).
    fn publish_shootdown(&mut self) {
        let Some(cell) = &self.shoot else { return };
        if cell.harts() <= 1 {
            return;
        }
        let epoch = cell.publish(self.hart);
        self.stats.shootdowns_sent += 1;
        let hart = self.hart as u64;
        self.trace.emit(|| TraceEvent::Shootdown { hart, epoch });
    }

    /// Honor a pending shootdown: flush every privilege cache, charge
    /// the re-warm cost, and acknowledge the epoch. Called before each
    /// instruction check, which makes the flush visible strictly before
    /// the next commit.
    /// Injected delivery failures (`ShootdownDrop`/`ShootdownDelay`)
    /// defer the flush-and-ack; the retry window is bounded by
    /// [`PcuConfig::shootdown_deadline_polls`], after which the PCU
    /// restores coherence by flushing anyway and faults the hart
    /// (`GridIntegrityFault` on the epoch) — stale privileges are never
    /// consulted past the deadline, and the expiry is architecturally
    /// visible instead of silently absorbed.
    fn poll_shootdown(&mut self) -> Result<(), Exception> {
        let Some(cell) = &self.shoot else {
            return Ok(());
        };
        let Some(epoch) = cell.pending(self.hart) else {
            self.shoot_defer_polls = 0;
            return Ok(());
        };
        if self.shoot_defer > 0 {
            self.shoot_defer_polls += 1;
            if self.shoot_defer_polls <= self.cfg.shootdown_deadline_polls {
                // Bounded backoff: delivery failed this poll; retry at
                // the next commit.
                self.shoot_defer -= 1;
                return Ok(());
            }
            // Deadline blown: restore coherence (flush + ack), then
            // fault the hart.
            self.shoot_defer = 0;
            self.shoot_defer_polls = 0;
            self.take_shootdown(epoch);
            self.fstats.shootdown_expired += 1;
            self.fstats.detected += 1;
            self.fstats.denied += 1;
            self.note_fault_event();
            self.trace.emit(|| TraceEvent::IntegrityEvent {
                scope: "shootdown",
                detail: epoch,
                recovered: false,
            });
            return Err(Exception::GridIntegrityFault(epoch));
        }
        self.shoot_defer_polls = 0;
        self.take_shootdown(epoch);
        Ok(())
    }

    /// Flush every privilege cache and acknowledge one shootdown epoch.
    fn take_shootdown(&mut self, epoch: u64) {
        let discarded = self.inst_cache.flush()
            + self.reg_cache.flush()
            + self.mask_cache.flush()
            + self.sgt_cache.flush()
            + self.legal_cache.flush();
        self.ipr.valid = false;
        let cell = self.shoot.as_ref().expect("polled above");
        cell.ack(self.hart, epoch);
        self.stats.shootdowns_taken += 1;
        self.stats.shootdown_flushed += discarded;
        self.stats.shootdown_flush_cycles += discarded * FLUSH_CYCLES_PER_ENTRY;
        self.ev.shootdown_flushed = self
            .ev
            .shootdown_flushed
            .saturating_add(discarded.min(u64::from(u16::MAX)) as u16);
        self.ev.shootdown_epoch = epoch;
        let hart = self.hart as u64;
        self.trace.emit(|| TraceEvent::ShootdownAck {
            hart,
            epoch,
            discarded,
        });
    }

    /// Whether a write to `[paddr, paddr+len)` lands in the privilege
    /// tables (trusted memory below the trusted-stack region).
    fn hits_tables(&self, paddr: u64, len: u8) -> bool {
        let Some(layout) = self.layout else {
            return false;
        };
        let (b, l) = (layout.tmem_base, layout.tstack_base());
        l > b && paddr + len as u64 > b && paddr < l
    }
}

impl Extension for Pcu {
    fn check_inst(&mut self, cpu: &CpuState, bus: &mut Bus, d: &Decoded) -> Result<(), Exception> {
        // Commit boundary: the deterministic fault schedule (when
        // attached) is driven by this counter.
        self.commits += 1;
        self.poll_faults(bus);
        // SMP coherence: a pending shootdown is honored here, before
        // this instruction can commit against stale cached privileges.
        if let Err(e) = self.poll_shootdown() {
            // The expiry audit record packs the configured deadline into
            // the detail's top 16 bits alongside the blown epoch, so the
            // log alone shows which window the hart failed to honor.
            let detail = (u64::from(self.cfg.shootdown_deadline_polls) << 48)
                | (e.tval() & 0x0000_FFFF_FFFF_FFFF);
            return Err(self.deny_with_detail(cpu, AuditKind::Shootdown, d.raw, e, detail));
        }
        // Snapshot verification failed: this PCU's register file is not
        // trustworthy, so everything outside M-mode is denied — fail
        // closed, never enforce (or skip enforcing) a corrupted policy.
        if self.poisoned && cpu.priv_level != Priv::M {
            self.fstats.denied += 1;
            self.note_fault_event();
            self.trace.emit(|| TraceEvent::IntegrityEvent {
                scope: "snapshot",
                detail: 0,
                recovered: false,
            });
            return Err(self.deny(
                cpu,
                AuditKind::Integrity,
                d.raw,
                Exception::GridIntegrityFault(0),
            ));
        }
        if !self.active(cpu) {
            return Ok(());
        }
        // Gate and cache-management instructions are executable from every
        // domain; gates are validated against the SGT instead (§4.2).
        if d.kind.is_grid_custom() {
            return Ok(());
        }
        self.stats.inst_checks += 1;
        self.ev.checks = self.ev.checks.saturating_add(1);
        let domain = self.regs.domain as u16;
        let idx = d.kind.class_index();
        // Draco-style legal-instruction cache (§8): a (domain, bytes)
        // pair that already passed needs no re-check. CSR accesses stay
        // excluded — their legality can depend on the written value.
        let legal_tag = (self.regs.domain << 32) ^ d.raw as u64;
        let cacheable = self.cfg.legal_cache > 0 && !d.kind.is_csr_access();
        if cacheable {
            let hit = self.legal_cache.lookup(legal_tag).is_some();
            self.trace.emit(|| TraceEvent::Cache {
                cache: CacheKind::Legal,
                hit,
            });
            if hit {
                self.stats.legal_hits += 1;
                self.trace.emit(|| TraceEvent::Check {
                    kind: CheckKind::Inst,
                    allowed: true,
                    domain,
                    detail: idx as u64,
                });
                return Ok(());
            }
        }
        let words = match self.ipr_words(bus) {
            Ok(w) => w,
            Err(e) => return Err(self.integrity_deny(cpu, d.raw, e)),
        };
        let allowed = words[idx / 64] >> (idx % 64) & 1 != 0;
        self.trace.emit(|| TraceEvent::Check {
            kind: CheckKind::Inst,
            allowed,
            domain,
            detail: idx as u64,
        });
        if !allowed {
            // Seeded-bug hook (tests only): swallow the denial so the
            // differential oracle — whose spec PCU never has this flag —
            // can demonstrate first-divergence detection.
            if self.skip_inst_check {
                return Ok(());
            }
            return Err(self.deny(
                cpu,
                AuditKind::Inst,
                d.raw,
                Exception::GridInstFault(idx as u64),
            ));
        }
        if cacheable {
            self.legal_cache.insert(legal_tag, [0; 4]);
        }
        Ok(())
    }

    fn check_csr(
        &mut self,
        cpu: &CpuState,
        bus: &mut Bus,
        csr: u16,
        read: bool,
        write: bool,
        old: u64,
        new: u64,
    ) -> Result<(), Exception> {
        if !self.active(cpu) || self.csr_owned(csr) {
            return Ok(());
        }
        self.stats.csr_checks += 1;
        self.ev.checks = self.ev.checks.saturating_add(1);
        let domain = self.regs.domain;
        let (r_bit, w_bit) = match self.reg_bits(bus, domain, csr) {
            Ok(bits) => bits,
            Err(e) => return Err(self.integrity_deny(cpu, 0, e)),
        };
        let mut allowed = !read || r_bit;
        if allowed && write {
            match mask_slot(csr) {
                Some(slot) => {
                    // Bit-level control: V_csr ⊕ V_write ∧ ¬M == 0 (§4.1).
                    let mask = match self.mask_for(bus, domain, slot) {
                        Ok(m) => m,
                        Err(e) => return Err(self.integrity_deny(cpu, 0, e)),
                    };
                    allowed = (old ^ new) & !mask == 0;
                }
                None => allowed = w_bit,
            }
        }
        self.trace.emit(|| TraceEvent::Check {
            kind: CheckKind::Csr,
            allowed,
            domain: domain as u16,
            detail: csr as u64,
        });
        if allowed {
            Ok(())
        } else {
            Err(self.deny(cpu, AuditKind::Csr, 0, Exception::GridCsrFault(csr as u64)))
        }
    }

    fn check_phys(
        &mut self,
        cpu: &CpuState,
        paddr: u64,
        len: u8,
        write: bool,
    ) -> Result<(), Exception> {
        // A store that reaches the privilege tables (only domain-0 /
        // M-mode can — see the fence below) invalidates what other
        // harts may have cached: publish a shootdown.
        if write && self.hits_tables(paddr, len) {
            // Architectural stores into the tables re-baseline the
            // seals (trust-on-first-use for domain-0 direct writes).
            self.seals.note_write(paddr, len as u64);
            self.publish_shootdown();
        }
        // "The load and store instructions can access the trusted memory
        // region only in domain-0" (§4.5).
        if cpu.priv_level == Priv::M || self.regs.domain == 0 {
            return Ok(());
        }
        self.ev.checks = self.ev.checks.saturating_add(1);
        let (b, l) = (self.regs.tmemb, self.regs.tmeml);
        if l > b && paddr + len as u64 > b && paddr < l {
            self.stats.tmem_denials += 1;
            self.trace.emit(|| TraceEvent::TmemFence { paddr, write });
            self.trace.emit(|| TraceEvent::Check {
                kind: CheckKind::Phys,
                allowed: false,
                domain: self.regs.domain as u16,
                detail: paddr,
            });
            return Err(self.deny(cpu, AuditKind::Tmem, 0, Exception::GridTmemFault(paddr)));
        }
        Ok(())
    }

    fn csr_owned(&self, csr: u16) -> bool {
        (addr::GRID_DOMAIN..=addr::GRID_TMEML).contains(&csr)
    }

    fn read_csr(&mut self, cpu: &CpuState, csr: u16) -> Result<u64, Exception> {
        let r = &self.regs;
        let restricted = self.active(cpu);
        let value = match csr {
            addr::GRID_DOMAIN => return Ok(r.domain),
            addr::GRID_PDOMAIN => return Ok(r.pdomain),
            addr::GRID_DOMAIN_NR => return Ok(r.domain_nr),
            addr::GRID_GATE_NR => return Ok(r.gate_nr),
            addr::GRID_CSR_CAP => r.csr_cap,
            addr::GRID_CSR_MASK => r.csr_mask,
            addr::GRID_INST_CAP => r.inst_cap,
            addr::GRID_GATE_ADDR => r.gate_addr,
            addr::GRID_HCSP => r.hcsp,
            addr::GRID_HCSB => r.hcsb,
            addr::GRID_HCSL => r.hcsl,
            addr::GRID_TMEMB => r.tmemb,
            addr::GRID_TMEML => r.tmeml,
            _ => return Err(Exception::IllegalInst(csr as u64)),
        };
        if restricted {
            return Err(self.deny(cpu, AuditKind::Csr, 0, Exception::GridCsrFault(csr as u64)));
        }
        Ok(value)
    }

    fn write_csr(
        &mut self,
        cpu: &mut CpuState,
        _bus: &mut Bus,
        csr: u16,
        val: u64,
    ) -> Result<(), Exception> {
        // domain/pdomain can never be written; the rest only in domain-0
        // ("R/W in domain-0", Table 2). domain-nr/gate-nr are written by
        // domain-0 software when it registers domains and gates at
        // runtime (§5.2).
        if matches!(csr, addr::GRID_DOMAIN | addr::GRID_PDOMAIN) {
            return Err(self.deny(cpu, AuditKind::Csr, 0, Exception::GridCsrFault(csr as u64)));
        }
        if self.active(cpu) {
            return Err(self.deny(cpu, AuditKind::Csr, 0, Exception::GridCsrFault(csr as u64)));
        }
        let r = &mut self.regs;
        match csr {
            addr::GRID_DOMAIN_NR => r.domain_nr = val,
            addr::GRID_GATE_NR => r.gate_nr = val,
            addr::GRID_CSR_CAP => r.csr_cap = val,
            addr::GRID_CSR_MASK => r.csr_mask = val,
            addr::GRID_INST_CAP => r.inst_cap = val,
            addr::GRID_GATE_ADDR => r.gate_addr = val,
            addr::GRID_HCSP => r.hcsp = val,
            addr::GRID_HCSB => r.hcsb = val,
            addr::GRID_HCSL => r.hcsl = val,
            addr::GRID_TMEMB => r.tmemb = val,
            addr::GRID_TMEML => r.tmeml = val,
            _ => return Err(Exception::IllegalInst(csr as u64)),
        }
        // Re-pointing table bases changes what every hart's caches
        // front; treat it as a table mutation.
        self.publish_shootdown();
        Ok(())
    }

    fn exec_custom(
        &mut self,
        cpu: &mut CpuState,
        bus: &mut Bus,
        d: &Decoded,
    ) -> Result<Flow, Exception> {
        match d.kind {
            Kind::Hccall => self.gate_call(cpu, bus, d, false),
            Kind::Hccalls => self.gate_call(cpu, bus, d, true),
            Kind::Hcrets => self.gate_return(cpu, bus, d.raw),
            Kind::Pfch => {
                let sel = cpu.reg(d.rs1);
                self.prefetch(bus, sel);
                Ok(Flow::Next)
            }
            Kind::Pflh => {
                let sel = cpu.reg(d.rs1);
                self.flush_caches(sel);
                Ok(Flow::Next)
            }
            _ => Err(Exception::IllegalInst(d.raw as u64)),
        }
    }

    fn drain_events(&mut self) -> ExtEvents {
        self.reconcile_scrubs();
        std::mem::take(&mut self.ev)
    }

    fn current_domain_id(&self) -> u16 {
        self.regs.domain as u16
    }

    fn coherence_epoch(&self) -> u64 {
        // The shootdown cell's epoch moves on every published
        // cross-hart invalidation; surfacing it here makes the
        // machine's basic-block cache honor the same flush-before-
        // next-commit obligation as the privilege caches.
        self.shoot.as_ref().map_or(0, |c| c.epoch())
    }

    fn jit_guard(&self, cpu: &CpuState) -> Option<isa_sim::JitGuard> {
        // Vend a guard only when skipping the per-instruction
        // `check_inst` call changes no architectural or exported state:
        // no armed fault schedule (its clock is the commit counter, but
        // injections poll the bus), no poisoned register file (denies
        // outside M-mode), no pending or deferred shootdown (must flush
        // before the next commit), no trace sink (emits per check).
        if self.faults.is_some()
            || self.poisoned
            || self.trace.is_enabled()
            || self.shoot_defer > 0
            || self.shoot_defer_polls > 0
        {
            return None;
        }
        let epoch = match &self.shoot {
            Some(cell) => {
                if cell.pending(self.hart).is_some() {
                    return None;
                }
                cell.epoch()
            }
            None => 0,
        };
        if !self.active(cpu) {
            // M-mode / domain-0: `check_inst` early-outs past every
            // cache and bitmap — the guard only replays the commit.
            return Some(isa_sim::JitGuard {
                active: false,
                domain: self.regs.domain,
                epoch,
                words: [0; isa_sim::jit::GUARD_WORDS],
            });
        }
        // The active fast path must be a pure read: the legal-
        // instruction cache mutates exported recency state on every
        // lookup, and a cold/foreign bypass register would walk the HPT
        // caches. Both fall back to per-instruction checking.
        if self.cfg.legal_cache > 0
            || !(self.cfg.bypass && self.ipr.valid && self.ipr.domain == self.regs.domain)
        {
            return None;
        }
        // Guarding on the bitmap *contents* (not a version) makes a
        // block exactly as fresh as the bypass register itself: any
        // `pflh`, gate switch, or shootdown that would reload `ipr`
        // with different bits fails the guard.
        Some(isa_sim::JitGuard {
            active: true,
            domain: self.regs.domain,
            epoch,
            words: self.ipr.words,
        })
    }

    fn jit_commit(&mut self, checked: bool) {
        // Replays exactly what `check_inst` moves on the path the
        // block's guard hoisted: the commit clock always, the check
        // tallies only under an active regime. (`ev.checks` is not
        // replayed: it is drained per step, observed only by the
        // profiler and tracer, and both disqualify JIT dispatch.)
        self.commits += 1;
        if checked {
            self.stats.inst_checks += 1;
        }
    }
}
