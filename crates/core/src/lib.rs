//! # isa-grid — fine-grained privilege control for instructions and registers
//!
//! A reproduction of **ISA-Grid** (Fan, Hua, Xia, Chen, Zang — ISCA 2023):
//! a hardware extension that lets software create multiple *ISA domains*,
//! each with different privileges over instructions and control/status
//! registers, down to individual register bits.
//!
//! The crate implements the paper's Privilege Check Unit (PCU) against the
//! [`isa_sim::Extension`] seam:
//!
//! * **Hybrid-grained privilege check engine** (§4.1) — per-domain
//!   instruction bitmaps, register double-bitmaps (read/write bit per
//!   CSR), and bit-mask arrays enforcing the write-legality equation
//!   `(V_csr ⊕ V_write) ∧ ¬M == 0`.
//! * **Unforgeable domain switching** (§4.2) — `hccall`, the extended
//!   `hccalls`/`hcrets` pair with a trusted stack, and the switching gate
//!   table (SGT) that pins every gate to a registered address,
//!   destination, and target domain.
//! * **Domain privilege cache** (§4.3) — three HPT caches plus an SGT
//!   cache (fully associative, LRU; `16E`/`8E`/`8E.N` configurations), an
//!   instruction-privilege register for cache bypass, and the
//!   `pfch`/`pflh` software cache-management instructions.
//! * **Domain-0 & trusted memory** (§4.4–4.5) — the all-privileged reset
//!   domain, and a reserved physical region holding the HPT, SGT and
//!   trusted stacks that ordinary loads/stores can touch only from
//!   domain-0.
//!
//! ## Quick start
//!
//! ```
//! use isa_asm::{Asm, Reg::*};
//! use isa_grid::{DomainSpec, GateSpec, GridLayout, Pcu, PcuConfig};
//! use isa_sim::{Machine, Exit, mmio, Exception};
//!
//! // A guest kernel that enters a de-privileged domain through a gate
//! // and then tries to write `satp` (the CR3 analogue) — which must trap.
//! // The PCU guards S/U-mode code; M-mode is domain-0 firmware territory.
//! let mut a = Asm::new(0x8000_0000);
//! a.la(T0, "grid_trap");
//! a.csrw(0x305, T0);            // mtvec
//! // Drop from M to S mode (MPP <- S).
//! a.li(T1, 0b11 << 11);
//! a.csrrc(Zero, 0x300, T1);
//! a.li(T1, 0b01 << 11);
//! a.csrrs(Zero, 0x300, T1);
//! a.la(T0, "kernel");
//! a.csrw(0x341, T0);            // mepc
//! a.mret();
//! a.label("kernel");
//! a.li(A0, 0);                  // gate id 0
//! a.label("gate");
//! a.hccall(A0);                 // switch to the restricted domain
//! a.label("restricted");
//! a.csrw(0x180, Zero);          // satp write -> ISA-Grid CSR fault
//! a.label("grid_trap");
//! a.csrr(A0, 0x342);            // mcause
//! a.li(T6, mmio::HALT);
//! a.sd(A0, T6, 0);
//! let prog = a.assemble().unwrap();
//!
//! let mut m = Machine::new(Pcu::new(PcuConfig::eight_e()));
//! m.load_program(&prog);
//! m.ext.install(&mut m.bus, GridLayout::new(0x8380_0000, 1 << 20));
//!
//! // Domain-0 software: one restricted domain, one gate into it.
//! let mut spec = DomainSpec::compute_only();
//! spec.allow_inst(isa_sim::Kind::Csrrw)
//!     .allow_inst(isa_sim::Kind::Csrrs);   // classes allowed...
//! let d = m.ext.add_domain(&mut m.bus, &spec); // ...but no CSR perms
//! m.ext.add_gate(&mut m.bus, GateSpec {
//!     gate_addr: prog.symbol("gate"),
//!     dest_addr: prog.symbol("restricted"),
//!     dest_domain: d,
//! });
//!
//! let exit = m.run(10_000);
//! assert_eq!(exit, Exit::Halted(Exception::CAUSE_GRID_CSR));
//! ```

#![warn(missing_docs)]
// Guest-reachable code must trap architecturally, never panic the host:
// `.unwrap()` is banned outside unit tests (host-side setup code uses
// `.expect()` with a message, or explicit `#[allow]`s where justified).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod cache;
mod domain;
pub mod integrity;
pub mod layout;
mod pcu;
mod policy;
pub mod shootdown;

pub use cache::{CacheStats, PrivCache, PrivCacheState};
pub use domain::{DomainId, DomainSpec, GateId, GateSpec, InstGroup};
pub use integrity::{SealStore, SealStoreState, SealVerdict};
/// The observability layer (re-exported for counter and trace types).
pub use isa_obs as obs;
pub use layout::GridLayout;
pub use pcu::{
    FaultLayerStats, GridCacheStats, Pcu, PcuConfig, PcuConfigBuilder, PcuSnapshot, PcuState,
    PcuStats, SHOOTDOWN_DEADLINE_POLLS,
};
pub use policy::{ExclusivePolicy, PolicyViolation};
pub use shootdown::ShootdownCell;
