//! Domain privilege specifications and gate descriptors — the values
//! domain-0 software writes into the HPT and SGT.

use std::fmt;

use isa_sim::Kind;

use crate::layout::{mask_slot, INST_BITMAP_WORDS, MASK_SLOTS, REG_BITMAP_STRIDE};

/// Identifier of an ISA domain. Domain 0 is the all-privileged
/// initialization domain (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DomainId(pub u64);

impl DomainId {
    /// The special initialization domain.
    pub const INIT: DomainId = DomainId(0);

    /// Whether this is domain-0.
    pub fn is_init(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain-{}", self.0)
    }
}

/// Identifier of a registered switching gate (its SGT index, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub u64);

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gate-{}", self.0)
    }
}

/// A registered gate: "each entry in the SGT contains the gate address,
/// the destination address, and the destination domain of a gate" (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateSpec {
    /// The only address the gate instruction may execute at.
    pub gate_addr: u64,
    /// Where control transfers on a successful gate call.
    pub dest_addr: u64,
    /// The ISA domain the CPU switches to.
    pub dest_domain: DomainId,
}

/// A functional group of instruction classes, for the coarse-grained
/// privilege simplification discussed in §8: "it is possible to simplify
/// the implementation of ISA-Grid by using one bit to control the
/// privilege for a small group of instructions".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstGroup {
    /// Integer ALU operations (register and immediate forms).
    IntAlu,
    /// Multiply/divide unit.
    MulDiv,
    /// Loads and stores.
    LoadStore,
    /// Branches, jumps and calls.
    ControlFlow,
    /// LR/SC and AMOs.
    Atomic,
    /// Fences (`fence`, `fence.i`).
    Fence,
    /// Explicit CSR accessors (`csrr*`).
    CsrAccess,
    /// Trap entry/return and privileged maintenance
    /// (`ecall`/`ebreak`/`mret`/`sret`/`wfi`/`sfence.vma`).
    Privileged,
}

impl InstGroup {
    /// Every group.
    pub const ALL: [InstGroup; 8] = [
        InstGroup::IntAlu,
        InstGroup::MulDiv,
        InstGroup::LoadStore,
        InstGroup::ControlFlow,
        InstGroup::Atomic,
        InstGroup::Fence,
        InstGroup::CsrAccess,
        InstGroup::Privileged,
    ];

    /// The classes belonging to this group.
    pub fn kinds(self) -> impl Iterator<Item = Kind> {
        Kind::all().filter(move |k| self.contains(*k))
    }

    /// Whether class `k` belongs to this group.
    pub fn contains(self, k: Kind) -> bool {
        if k.is_grid_custom() {
            return false; // gates/cache ops are outside the bitmap scheme
        }
        match self {
            InstGroup::MulDiv => k.is_muldiv(),
            InstGroup::Atomic => {
                k.is_amo() || matches!(k, Kind::LrW | Kind::ScW | Kind::LrD | Kind::ScD)
            }
            InstGroup::LoadStore => {
                (k.is_load() || k.is_store())
                    && !k.is_amo()
                    && !matches!(k, Kind::LrW | Kind::ScW | Kind::LrD | Kind::ScD)
            }
            InstGroup::ControlFlow => k.is_branch() || matches!(k, Kind::Jal | Kind::Jalr),
            InstGroup::Fence => matches!(k, Kind::Fence | Kind::FenceI),
            InstGroup::CsrAccess => k.is_csr_access(),
            InstGroup::Privileged => matches!(
                k,
                Kind::Ecall | Kind::Ebreak | Kind::Mret | Kind::Sret | Kind::Wfi | Kind::SfenceVma
            ),
            InstGroup::IntAlu => {
                // Everything not claimed by another group.
                !k.is_muldiv()
                    && !k.is_load()
                    && !k.is_store()
                    && !k.is_branch()
                    && !matches!(
                        k,
                        Kind::Jal
                            | Kind::Jalr
                            | Kind::Fence
                            | Kind::FenceI
                            | Kind::Ecall
                            | Kind::Ebreak
                            | Kind::Mret
                            | Kind::Sret
                            | Kind::Wfi
                            | Kind::SfenceVma
                    )
                    && !k.is_csr_access()
            }
        }
    }
}

/// The privileges of one ISA domain: an instruction bitmap, a register
/// double-bitmap (read/write bit per CSR), and per-slot write bit-masks
/// (§4.1's hybrid-grained privilege structure).
///
/// Build one with the fluent API and register it with
/// [`crate::Pcu::add_domain`]:
///
/// ```
/// use isa_grid::DomainSpec;
/// use isa_sim::{csr::addr, Kind};
///
/// let mut spec = DomainSpec::compute_only();
/// spec.allow_inst(Kind::Csrrs)
///     .allow_csr_read(addr::CYCLE)
///     .allow_csr_write_masked(addr::SSTATUS, 0b10); // SIE bit only
/// assert!(spec.inst_allowed(Kind::Csrrs));
/// assert!(!spec.inst_allowed(Kind::SfenceVma));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSpec {
    pub(crate) inst_bitmap: [u64; INST_BITMAP_WORDS],
    pub(crate) reg_bits: Vec<u8>,
    pub(crate) masks: [u64; MASK_SLOTS],
}

impl DomainSpec {
    /// A domain that may execute nothing (gates excepted: those are
    /// executable from every domain by construction).
    pub fn deny_all() -> DomainSpec {
        DomainSpec {
            inst_bitmap: [0; INST_BITMAP_WORDS],
            reg_bits: vec![0; REG_BITMAP_STRIDE as usize],
            masks: [0; MASK_SLOTS],
        }
    }

    /// A domain with every privilege (what domain-0 has implicitly).
    pub fn allow_all() -> DomainSpec {
        let mut d = DomainSpec::deny_all();
        for k in Kind::all() {
            d.allow_inst(k);
        }
        d.reg_bits.fill(0xff);
        d.masks = [u64::MAX; MASK_SLOTS];
        d
    }

    /// The de-privileged baseline of the paper's kernel decomposition:
    /// all general computing instructions (ALU, memory, control flow,
    /// atomics, fences) but no CSR access, no privileged instructions.
    pub fn compute_only() -> DomainSpec {
        let mut d = DomainSpec::deny_all();
        for k in Kind::all() {
            let privileged = k.is_csr_access()
                || matches!(k, Kind::Mret | Kind::Sret | Kind::Wfi | Kind::SfenceVma)
                || k.is_grid_custom();
            if !privileged {
                d.allow_inst(k);
            }
        }
        d
    }

    // ---- instruction privileges ----

    /// Permit a whole functional group of instruction classes — the §8
    /// "Possible Simplification": when instructions are always used
    /// together, one decision can cover the group.
    pub fn allow_group(&mut self, g: InstGroup) -> &mut Self {
        self.allow_insts(g.kinds())
    }

    /// Revoke a whole functional group.
    pub fn deny_group(&mut self, g: InstGroup) -> &mut Self {
        for k in g.kinds() {
            self.deny_inst(k);
        }
        self
    }

    /// Whether *every* class of the group is allowed.
    pub fn group_allowed(&self, g: InstGroup) -> bool {
        g.kinds().all(|k| self.inst_allowed(k))
    }

    /// Permit executing instruction class `k`.
    pub fn allow_inst(&mut self, k: Kind) -> &mut Self {
        let i = k.class_index();
        self.inst_bitmap[i / 64] |= 1 << (i % 64);
        self
    }

    /// Forbid executing instruction class `k`.
    pub fn deny_inst(&mut self, k: Kind) -> &mut Self {
        let i = k.class_index();
        self.inst_bitmap[i / 64] &= !(1 << (i % 64));
        self
    }

    /// Permit every class in `kinds`.
    pub fn allow_insts(&mut self, kinds: impl IntoIterator<Item = Kind>) -> &mut Self {
        for k in kinds {
            self.allow_inst(k);
        }
        self
    }

    /// Whether class `k` is allowed by this spec.
    pub fn inst_allowed(&self, k: Kind) -> bool {
        let i = k.class_index();
        self.inst_bitmap[i / 64] & (1 << (i % 64)) != 0
    }

    // ---- register privileges ----

    fn set_reg_bit(&mut self, csr: u16, write: bool, value: bool) {
        let bit = (csr as usize) * 2 + write as usize;
        let (byte, shift) = (bit / 8, bit % 8);
        if value {
            self.reg_bits[byte] |= 1 << shift;
        } else {
            self.reg_bits[byte] &= !(1 << shift);
        }
    }

    fn reg_bit(&self, csr: u16, write: bool) -> bool {
        let bit = (csr as usize) * 2 + write as usize;
        self.reg_bits[bit / 8] & (1 << (bit % 8)) != 0
    }

    /// Permit reading CSR `csr`.
    pub fn allow_csr_read(&mut self, csr: u16) -> &mut Self {
        self.set_reg_bit(csr, false, true);
        self
    }

    /// Permit writing CSR `csr`. For a CSR with bitwise control this also
    /// sets its bit-mask to all-ones (every bit writable).
    pub fn allow_csr_write(&mut self, csr: u16) -> &mut Self {
        self.set_reg_bit(csr, true, true);
        if let Some(slot) = mask_slot(csr) {
            self.masks[slot] = u64::MAX;
        }
        self
    }

    /// Permit reading and writing CSR `csr`.
    pub fn allow_csr_rw(&mut self, csr: u16) -> &mut Self {
        self.allow_csr_read(csr);
        self.allow_csr_write(csr)
    }

    /// Permit writing only the bits of `csr` that are set in `mask` —
    /// ISA-Grid's bit-level access control. Reading is not affected
    /// ("the bit-masks are only used for CSR writing", §4.1).
    ///
    /// # Panics
    ///
    /// Panics if `csr` has no bit-mask slot (see
    /// [`crate::layout::MASKED_CSRS`]); coarse CSRs use
    /// [`DomainSpec::allow_csr_write`].
    pub fn allow_csr_write_masked(&mut self, csr: u16, mask: u64) -> &mut Self {
        let slot =
            mask_slot(csr).unwrap_or_else(|| panic!("CSR {csr:#x} has no bitwise-control slot"));
        self.set_reg_bit(csr, true, true);
        self.masks[slot] = mask;
        self
    }

    /// Revoke all access to `csr`.
    pub fn deny_csr(&mut self, csr: u16) -> &mut Self {
        self.set_reg_bit(csr, false, false);
        self.set_reg_bit(csr, true, false);
        if let Some(slot) = mask_slot(csr) {
            self.masks[slot] = 0;
        }
        self
    }

    /// Whether reads of `csr` are allowed.
    pub fn csr_readable(&self, csr: u16) -> bool {
        self.reg_bit(csr, false)
    }

    /// Whether writes of `csr` are allowed at all (for masked CSRs: any
    /// non-zero mask).
    pub fn csr_writable(&self, csr: u16) -> bool {
        self.reg_bit(csr, true)
    }

    /// The write bit-mask for `csr` (all-ones when unmasked).
    pub fn csr_write_mask(&self, csr: u16) -> u64 {
        match mask_slot(csr) {
            Some(slot) => self.masks[slot],
            None => u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_sim::csr::addr;

    #[test]
    fn deny_all_denies_everything() {
        let d = DomainSpec::deny_all();
        for k in Kind::all() {
            assert!(!d.inst_allowed(k));
        }
        assert!(!d.csr_readable(addr::SATP));
        assert!(!d.csr_writable(addr::SATP));
    }

    #[test]
    fn allow_all_allows_everything() {
        let d = DomainSpec::allow_all();
        for k in Kind::all() {
            assert!(d.inst_allowed(k));
        }
        assert!(d.csr_readable(addr::MSTATUS));
        assert!(d.csr_writable(addr::SSTATUS));
        assert_eq!(d.csr_write_mask(addr::SSTATUS), u64::MAX);
    }

    #[test]
    fn compute_only_excludes_privileged_classes() {
        let d = DomainSpec::compute_only();
        assert!(d.inst_allowed(Kind::Add));
        assert!(d.inst_allowed(Kind::Ld));
        assert!(d.inst_allowed(Kind::Jal));
        assert!(d.inst_allowed(Kind::AmoaddD));
        assert!(d.inst_allowed(Kind::Ecall), "syscalls must work");
        assert!(!d.inst_allowed(Kind::Csrrw));
        assert!(!d.inst_allowed(Kind::Csrrs));
        assert!(!d.inst_allowed(Kind::SfenceVma));
        assert!(!d.inst_allowed(Kind::Mret));
        assert!(!d.inst_allowed(Kind::Sret));
    }

    #[test]
    fn inst_allow_deny_roundtrip() {
        let mut d = DomainSpec::deny_all();
        d.allow_inst(Kind::Csrrw);
        assert!(d.inst_allowed(Kind::Csrrw));
        // Neighbouring classes stay untouched.
        assert!(!d.inst_allowed(Kind::Csrrs));
        d.deny_inst(Kind::Csrrw);
        assert!(!d.inst_allowed(Kind::Csrrw));
    }

    #[test]
    fn csr_read_write_bits_are_independent() {
        let mut d = DomainSpec::deny_all();
        d.allow_csr_read(addr::SATP);
        assert!(d.csr_readable(addr::SATP));
        assert!(!d.csr_writable(addr::SATP));
        d.allow_csr_write(addr::SATP);
        assert!(d.csr_writable(addr::SATP));
        // Adjacent CSRs unaffected.
        assert!(!d.csr_readable(addr::SATP + 1));
        assert!(!d.csr_readable(addr::SATP - 1));
    }

    #[test]
    fn masked_write_sets_partial_mask() {
        let mut d = DomainSpec::deny_all();
        d.allow_csr_write_masked(addr::SSTATUS, 0b10);
        assert!(d.csr_writable(addr::SSTATUS));
        assert_eq!(d.csr_write_mask(addr::SSTATUS), 0b10);
        // Unmasked CSRs report a full mask.
        assert_eq!(d.csr_write_mask(addr::SEPC), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "no bitwise-control slot")]
    fn masked_write_requires_a_slot() {
        DomainSpec::deny_all().allow_csr_write_masked(addr::SEPC, 1);
    }

    #[test]
    fn deny_csr_clears_everything() {
        let mut d = DomainSpec::allow_all();
        d.deny_csr(addr::SSTATUS);
        assert!(!d.csr_readable(addr::SSTATUS));
        assert!(!d.csr_writable(addr::SSTATUS));
        assert_eq!(d.csr_write_mask(addr::SSTATUS), 0);
    }

    #[test]
    fn domain_id_display() {
        assert_eq!(DomainId(3).to_string(), "domain-3");
        assert!(DomainId::INIT.is_init());
        assert!(!DomainId(1).is_init());
        assert_eq!(GateId(2).to_string(), "gate-2");
    }
}
