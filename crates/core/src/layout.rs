//! Trusted-memory layout of the hybrid privilege table (HPT) and the
//! switching gate table (SGT).
//!
//! ISA-Grid stores all privilege structures in a reserved, power-of-two
//! sized region of physical memory (§4.5). Four base-address registers
//! (`inst-cap`, `csr-cap`, `csr-bit-mask`, `gate-addr`, Table 2) point at
//! the individual structures; this module fixes their packing so the PCU
//! and domain-0 software agree on it — the "hardware parameters of
//! ISA-Grid \[that\] should be known by software developers" (§4.1).

use isa_sim::csr::addr;
use isa_sim::Kind;

/// 64-bit words per instruction bitmap (covers [`Kind::COUNT`] classes).
pub const INST_BITMAP_WORDS: usize = Kind::COUNT.div_ceil(64);

/// Bytes per domain in the instruction-bitmap array.
pub const INST_BITMAP_STRIDE: u64 = (INST_BITMAP_WORDS * 8) as u64;

/// Number of CSR addresses covered by the register bitmap (the full
/// 12-bit space).
pub const CSR_SPACE: usize = 4096;

/// Bytes per domain in the register-bitmap array: 2 bits (read/write)
/// per CSR.
pub const REG_BITMAP_STRIDE: u64 = (CSR_SPACE * 2 / 8) as u64;

/// CSRs covered by one register-bitmap cache entry. 128 CSRs × 2 bits =
/// 256 bits = one 4×u64 cache payload ("a register bitmap for a domain
/// can be divided into several entries", §4.3).
pub const REG_GROUP_CSRS: usize = 128;

/// Register-bitmap groups per domain.
pub const REG_GROUPS: usize = CSR_SPACE / REG_GROUP_CSRS;

/// Number of bit-mask slots per domain (CSRs with bitwise control).
pub const MASK_SLOTS: usize = 8;

/// Bytes per domain in the bit-mask array.
pub const MASK_STRIDE: u64 = (MASK_SLOTS * 8) as u64;

/// Bytes per SGT entry: gate address, destination address, destination
/// domain, flags.
pub const SGT_ENTRY_BYTES: u64 = 32;

/// SGT entry flag: entry is valid.
pub const SGT_FLAG_VALID: u64 = 1;

/// The fixed hardware mapping from CSR address to bit-mask-array slot
/// ("the three mappings ... are hardware parameters", §4.1).
///
/// The chosen CSRs mirror the paper's prototypes: `sstatus` needs bitwise
/// control on RISC-V; `CR0`/`CR4` do on x86 — our x86-analogue control
/// registers (`wpctl` ≈ CR0.WP, `vfctl` ≈ MSR 0x150, `pkr` ≈ PKRU,
/// `btbctl` ≈ MSR 0x48/0x49) take their place.
pub const MASKED_CSRS: [(u16, usize); 5] = [
    (addr::SSTATUS, 0),
    (addr::WPCTL, 1),
    (addr::VFCTL, 2),
    (addr::PKR, 3),
    (addr::BTBCTL, 4),
];

/// The bit-mask-array slot for `csr`, if it has bitwise control.
pub fn mask_slot(csr: u16) -> Option<usize> {
    MASKED_CSRS.iter().find(|(c, _)| *c == csr).map(|(_, s)| *s)
}

/// Placement of every ISA-Grid structure inside the trusted memory
/// region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridLayout {
    /// Trusted-memory base (power-of-two aligned).
    pub tmem_base: u64,
    /// Trusted-memory size in bytes (power of two).
    pub tmem_size: u64,
    /// Maximum number of domains the tables can describe.
    pub max_domains: u64,
    /// Maximum number of gates the SGT can hold.
    pub max_gates: u64,
}

impl GridLayout {
    /// A layout with the given trusted region and defaults of 64 domains
    /// and 64 gates.
    ///
    /// # Panics
    ///
    /// Panics unless the region is power-of-two sized and aligned (the
    /// paper minimizes bound-check cost this way, §4.5) and large enough
    /// for the tables.
    pub fn new(tmem_base: u64, tmem_size: u64) -> GridLayout {
        let l = GridLayout {
            tmem_base,
            tmem_size,
            max_domains: 64,
            max_gates: 64,
        };
        l.validate();
        l
    }

    /// Override table capacities.
    ///
    /// # Panics
    ///
    /// Panics if the tables no longer fit.
    pub fn with_capacity(mut self, max_domains: u64, max_gates: u64) -> GridLayout {
        self.max_domains = max_domains;
        self.max_gates = max_gates;
        self.validate();
        self
    }

    fn validate(&self) {
        assert!(
            self.tmem_size.is_power_of_two(),
            "trusted memory size must be a power of two"
        );
        assert_eq!(
            self.tmem_base % self.tmem_size,
            0,
            "trusted memory must be naturally aligned"
        );
        assert!(
            self.tstack_base() + 4096 <= self.tmem_end(),
            "trusted memory too small for the configured table sizes"
        );
    }

    /// One past the last trusted byte (`tmeml`).
    pub fn tmem_end(&self) -> u64 {
        self.tmem_base + self.tmem_size
    }

    /// Base of the instruction bitmaps (`inst-cap`).
    pub fn inst_cap(&self) -> u64 {
        self.tmem_base
    }

    /// Base of the register bitmaps (`csr-cap`).
    pub fn csr_cap(&self) -> u64 {
        self.inst_cap() + self.max_domains * INST_BITMAP_STRIDE
    }

    /// Base of the bit-mask arrays (`csr-bit-mask`).
    pub fn csr_mask(&self) -> u64 {
        self.csr_cap() + self.max_domains * REG_BITMAP_STRIDE
    }

    /// Base of the switching gate table (`gate-addr`).
    pub fn gate_addr(&self) -> u64 {
        self.csr_mask() + self.max_domains * MASK_STRIDE
    }

    /// Base of the trusted-stack area (everything after the tables).
    pub fn tstack_base(&self) -> u64 {
        self.gate_addr() + self.max_gates * SGT_ENTRY_BYTES
    }

    /// Address of word `w` of domain `d`'s instruction bitmap.
    pub fn inst_word_addr(&self, d: u64, w: usize) -> u64 {
        self.inst_cap() + d * INST_BITMAP_STRIDE + (w * 8) as u64
    }

    /// Address of the 32-byte register-bitmap group `g` of domain `d`.
    pub fn reg_group_addr(&self, d: u64, g: usize) -> u64 {
        self.csr_cap() + d * REG_BITMAP_STRIDE + (g * REG_GROUP_CSRS * 2 / 8) as u64
    }

    /// Address of mask slot `s` of domain `d`.
    pub fn mask_addr(&self, d: u64, s: usize) -> u64 {
        self.csr_mask() + d * MASK_STRIDE + (s * 8) as u64
    }

    /// Address of SGT entry `g`.
    pub fn sgt_entry_addr(&self, g: u64) -> u64 {
        self.gate_addr() + g * SGT_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> GridLayout {
        GridLayout::new(0x8380_0000, 1 << 20)
    }

    #[test]
    fn bitmap_width_covers_every_class() {
        const { assert!(INST_BITMAP_WORDS * 64 >= Kind::COUNT) };
        const { assert!(INST_BITMAP_WORDS <= 2, "classes fit two words today") };
    }

    #[test]
    fn structures_do_not_overlap() {
        let l = layout();
        assert!(l.inst_cap() < l.csr_cap());
        assert!(l.csr_cap() + l.max_domains * REG_BITMAP_STRIDE <= l.csr_mask());
        assert!(l.csr_mask() + l.max_domains * MASK_STRIDE <= l.gate_addr());
        assert!(l.gate_addr() + l.max_gates * SGT_ENTRY_BYTES <= l.tstack_base());
        assert!(l.tstack_base() < l.tmem_end());
    }

    #[test]
    fn addressing_is_strided() {
        let l = layout();
        assert_eq!(l.inst_word_addr(3, 1) - l.inst_word_addr(3, 0), 8);
        assert_eq!(
            l.inst_word_addr(4, 0) - l.inst_word_addr(3, 0),
            INST_BITMAP_STRIDE
        );
        assert_eq!(l.reg_group_addr(0, 1) - l.reg_group_addr(0, 0), 32);
        assert_eq!(l.sgt_entry_addr(2) - l.sgt_entry_addr(1), SGT_ENTRY_BYTES);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_size_rejected() {
        GridLayout::new(0x8380_0000, 3 << 19);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_base_rejected() {
        GridLayout::new(0x8380_1000, 1 << 20);
    }

    #[test]
    fn mask_slot_mapping() {
        use isa_sim::csr::addr;
        assert_eq!(mask_slot(addr::SSTATUS), Some(0));
        assert_eq!(mask_slot(addr::WPCTL), Some(1));
        assert_eq!(mask_slot(addr::SATP), None);
        // All slots are distinct and within range.
        let mut seen = std::collections::BTreeSet::new();
        for (_, s) in MASKED_CSRS {
            assert!(s < MASK_SLOTS);
            assert!(seen.insert(s), "duplicate slot {s}");
        }
    }

    #[test]
    fn capacity_override_checks_fit() {
        let l = GridLayout::new(0x8380_0000, 1 << 20).with_capacity(128, 256);
        assert!(l.tstack_base() < l.tmem_end());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn oversized_tables_rejected() {
        // 1024 domains × 1 KiB register bitmaps exceed 1 MiB.
        GridLayout::new(0x8380_0000, 1 << 20).with_capacity(1024, 64);
    }
}
