//! Cross-hart privilege-cache shootdown.
//!
//! The paper's PCU is a per-core structure whose privilege caches front
//! tables in *shared* trusted memory (§3.3, §4.3), so a real multi-core
//! deployment needs a coherence contract the paper leaves to hardware:
//! when any hart mutates a privilege table or executes the PCU fence
//! (`pflh`), every other hart must flush its PCU caches **before its
//! next commit** — the same obligation TLB shootdowns and per-core
//! PKRU state impose on MPK-style systems.
//!
//! The contract is carried by a [`ShootdownCell`] shared by all harts:
//! a publisher bumps the global *epoch*; each hart records the last
//! epoch it has acknowledged. A hart with `acked < epoch` has a
//! pending shootdown and flushes (then acks) at the top of its next
//! instruction check — i.e. before the next instruction can commit
//! against stale privileges. The epoch counter is sequentially
//! consistent, which also orders the publisher's table writes (relaxed
//! byte stores on the shared bus) before the flusher's refills.

use std::sync::atomic::{AtomicU64, Ordering};

/// Modeled cycles to re-warm one discarded privilege-cache entry after
/// a shootdown (one trusted-memory refill, same cost class as the
/// paper's PCU-miss latency).
pub const FLUSH_CYCLES_PER_ENTRY: u64 = 2;

/// The shared epoch/ack cell coordinating privilege-cache shootdowns
/// between harts. One instance is shared (via `Arc`) by every PCU on
/// the same bus.
#[derive(Debug)]
pub struct ShootdownCell {
    /// Global coherence epoch, bumped by each publication.
    epoch: AtomicU64,
    /// Per-hart: last epoch this hart has flushed up to.
    acks: Vec<AtomicU64>,
}

impl ShootdownCell {
    /// A cell for `harts` harts, starting at epoch 0 with every hart
    /// caught up.
    pub fn new(harts: usize) -> ShootdownCell {
        assert!(harts >= 1, "need at least one hart");
        ShootdownCell {
            epoch: AtomicU64::new(0),
            acks: (0..harts).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of harts participating.
    pub fn harts(&self) -> usize {
        self.acks.len()
    }

    /// The current coherence epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Publish a shootdown from `hart`: advance the epoch and mark the
    /// publisher itself caught up (it flushes its own caches locally as
    /// part of the mutation). Returns the new epoch.
    pub fn publish(&self, hart: usize) -> u64 {
        let e = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.acks[hart].fetch_max(e, Ordering::SeqCst);
        e
    }

    /// The epoch `hart` must catch up to, if it is behind.
    pub fn pending(&self, hart: usize) -> Option<u64> {
        let e = self.epoch.load(Ordering::SeqCst);
        (self.acks[hart].load(Ordering::SeqCst) < e).then_some(e)
    }

    /// Record that `hart` has flushed up to `epoch`.
    pub fn ack(&self, hart: usize, epoch: u64) {
        self.acks[hart].fetch_max(epoch, Ordering::SeqCst);
    }

    /// The last epoch `hart` acknowledged.
    pub fn acked(&self, hart: usize) -> u64 {
        self.acks[hart].load(Ordering::SeqCst)
    }

    /// True when every hart has acknowledged `epoch` — the fence
    /// completion condition.
    pub fn complete(&self, epoch: u64) -> bool {
        self.acks.iter().all(|a| a.load(Ordering::SeqCst) >= epoch)
    }

    /// True when every hart has caught up to the current epoch.
    pub fn quiesced(&self) -> bool {
        self.complete(self.epoch())
    }

    // ---- snapshot/restore ----

    /// Export `(epoch, per-hart acks)` (snapshot seam). A mid-shootdown
    /// snapshot — epoch published, some hart not yet acked — exports
    /// exactly that lag, so the restored machine still owes the flush.
    pub fn export_state(&self) -> (u64, Vec<u64>) {
        (
            self.epoch.load(Ordering::SeqCst),
            self.acks.iter().map(|a| a.load(Ordering::SeqCst)).collect(),
        )
    }

    /// Restore state exported by [`ShootdownCell::export_state`].
    ///
    /// # Panics
    ///
    /// Panics when `acks` does not match this cell's hart count: a
    /// shape mismatch means the snapshot belongs to a differently
    /// configured machine and restoring it would silently drop flush
    /// obligations.
    pub fn import_state(&self, epoch: u64, acks: &[u64]) {
        assert_eq!(
            acks.len(),
            self.acks.len(),
            "shootdown-cell hart count mismatch"
        );
        self.epoch.store(epoch, Ordering::SeqCst);
        for (cell, &v) in self.acks.iter().zip(acks) {
            cell.store(v, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_marks_publisher_caught_up() {
        let c = ShootdownCell::new(2);
        assert!(c.quiesced());
        let e = c.publish(0);
        assert_eq!(e, 1);
        assert_eq!(c.pending(0), None, "publisher needs no flush");
        assert_eq!(c.pending(1), Some(1));
        assert!(!c.quiesced());
        c.ack(1, 1);
        assert_eq!(c.pending(1), None);
        assert!(c.quiesced());
    }

    #[test]
    fn mid_shootdown_state_roundtrips() {
        let c = ShootdownCell::new(2);
        c.publish(0); // hart 1 now owes a flush
        let (epoch, acks) = c.export_state();
        let r = ShootdownCell::new(2);
        r.import_state(epoch, &acks);
        assert_eq!(r.epoch(), 1);
        assert_eq!(r.pending(0), None);
        assert_eq!(r.pending(1), Some(1), "restored hart still owes flush");
        assert!(!r.quiesced());
    }

    #[test]
    fn epochs_accumulate_and_acks_are_monotone() {
        let c = ShootdownCell::new(3);
        c.publish(0);
        c.publish(1);
        assert_eq!(c.epoch(), 2);
        // Hart 2 missed both; one flush at the latest epoch covers both.
        assert_eq!(c.pending(2), Some(2));
        c.ack(2, 2);
        // A stale ack can never regress the recorded epoch.
        c.ack(2, 1);
        assert_eq!(c.acked(2), 2);
        // Hart 0 acked epoch 1 implicitly, still owes epoch 2.
        assert_eq!(c.pending(0), Some(2));
        assert!(!c.complete(2));
        c.ack(0, 2);
        assert!(c.complete(2));
    }
}
