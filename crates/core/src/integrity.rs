//! Trusted-memory seal store: the PCU's fail-closed integrity layer.
//!
//! Hardware ISA-Grid trusts the fenced privilege tables implicitly; this
//! reproduction hardens them so the chaos harness (`isa-fault`) can prove
//! the *fail-closed* property: every 8-byte table word written through a
//! legitimate PCU operation (`install`, `add_domain`, `update_domain`,
//! `add_gate`) is stamped with a seal — `mix64(addr ^ value)` — and every
//! Grid Cache refill re-verifies the word it walked against that seal.
//! A mismatch means the word was corrupted *outside* the architectural
//! write paths (a bit flip injected by the harness, or a real bug) and
//! the refill is resolved as deny + `GridIntegrityFault` instead of
//! silently caching a corrupt allow-decision.
//!
//! The store is shared (`Arc`) across all mirror PCUs of an SMP machine:
//! a legitimate cross-hart table update reseals once and every hart
//! verifies against the same baseline, so detection never false-positives
//! on real coherence traffic.  All state is a deterministic function of
//! the write history — no host entropy — which keeps same-seed fault runs
//! bit-identical.

use isa_fault::mix64;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

/// Result of verifying one table word on refill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealVerdict {
    /// The word matches its seal (or lies outside the sealed region).
    Ok,
    /// The word does not match the value the trusted write path stored:
    /// the refill must be resolved fail-closed.
    Corrupt,
}

#[derive(Debug, Default)]
struct SealMap {
    /// Sealed trusted-memory region `[base, limit)`; 0/0 = not engaged.
    base: u64,
    limit: u64,
    /// Seal per 8-byte-aligned word address.
    seals: HashMap<u64, u64>,
    /// Words written by the guest through the architectural store path
    /// since their last seal: re-sealed on first verified read
    /// (trust-on-first-use for domain-0's direct table writes).
    dirty: HashSet<u64>,
}

/// Shared seal registry for one machine's trusted-memory tables.
#[derive(Debug, Default)]
pub struct SealStore {
    inner: Mutex<SealMap>,
}

/// The seal function: position-keyed so swapping two equal-valued words
/// still verifies, value-keyed so any bit flip breaks it.
fn seal_of(addr: u64, value: u64) -> u64 {
    mix64(addr ^ mix64(value))
}

impl SealStore {
    /// A fresh, disengaged store.
    pub fn new() -> Arc<Self> {
        Arc::new(SealStore::default())
    }

    fn lock(&self) -> MutexGuard<'_, SealMap> {
        // Never cascade a panic from another hart thread into this one.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Engage the store over `[base, limit)` and drop all prior seals.
    /// Called by `Pcu::install`, which zeroes the region: absent words
    /// inside the region verify against an expected value of 0.
    pub fn reset(&self, base: u64, limit: u64) {
        let mut m = self.lock();
        m.base = base;
        m.limit = limit;
        m.seals.clear();
        m.dirty.clear();
    }

    /// Seal one 8-byte word written through a trusted PCU operation.
    pub fn seal(&self, addr: u64, value: u64) {
        let mut m = self.lock();
        let a = addr & !7;
        m.dirty.remove(&a);
        m.seals.insert(a, seal_of(a, value));
    }

    /// Record a guest store of `len` bytes at `addr` hitting the sealed
    /// region: the touched words become trust-on-first-use (domain-0 may
    /// legitimately write tables directly; the next verified read
    /// re-seals whatever value it observes).
    pub fn note_write(&self, addr: u64, len: u64) {
        let mut m = self.lock();
        if m.limit <= m.base {
            return;
        }
        let first = addr & !7;
        let last = (addr + len.max(1) - 1) & !7;
        let mut a = first;
        while a <= last {
            if a >= m.base && a < m.limit {
                m.seals.remove(&a);
                m.dirty.insert(a);
            }
            a += 8;
        }
    }

    /// Verify the `value` read back for word `addr` on a Grid Cache
    /// refill. Words outside the engaged region always verify.
    pub fn verify(&self, addr: u64, value: u64) -> SealVerdict {
        let mut m = self.lock();
        let a = addr & !7;
        if m.limit <= m.base || a < m.base || a >= m.limit {
            return SealVerdict::Ok;
        }
        if m.dirty.remove(&a) {
            m.seals.insert(a, seal_of(a, value));
            return SealVerdict::Ok;
        }
        match m.seals.get(&a) {
            Some(s) if *s == seal_of(a, value) => SealVerdict::Ok,
            Some(_) => SealVerdict::Corrupt,
            // Never written since install: install zeroed the region.
            None if value == 0 => SealVerdict::Ok,
            None => SealVerdict::Corrupt,
        }
    }

    /// Number of sealed words (diagnostics).
    pub fn len(&self) -> usize {
        self.lock().seals.len()
    }

    /// True when no words are sealed.
    pub fn is_empty(&self) -> bool {
        self.lock().seals.is_empty()
    }

    // ---- snapshot/restore ----

    /// Export all state as sorted plain data (snapshot seam). Sorting
    /// makes the export independent of `HashMap` iteration order, so
    /// identical stores always produce identical bytes downstream.
    pub fn export_state(&self) -> SealStoreState {
        let m = self.lock();
        let mut seals: Vec<(u64, u64)> = m.seals.iter().map(|(a, s)| (*a, *s)).collect();
        seals.sort_unstable();
        let mut dirty: Vec<u64> = m.dirty.iter().copied().collect();
        dirty.sort_unstable();
        SealStoreState {
            base: m.base,
            limit: m.limit,
            seals,
            dirty,
        }
    }

    /// Replace all state with an image exported by
    /// [`SealStore::export_state`]. Seals restore verbatim — never
    /// recomputed from memory contents, which would erase any pending
    /// corruption the snapshot captured.
    pub fn import_state(&self, s: &SealStoreState) {
        let mut m = self.lock();
        m.base = s.base;
        m.limit = s.limit;
        m.seals = s.seals.iter().copied().collect();
        m.dirty = s.dirty.iter().copied().collect();
    }

    /// A new, independent store holding a copy of this store's state.
    /// Used to give a forked oracle machine its own integrity baseline:
    /// mirror PCUs of one machine *share* a store by design, so forking
    /// a machine must deep-copy it or the fork's table writes would
    /// reseal the original.
    pub fn fork(&self) -> Arc<SealStore> {
        let f = SealStore::new();
        f.import_state(&self.export_state());
        f
    }
}

/// Plain-data image of a [`SealStore`], produced by
/// [`SealStore::export_state`]. Word addresses ascend in both lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SealStoreState {
    /// Engaged region base (0 with `limit` 0 = disengaged).
    pub base: u64,
    /// Engaged region limit (exclusive).
    pub limit: u64,
    /// `(word address, seal)` pairs, ascending by address.
    pub seals: Vec<(u64, u64)>,
    /// Trust-on-first-use word addresses, ascending.
    pub dirty: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_word_verifies() {
        let s = SealStore::new();
        s.reset(0x1000, 0x2000);
        s.seal(0x1008, 0xdead_beef);
        assert_eq!(s.verify(0x1008, 0xdead_beef), SealVerdict::Ok);
        assert_eq!(s.verify(0x1008, 0xdead_beee), SealVerdict::Corrupt);
    }

    #[test]
    fn unwritten_words_expect_zero() {
        let s = SealStore::new();
        s.reset(0x1000, 0x2000);
        assert_eq!(s.verify(0x1010, 0), SealVerdict::Ok);
        assert_eq!(s.verify(0x1010, 1), SealVerdict::Corrupt);
    }

    #[test]
    fn outside_region_always_ok() {
        let s = SealStore::new();
        s.reset(0x1000, 0x2000);
        assert_eq!(s.verify(0x3000, 0x1234), SealVerdict::Ok);
    }

    #[test]
    fn disengaged_store_always_ok() {
        let s = SealStore::new();
        assert_eq!(s.verify(0x1000, 0x1234), SealVerdict::Ok);
    }

    #[test]
    fn guest_write_is_trust_on_first_use() {
        let s = SealStore::new();
        s.reset(0x1000, 0x2000);
        s.seal(0x1008, 7);
        s.note_write(0x1008, 8);
        // First read after the dirty write re-seals whatever it sees...
        assert_eq!(s.verify(0x1008, 42), SealVerdict::Ok);
        // ...and later corruption of that value is again caught.
        assert_eq!(s.verify(0x1008, 43), SealVerdict::Corrupt);
        assert_eq!(s.verify(0x1008, 42), SealVerdict::Ok);
    }

    #[test]
    fn note_write_spans_words() {
        let s = SealStore::new();
        s.reset(0x1000, 0x2000);
        s.seal(0x1008, 1);
        s.seal(0x1010, 2);
        s.note_write(0x100c, 8); // straddles both words
        assert_eq!(s.verify(0x1008, 99), SealVerdict::Ok);
        assert_eq!(s.verify(0x1010, 98), SealVerdict::Ok);
    }

    #[test]
    fn export_import_roundtrips_and_forks_are_independent() {
        let s = SealStore::new();
        s.reset(0x1000, 0x2000);
        s.seal(0x1008, 7);
        s.seal(0x1010, 9);
        s.note_write(0x1010, 8); // 0x1010 becomes dirty
        let state = s.export_state();
        let r = SealStore::new();
        r.import_state(&state);
        assert_eq!(r.export_state(), state, "re-export must be stable");
        assert_eq!(r.verify(0x1008, 7), SealVerdict::Ok);
        assert_eq!(r.verify(0x1008, 8), SealVerdict::Corrupt);
        // Dirty word survived: first read re-seals.
        assert_eq!(r.verify(0x1010, 42), SealVerdict::Ok);
        assert_eq!(r.verify(0x1010, 43), SealVerdict::Corrupt);
        // A fork is independent: resealing in the fork must not leak
        // back into the original.
        let f = s.fork();
        f.seal(0x1008, 99);
        assert_eq!(f.verify(0x1008, 99), SealVerdict::Ok);
        assert_eq!(s.verify(0x1008, 7), SealVerdict::Ok);
        assert_eq!(s.verify(0x1008, 99), SealVerdict::Corrupt);
    }

    #[test]
    fn reset_drops_seals() {
        let s = SealStore::new();
        s.reset(0x1000, 0x2000);
        s.seal(0x1008, 7);
        s.reset(0x1000, 0x2000);
        assert_eq!(s.verify(0x1008, 0), SealVerdict::Ok);
        assert!(s.is_empty());
    }
}
