//! Property tests for the hybrid privilege check (§4.1): the bit-mask
//! write-legality equation and bitmap independence, driven directly
//! against the PCU's `Extension` entry points.

use isa_grid::{DomainSpec, GridLayout, Pcu, PcuConfig};
use isa_sim::csr::addr;
use isa_sim::{Bus, CpuState, Exception, Extension, Priv};
use proptest::prelude::*;

const TMEM: u64 = 0x8380_0000;

fn setup(spec: &DomainSpec) -> (Pcu, Bus, CpuState) {
    let mut bus = Bus::default();
    let mut pcu = Pcu::new(PcuConfig::eight_e());
    pcu.install(&mut bus, GridLayout::new(TMEM, 1 << 20));
    let d = pcu.add_domain(&mut bus, spec);
    pcu.force_domain(d);
    let mut cpu = CpuState::new(0x8000_0000);
    cpu.priv_level = Priv::S;
    (pcu, bus, cpu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A masked write is permitted iff (old ^ new) & !mask == 0 — the
    /// paper's equation, for arbitrary old/new/mask.
    #[test]
    fn mask_equation_is_exact(old in any::<u64>(), new in any::<u64>(), mask in any::<u64>()) {
        let mut spec = DomainSpec::compute_only();
        spec.allow_csr_write_masked(addr::SSTATUS, mask);
        let (mut pcu, mut bus, cpu) = setup(&spec);
        let res = pcu.check_csr(&cpu, &mut bus, addr::SSTATUS, false, true, old, new);
        let legal = (old ^ new) & !mask == 0;
        prop_assert_eq!(res.is_ok(), legal, "old={:#x} new={:#x} mask={:#x}", old, new, mask);
        if let Err(e) = res {
            prop_assert_eq!(e, Exception::GridCsrFault(addr::SSTATUS as u64));
        }
    }

    /// Writes that only change masked-in bits always pass; writes that
    /// change any masked-out bit always fail.
    #[test]
    fn mask_soundness_and_completeness(old in any::<u64>(), delta in any::<u64>(), mask in any::<u64>()) {
        let mut spec = DomainSpec::compute_only();
        spec.allow_csr_write_masked(addr::PKR, mask);
        let (mut pcu, mut bus, cpu) = setup(&spec);
        // Construct a new value differing from old only inside the mask.
        let inside = old ^ (delta & mask);
        prop_assert!(pcu
            .check_csr(&cpu, &mut bus, addr::PKR, false, true, old, inside)
            .is_ok());
        // And one differing outside, whenever that is possible.
        if delta & !mask != 0 {
            let outside = old ^ (delta & !mask);
            prop_assert!(pcu
                .check_csr(&cpu, &mut bus, addr::PKR, false, true, old, outside)
                .is_err());
        }
    }

    /// Read/write permission bits for different CSRs never interfere:
    /// granting access to one CSR grants nothing else.
    #[test]
    fn register_bitmap_bit_isolation(csr in 0u16..4096, probe in 0u16..4096) {
        // The ISA-Grid register block (Table 2) is PCU-owned: accesses
        // are arbitrated by read_csr/write_csr, not the register bitmap.
        let owned = addr::GRID_DOMAIN..=addr::GRID_TMEML;
        prop_assume!(!owned.contains(&csr) && !owned.contains(&probe));
        let mut spec = DomainSpec::compute_only();
        spec.allow_csr_rw(csr);
        let (mut pcu, mut bus, cpu) = setup(&spec);
        let r = pcu.check_csr(&cpu, &mut bus, probe, true, false, 0, 0);
        // Masked CSRs never consult the W bit; reads are what we probe.
        prop_assert_eq!(r.is_ok(), probe == csr, "csr={} probe={}", csr, probe);
    }

    /// Instruction-bitmap isolation: allowing one class does not leak
    /// permission to any other class.
    #[test]
    fn instruction_bitmap_bit_isolation(allow_idx in 0usize..isa_sim::Kind::COUNT) {
        use isa_sim::Kind;
        let kinds: Vec<Kind> = Kind::all().collect();
        let allowed = kinds[allow_idx];
        // Gates/cache-ops are always permitted by the PCU, skip as targets.
        prop_assume!(!allowed.is_grid_custom());
        let mut spec = DomainSpec::deny_all();
        spec.allow_inst(allowed);
        let (mut pcu, mut bus, cpu) = setup(&spec);
        for probe in kinds.iter().copied().filter(|k| !k.is_grid_custom()) {
            // Fabricate a decoded instruction of that class.
            let d = fabricate(probe);
            let ok = pcu.check_inst(&cpu, &mut bus, &d).is_ok();
            prop_assert_eq!(ok, probe == allowed, "allowed={:?} probe={:?}", allowed, probe);
        }
    }
}

/// Build a `Decoded` of a given class via the encoder + decoder.
fn fabricate(kind: isa_sim::Kind) -> isa_sim::Decoded {
    use isa_asm::encode as e;
    use isa_asm::Reg::*;
    use isa_sim::Kind::*;
    let raw = match kind {
        Lui => e::lui(A0, 0),
        Auipc => e::auipc(A0, 0),
        Jal => e::jal(A0, 0),
        Jalr => e::jalr(A0, A0, 0),
        Beq => e::beq(A0, A0, 0),
        Bne => e::bne(A0, A0, 0),
        Blt => e::blt(A0, A0, 0),
        Bge => e::bge(A0, A0, 0),
        Bltu => e::bltu(A0, A0, 0),
        Bgeu => e::bgeu(A0, A0, 0),
        Lb => e::lb(A0, A0, 0),
        Lh => e::lh(A0, A0, 0),
        Lw => e::lw(A0, A0, 0),
        Ld => e::ld(A0, A0, 0),
        Lbu => e::lbu(A0, A0, 0),
        Lhu => e::lhu(A0, A0, 0),
        Lwu => e::lwu(A0, A0, 0),
        Sb => e::sb(A0, A0, 0),
        Sh => e::sh(A0, A0, 0),
        Sw => e::sw(A0, A0, 0),
        Sd => e::sd(A0, A0, 0),
        Addi => e::addi(A0, A0, 0),
        Slti => e::slti(A0, A0, 0),
        Sltiu => e::sltiu(A0, A0, 0),
        Xori => e::xori(A0, A0, 0),
        Ori => e::ori(A0, A0, 0),
        Andi => e::andi(A0, A0, 0),
        Slli => e::slli(A0, A0, 0),
        Srli => e::srli(A0, A0, 0),
        Srai => e::srai(A0, A0, 0),
        Add => e::add(A0, A0, A0),
        Sub => e::sub(A0, A0, A0),
        Sll => e::sll(A0, A0, A0),
        Slt => e::slt(A0, A0, A0),
        Sltu => e::sltu(A0, A0, A0),
        Xor => e::xor(A0, A0, A0),
        Srl => e::srl(A0, A0, A0),
        Sra => e::sra(A0, A0, A0),
        Or => e::or(A0, A0, A0),
        And => e::and(A0, A0, A0),
        Addiw => e::addiw(A0, A0, 0),
        Slliw => e::slliw(A0, A0, 0),
        Srliw => e::srliw(A0, A0, 0),
        Sraiw => e::sraiw(A0, A0, 0),
        Addw => e::addw(A0, A0, A0),
        Subw => e::subw(A0, A0, A0),
        Sllw => e::sllw(A0, A0, A0),
        Srlw => e::srlw(A0, A0, A0),
        Sraw => e::sraw(A0, A0, A0),
        Mul => e::mul(A0, A0, A0),
        Mulh => e::mulh(A0, A0, A0),
        Mulhsu => e::mulhsu(A0, A0, A0),
        Mulhu => e::mulhu(A0, A0, A0),
        Div => e::div(A0, A0, A0),
        Divu => e::divu(A0, A0, A0),
        Rem => e::rem(A0, A0, A0),
        Remu => e::remu(A0, A0, A0),
        Mulw => e::mulw(A0, A0, A0),
        Divw => e::divw(A0, A0, A0),
        Divuw => e::divuw(A0, A0, A0),
        Remw => e::remw(A0, A0, A0),
        Remuw => e::remuw(A0, A0, A0),
        LrW => e::lr_w(A0, A0),
        ScW => e::sc_w(A0, A0, A0),
        AmoswapW => e::amo(0b00001, 0b010, A0, A0, A0),
        AmoaddW => e::amoadd_w(A0, A0, A0),
        AmoxorW => e::amo(0b00100, 0b010, A0, A0, A0),
        AmoandW => e::amo(0b01100, 0b010, A0, A0, A0),
        AmoorW => e::amo(0b01000, 0b010, A0, A0, A0),
        AmominW => e::amomin_w(A0, A0, A0),
        AmomaxW => e::amomax_w(A0, A0, A0),
        AmominuW => e::amominu_w(A0, A0, A0),
        AmomaxuW => e::amomaxu_w(A0, A0, A0),
        LrD => e::lr_d(A0, A0),
        ScD => e::sc_d(A0, A0, A0),
        AmoswapD => e::amoswap_d(A0, A0, A0),
        AmoaddD => e::amoadd_d(A0, A0, A0),
        AmoxorD => e::amoxor_d(A0, A0, A0),
        AmoandD => e::amoand_d(A0, A0, A0),
        AmoorD => e::amoor_d(A0, A0, A0),
        AmominD => e::amomin_d(A0, A0, A0),
        AmomaxD => e::amomax_d(A0, A0, A0),
        AmominuD => e::amominu_d(A0, A0, A0),
        AmomaxuD => e::amomaxu_d(A0, A0, A0),
        Fence => e::fence(),
        FenceI => e::fence_i(),
        Ecall => e::ecall(),
        Ebreak => e::ebreak(),
        Csrrw => e::csrrw(A0, 0x100, A0),
        Csrrs => e::csrrs(A0, 0x100, A0),
        Csrrc => e::csrrc(A0, 0x100, A0),
        Csrrwi => e::csrrwi(A0, 0x100, 0),
        Csrrsi => e::csrrsi(A0, 0x100, 0),
        Csrrci => e::csrrci(A0, 0x100, 0),
        Mret => e::mret(),
        Sret => e::sret(),
        Wfi => e::wfi(),
        SfenceVma => e::sfence_vma(A0, A0),
        Hccall => e::hccall(A0),
        Hccalls => e::hccalls(A0),
        Hcrets => e::hcrets(),
        Pfch => e::pfch(A0),
        Pflh => e::pflh(A0),
    };
    isa_sim::decode(raw).expect("fabricated instruction decodes")
}

#[test]
fn domain_zero_is_exempt_from_all_checks() {
    let spec = DomainSpec::deny_all();
    let (mut pcu, mut bus, cpu) = setup(&spec);
    pcu.force_domain(isa_grid::DomainId::INIT);
    for k in isa_sim::Kind::all().filter(|k| !k.is_grid_custom()) {
        let d = fabricate(k);
        assert!(pcu.check_inst(&cpu, &mut bus, &d).is_ok(), "{k:?}");
    }
    assert!(pcu
        .check_csr(&cpu, &mut bus, addr::SATP, true, true, 0, u64::MAX)
        .is_ok());
    assert!(pcu.check_phys(&cpu, TMEM, 8, true).is_ok());
}

#[test]
fn machine_mode_is_exempt_from_all_checks() {
    let spec = DomainSpec::deny_all();
    let (mut pcu, mut bus, mut cpu) = setup(&spec);
    cpu.priv_level = Priv::M;
    for k in isa_sim::Kind::all().filter(|k| !k.is_grid_custom()) {
        let d = fabricate(k);
        assert!(pcu.check_inst(&cpu, &mut bus, &d).is_ok(), "{k:?}");
    }
    assert!(pcu.check_phys(&cpu, TMEM, 8, true).is_ok());
}

#[test]
fn tmem_fence_covers_partial_overlaps() {
    let spec = DomainSpec::compute_only();
    let (mut pcu, _bus, cpu) = setup(&spec);
    let end = TMEM + (1 << 20);
    // Fully before / after: allowed.
    assert!(pcu.check_phys(&cpu, TMEM - 8, 8, false).is_ok());
    assert!(pcu.check_phys(&cpu, end, 8, false).is_ok());
    // Straddling either edge: denied.
    assert!(pcu.check_phys(&cpu, TMEM - 4, 8, false).is_err());
    assert!(pcu.check_phys(&cpu, end - 4, 8, false).is_err());
    // Inside: denied.
    assert!(pcu.check_phys(&cpu, TMEM + 512, 1, false).is_err());
}
