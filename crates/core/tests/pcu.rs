//! End-to-end PCU tests: guest programs running under ISA-Grid.
//!
//! These exercise the paper's §4 mechanisms one by one: the hybrid
//! privilege check, the four unforgeable-gate properties, the trusted
//! stack, domain-0 semantics, and trusted-memory fencing.

use isa_asm::{Asm, Program, Reg::*};
use isa_grid::{DomainId, DomainSpec, GateSpec, GridLayout, Pcu, PcuConfig};
use isa_sim::csr::addr;
use isa_sim::{mmio, Exception, Exit, Kind, Machine, DEFAULT_RAM_BASE as RAM};

const TMEM: u64 = 0x8380_0000;

fn machine(cfg: PcuConfig) -> Machine<Pcu> {
    let mut m = Machine::new(Pcu::new(cfg));
    m.ext.install(&mut m.bus, GridLayout::new(TMEM, 1 << 20));
    m
}

/// M-mode prologue: set `mtvec` to the `mtrap` label, drop to S-mode at
/// the `kernel` label.
fn boot_to_s(a: &mut Asm) {
    a.la(T0, "mtrap");
    a.csrw(addr::MTVEC as u32, T0);
    a.li(T1, 0b11 << 11);
    a.csrrc(Zero, addr::MSTATUS as u32, T1);
    a.li(T1, 0b01 << 11);
    a.csrrs(Zero, addr::MSTATUS as u32, T1);
    a.la(T0, "kernel");
    a.csrw(addr::MEPC as u32, T0);
    a.mret();
}

/// M-mode trap handler that halts with `mcause` as the exit code.
fn mtrap_halts_with_cause(a: &mut Asm) {
    a.label("mtrap");
    a.csrr(A0, addr::MCAUSE as u32);
    a.li(T6, mmio::HALT);
    a.sd(A0, T6, 0);
    a.nop();
}

fn run(m: &mut Machine<Pcu>, prog: &Program) -> u64 {
    m.load_program(prog);
    match m.run(1_000_000) {
        Exit::Halted(v) => v,
        Exit::StepLimit => panic!(
            "no halt; pc={:#x} domain={}",
            m.cpu.pc,
            m.ext.current_domain()
        ),
    }
}

fn halt_ok(a: &mut Asm) {
    a.li(T6, mmio::HALT);
    a.li(T5, 0xAA);
    a.sd(T5, T6, 0);
    a.nop();
}

/// A kernel-ish domain: compute + CSR instruction classes (per-CSR rights
/// still come from the register bitmap).
fn kernelish() -> DomainSpec {
    let mut d = DomainSpec::compute_only();
    d.allow_insts([
        Kind::Csrrw,
        Kind::Csrrs,
        Kind::Csrrc,
        Kind::Csrrwi,
        Kind::Csrrsi,
        Kind::Csrrci,
    ]);
    d
}

#[test]
fn gate_switches_domain_and_redirects() {
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("never"); // gate must NOT fall through
    a.li(T5, 1);
    a.li(T6, mmio::HALT);
    a.sd(T5, T6, 0);
    a.label("target");
    // Verify the domain CSR changed and pdomain holds the source.
    a.csrr(A1, addr::GRID_DOMAIN as u32);
    a.csrr(A2, addr::GRID_PDOMAIN as u32);
    a.slli(A1, A1, 8);
    a.or(A0, A1, A2);
    a.li(T6, mmio::HALT);
    a.sd(A0, T6, 0);
    a.nop();
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();

    let mut spec = kernelish();
    spec.allow_csr_read(addr::GRID_DOMAIN)
        .allow_csr_read(addr::GRID_PDOMAIN);
    let d = m.ext.add_domain(&mut m.bus, &spec);
    assert_eq!(d, DomainId(1));
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("target"),
            dest_domain: d,
        },
    );
    // domain=1 in bits 15:8, pdomain=0 in bits 7:0.
    assert_eq!(run(&mut m, &prog), 1 << 8);
    assert_eq!(m.ext.current_domain(), DomainId(1));
    assert_eq!(m.ext.stats.gate_calls, 1);
}

#[test]
fn property_i_gate_only_callable_at_registered_address() {
    // An identical hccall instruction at a *different* address must fault:
    // injected/ROP gates cannot switch domains.
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("rogue_gate"); // not the registered address!
    a.hccall(A0);
    halt_ok(&mut a);
    a.label("registered_gate");
    a.hccall(A0);
    a.label("target");
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();

    let d = m.ext.add_domain(&mut m.bus, &kernelish());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("registered_gate"),
            dest_addr: prog.symbol("target"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_GATE);
    assert!(m.ext.stats.faults > 0);
}

#[test]
fn property_iv_unregistered_gate_id_faults() {
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 7); // no such gate
    a.hccall(A0);
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    m.ext.add_domain(&mut m.bus, &kernelish());
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_GATE);
}

#[test]
fn properties_ii_iii_destination_is_pinned() {
    // The gate jumps to the registered destination/domain no matter what
    // the caller hoped for: we verify by observing where control lands.
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    // Attacker-chosen code right after the gate: never reached.
    a.li(A0, 0xbad);
    a.li(T6, mmio::HALT);
    a.sd(A0, T6, 0);
    a.label("pinned_dest");
    a.csrr(A0, addr::GRID_DOMAIN as u32);
    a.li(T6, mmio::HALT);
    a.sd(A0, T6, 0);
    a.nop();
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();

    let mut spec = kernelish();
    spec.allow_csr_read(addr::GRID_DOMAIN);
    let d = m.ext.add_domain(&mut m.bus, &spec);
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("pinned_dest"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), d.0);
}

#[test]
fn extended_gate_call_and_return() {
    // hccalls pushes (ret, src domain) on the trusted stack; hcrets pops
    // and returns — the cross-domain call-and-return convention (§4.2).
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(S0, 0x11);
    a.li(A0, 1); // gate 1: kernel -> helper domain
    a.label("gate_in");
    a.hccalls(A0);
    // hcrets lands here (pc+4 of the hccalls).
    a.csrr(A1, addr::GRID_DOMAIN as u32);
    a.slli(A1, A1, 8);
    a.or(A0, A1, S1);
    a.li(T6, mmio::HALT);
    a.sd(A0, T6, 0);
    a.nop();
    a.label("helper");
    a.li(S1, 0x22); // proof the helper ran
    a.hcrets();
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();

    let mut kspec = kernelish();
    kspec.allow_csr_read(addr::GRID_DOMAIN);
    let helper = m.ext.add_domain(&mut m.bus, &DomainSpec::compute_only());
    let kernel = m.ext.add_domain(&mut m.bus, &kspec);
    // Gate 0: initial entry M/domain-0 -> kernel domain.
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: 0, // unused entry so ids line up with the program
            dest_addr: 0,
            dest_domain: DomainId::INIT,
        },
    );
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate_in"),
            dest_addr: prog.symbol("helper"),
            dest_domain: helper,
        },
    );
    let l = m.ext.layout();
    m.ext
        .set_trusted_stack(l.tstack_base(), l.tstack_base() + 4096);
    // Enter the kernel domain directly (boot path tested elsewhere).
    m.ext.force_domain(kernel);
    // After the round trip the domain must be back to `kernel` (hcrets
    // pops the source domain) and S1 must carry the helper's mark.
    assert_eq!(run(&mut m, &prog), (kernel.0 << 8) | 0x22);
    assert_eq!(m.ext.stats.gate_calls, 1);
    assert_eq!(m.ext.stats.gate_returns, 1);
}

#[test]
fn hcrets_on_empty_trusted_stack_faults() {
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.hcrets();
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let l = m.ext.layout();
    m.ext
        .set_trusted_stack(l.tstack_base(), l.tstack_base() + 4096);
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_GATE);
}

#[test]
fn hcrets_cannot_return_to_domain_0() {
    // A frame whose saved domain is 0 must be rejected (§4.4): the
    // extended return can never be abused to reach the all-privileged
    // domain.
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate"); // called while still in domain-0: pushes src=0
    a.hccalls(A0);
    a.label("target");
    a.hcrets(); // would return to domain-0 -> fault
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let d = m.ext.add_domain(&mut m.bus, &kernelish());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("target"),
            dest_domain: d,
        },
    );
    let l = m.ext.layout();
    m.ext
        .set_trusted_stack(l.tstack_base(), l.tstack_base() + 4096);
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_GATE);
}

#[test]
fn trusted_stack_overflow_faults() {
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccalls(A0); // frame is 16 bytes; stack is only 16 bytes...
    a.label("target");
    a.li(A0, 1);
    a.label("gate2");
    a.hccalls(A0); // ...so the second push overflows
    a.label("target2");
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let d = m.ext.add_domain(&mut m.bus, &kernelish());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("target"),
            dest_domain: d,
        },
    );
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate2"),
            dest_addr: prog.symbol("target2"),
            dest_domain: d,
        },
    );
    let l = m.ext.layout();
    m.ext
        .set_trusted_stack(l.tstack_base(), l.tstack_base() + 16);
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_GATE);
}

#[test]
fn instruction_bitmap_blocks_denied_class() {
    // The restricted domain may not execute sfence.vma — the TLB
    // maintenance instruction class.
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.add(T0, T1, T2); // allowed: plain compute
    a.sfence_vma(Zero, Zero); // denied class -> grid fault
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let d = m.ext.add_domain(&mut m.bus, &DomainSpec::compute_only());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_INST);
}

#[test]
fn csr_read_and_write_bits_enforced_independently() {
    // Domain may read satp but not write it.
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.csrr(T0, addr::SATP as u32); // allowed
    a.csrw(addr::SATP as u32, Zero); // denied -> fault 25
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let mut spec = kernelish();
    spec.allow_csr_read(addr::SATP);
    let d = m.ext.add_domain(&mut m.bus, &spec);
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_CSR);
}

#[test]
fn bit_mask_allows_only_masked_bits() {
    // sstatus with mask = SIE only: toggling SIE is fine, touching SPIE
    // faults. This is the bit-level control of §4.1.
    let sie = 1u64 << 1;
    let spie = 1u64 << 5;
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.li(T0, sie);
    a.csrrs(Zero, addr::SSTATUS as u32, T0); // set SIE: within mask
    a.csrrc(Zero, addr::SSTATUS as u32, T0); // clear SIE: within mask
    a.li(T0, spie);
    a.csrrs(Zero, addr::SSTATUS as u32, T0); // SPIE: outside mask -> fault
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let mut spec = kernelish();
    spec.allow_csr_read(addr::SSTATUS);
    spec.allow_csr_write_masked(addr::SSTATUS, sie);
    let d = m.ext.add_domain(&mut m.bus, &spec);
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_CSR);
}

#[test]
fn identical_value_write_passes_any_mask() {
    // (V_csr ^ V_write) & !M == 0 holds trivially when nothing changes —
    // writing the current value back is always legal.
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.csrr(T0, addr::SSTATUS as u32);
    a.csrw(addr::SSTATUS as u32, T0); // no-op write: allowed even with mask 0
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let mut spec = kernelish();
    spec.allow_csr_read(addr::SSTATUS);
    spec.allow_csr_write_masked(addr::SSTATUS, 0);
    let d = m.ext.add_domain(&mut m.bus, &spec);
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), 0xAA);
}

#[test]
fn trusted_memory_is_fenced_outside_domain_0() {
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.li(T0, TMEM);
    a.ld(A1, T0, 0); // read of the HPT itself -> trusted memory fault
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let d = m.ext.add_domain(&mut m.bus, &DomainSpec::compute_only());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_TMEM);
}

#[test]
fn domain_register_is_never_writable() {
    // Even domain-0 (M-mode) cannot write `domain` with a CSR instruction.
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    a.la(T0, "mtrap");
    a.csrw(addr::MTVEC as u32, T0);
    a.li(T0, 5);
    a.csrw(addr::GRID_DOMAIN as u32, T0);
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_CSR);
}

#[test]
fn grid_base_registers_hidden_from_restricted_domains() {
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.csrr(T0, addr::GRID_TMEMB as u32); // -> fault
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let d = m.ext.add_domain(&mut m.bus, &kernelish());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_CSR);
}

#[test]
fn pflh_flushes_and_pfch_prewarms() {
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    // Touch sstatus twice: first access misses, second hits.
    a.csrr(T0, addr::SSTATUS as u32);
    a.csrr(T0, addr::SSTATUS as u32);
    // Flush everything, then prefetch, then access: the access must hit.
    a.li(T1, 0);
    a.pflh(T1);
    a.li(T1, addr::SSTATUS as u64);
    a.pfch(T1);
    a.csrr(T0, addr::SSTATUS as u32);
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let mut spec = kernelish();
    spec.allow_csr_read(addr::SSTATUS);
    let d = m.ext.add_domain(&mut m.bus, &spec);
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), 0xAA);
    let stats = m.ext.cache_stats();
    // Accesses: miss, hit, (flush), hit-after-prefetch.
    assert_eq!(stats.reg.misses, 1, "{stats:?}");
    assert_eq!(stats.reg.hits, 2, "{stats:?}");
    assert!(m.ext.stats.flushes == 1 && m.ext.stats.prefetches == 1);
}

#[test]
fn sgt_cache_configs_affect_miss_counts() {
    // With an SGT cache, a hot gate misses once; with 8E.N (no SGT
    // cache) every call misses.
    for (cfg, expect_all_miss) in [
        (PcuConfig::eight_e(), false),
        (PcuConfig::eight_e_n(), true),
    ] {
        let mut m = machine(cfg);
        let mut a = Asm::new(RAM);
        boot_to_s(&mut a);
        a.label("kernel");
        a.li(S0, 10); // call the gate 10 times
        a.label("loop");
        a.li(A0, 0);
        a.label("gate");
        a.hccall(A0);
        a.label("target");
        a.li(A0, 1);
        a.label("gate_back");
        a.hccall(A0);
        a.label("back");
        a.addi(S0, S0, -1);
        a.bnez(S0, "loop");
        halt_ok(&mut a);
        mtrap_halts_with_cause(&mut a);
        let prog = a.assemble().unwrap();
        let d = m.ext.add_domain(&mut m.bus, &kernelish());
        m.ext.add_gate(
            &mut m.bus,
            GateSpec {
                gate_addr: prog.symbol("gate"),
                dest_addr: prog.symbol("target"),
                dest_domain: d,
            },
        );
        m.ext.add_gate(
            &mut m.bus,
            GateSpec {
                gate_addr: prog.symbol("gate_back"),
                dest_addr: prog.symbol("back"),
                dest_domain: d,
            },
        );
        assert_eq!(run(&mut m, &prog), 0xAA);
        let sgt = m.ext.cache_stats().sgt;
        assert_eq!(sgt.hits + sgt.misses, 20);
        if expect_all_miss {
            assert_eq!(sgt.misses, 20, "8E.N must always miss");
        } else {
            assert_eq!(sgt.misses, 2, "one cold miss per gate");
        }
    }
}

#[test]
fn update_domain_changes_privileges_at_runtime() {
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.csrr(T0, addr::SATP as u32);
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let mut spec = kernelish();
    spec.allow_csr_read(addr::SATP);
    let d = m.ext.add_domain(&mut m.bus, &spec);
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    // Revoke the read before running: the same program must now fault.
    spec.deny_csr(addr::SATP);
    m.ext.update_domain(&mut m.bus, d, &spec);
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_CSR);
}

#[test]
fn ext_events_report_gate_and_stack_activity() {
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccalls(A0);
    a.label("target");
    halt_ok(&mut a);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let d = m.ext.add_domain(&mut m.bus, &kernelish());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("target"),
            dest_domain: d,
        },
    );
    let l = m.ext.layout();
    m.ext
        .set_trusted_stack(l.tstack_base(), l.tstack_base() + 4096);
    m.load_program(&prog);
    // Step until we observe the gate event.
    let mut saw_gate = false;
    for _ in 0..10_000 {
        if let Some(ev) = m.step() {
            if ev.ext.gate_switch {
                assert_eq!(ev.ext.tstack_ops, 2, "push = 2 trusted-stack words");
                assert_eq!(ev.ext.sgt_miss, 1, "cold SGT lookup");
                saw_gate = true;
                break;
            }
        }
        if m.bus.halted().is_some() {
            break;
        }
    }
    assert!(saw_gate, "gate event never surfaced");
}
