//! Tests for the paper's §8 extensions: unified HPT cache, Draco-style
//! legal-instruction cache, group-bit simplification, runtime
//! registration by guest domain-0 software, and side-channel flushing.

use isa_asm::{Asm, Program, Reg::*};
use isa_grid::{DomainSpec, GateSpec, GridLayout, InstGroup, Pcu, PcuConfig};
use isa_sim::csr::addr;
use isa_sim::{mmio, Exception, Exit, Kind, Machine, DEFAULT_RAM_BASE as RAM};

const TMEM: u64 = 0x8380_0000;

fn machine(cfg: PcuConfig) -> Machine<Pcu> {
    let mut m = Machine::new(Pcu::new(cfg));
    m.ext.install(&mut m.bus, GridLayout::new(TMEM, 1 << 20));
    m
}

fn boot_to_s(a: &mut Asm) {
    a.la(T0, "mtrap");
    a.csrw(addr::MTVEC as u32, T0);
    a.li(T1, 0b11 << 11);
    a.csrrc(Zero, addr::MSTATUS as u32, T1);
    a.li(T1, 0b01 << 11);
    a.csrrs(Zero, addr::MSTATUS as u32, T1);
    a.la(T0, "kernel");
    a.csrw(addr::MEPC as u32, T0);
    a.mret();
}

fn mtrap_halts_with_cause(a: &mut Asm) {
    a.label("mtrap");
    a.csrr(A0, addr::MCAUSE as u32);
    a.li(T6, mmio::HALT);
    a.sd(A0, T6, 0);
    a.nop();
}

fn run(m: &mut Machine<Pcu>, prog: &Program) -> u64 {
    m.load_program(prog);
    match m.run(1_000_000) {
        Exit::Halted(v) => v,
        Exit::StepLimit => panic!("no halt; pc={:#x}", m.cpu.pc),
    }
}

// ---- instruction groups (§8 "Possible Simplification") ----

#[test]
fn groups_partition_every_non_custom_class() {
    for k in Kind::all().filter(|k| !k.is_grid_custom()) {
        let owners: Vec<_> = InstGroup::ALL.iter().filter(|g| g.contains(k)).collect();
        assert_eq!(owners.len(), 1, "{k:?} owned by {owners:?}");
    }
}

#[test]
fn customs_belong_to_no_group() {
    for k in Kind::all().filter(|k| k.is_grid_custom()) {
        assert!(InstGroup::ALL.iter().all(|g| !g.contains(k)), "{k:?}");
    }
}

#[test]
fn allow_group_equals_allowing_each_member() {
    let mut by_group = DomainSpec::deny_all();
    by_group.allow_group(InstGroup::MulDiv);
    let mut by_kind = DomainSpec::deny_all();
    for k in InstGroup::MulDiv.kinds() {
        by_kind.allow_inst(k);
    }
    assert_eq!(by_group, by_kind);
    assert!(by_group.group_allowed(InstGroup::MulDiv));
    assert!(!by_group.group_allowed(InstGroup::IntAlu));
}

#[test]
fn deny_group_revokes_every_member() {
    let mut d = DomainSpec::allow_all();
    d.deny_group(InstGroup::Atomic);
    for k in InstGroup::Atomic.kinds() {
        assert!(!d.inst_allowed(k), "{k:?}");
    }
    assert!(d.inst_allowed(Kind::Add), "other groups untouched");
}

#[test]
fn group_built_domain_blocks_muldiv_at_runtime() {
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.add(T0, T1, T2); // fine
    a.mul(T0, T1, T2); // MulDiv group denied -> fault
    a.li(T6, mmio::HALT);
    a.sd(Zero, T6, 0);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let mut spec = DomainSpec::compute_only();
    spec.deny_group(InstGroup::MulDiv);
    let d = m.ext.add_domain(&mut m.bus, &spec);
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_INST);
}

// ---- unified HPT cache (§4.3 alternative implementation) ----

fn csr_loop_program() -> Program {
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.li(S0, 50);
    a.label("loop");
    a.csrr(T0, addr::SSTATUS as u32);
    a.li(T1, 1 << 1); // SIE: inside the mask below
    a.csrrs(Zero, addr::SSTATUS as u32, T1);
    a.csrrc(Zero, addr::SSTATUS as u32, T1);
    a.addi(S0, S0, -1);
    a.bnez(S0, "loop");
    a.li(T6, mmio::HALT);
    a.li(T5, 0xAA);
    a.sd(T5, T6, 0);
    mtrap_halts_with_cause(&mut a);
    a.assemble().unwrap()
}

fn spec_with_sstatus() -> DomainSpec {
    let mut spec = DomainSpec::compute_only();
    spec.allow_insts([Kind::Csrrw, Kind::Csrrs, Kind::Csrrc]);
    spec.allow_csr_read(addr::SSTATUS);
    spec.allow_csr_write_masked(addr::SSTATUS, 1 << 1);
    spec
}

#[test]
fn unified_cache_is_functionally_identical_to_split() {
    let prog = csr_loop_program();
    for cfg in [PcuConfig::eight_e(), PcuConfig::unified_24e()] {
        let mut m = machine(cfg);
        let d = m.ext.add_domain(&mut m.bus, &spec_with_sstatus());
        m.ext.add_gate(
            &mut m.bus,
            GateSpec {
                gate_addr: prog.symbol("gate"),
                dest_addr: prog.symbol("restricted"),
                dest_domain: d,
            },
        );
        assert_eq!(run(&mut m, &prog), 0xAA, "{cfg:?}");
    }
}

#[test]
fn unified_cache_routes_all_hpt_traffic_through_one_storage() {
    let prog = csr_loop_program();
    let mut m = machine(PcuConfig::unified_24e());
    let d = m.ext.add_domain(&mut m.bus, &spec_with_sstatus());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    run(&mut m, &prog);
    let s = m.ext.cache_stats();
    assert_eq!(s.reg.hits + s.reg.misses, 0, "split reg cache unused");
    assert_eq!(s.mask.hits + s.mask.misses, 0, "split mask cache unused");
    assert!(
        s.inst.hits > 100,
        "unified storage carries the traffic: {s:?}"
    );
    // All three entry types coexist without tag collisions.
    assert!(s.inst.misses >= 3, "one cold miss per entry type at least");
}

// ---- Draco-style legal-instruction cache (§8 "Cache Optimization") ----

#[test]
fn legal_cache_short_circuits_hot_instructions() {
    let prog = csr_loop_program();
    let mut m = machine(PcuConfig::eight_e_draco(64));
    let d = m.ext.add_domain(&mut m.bus, &spec_with_sstatus());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), 0xAA);
    assert!(
        m.ext.stats.legal_hits > 100,
        "hits: {}",
        m.ext.stats.legal_hits
    );
    let s = m.ext.legal_cache_stats();
    assert!(s.hit_rate() > 0.5, "{s:?}");
}

#[test]
fn legal_cache_never_admits_denied_instructions() {
    // The denied mul never passes, so it can never enter the legal cache
    // and must fault no matter how often it is attempted.
    let mut m = machine(PcuConfig::eight_e_draco(64));
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.mul(T0, T1, T2);
    a.li(T6, mmio::HALT);
    a.sd(Zero, T6, 0);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let mut spec = DomainSpec::compute_only();
    spec.deny_group(InstGroup::MulDiv);
    let d = m.ext.add_domain(&mut m.bus, &spec);
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_INST);
    assert_eq!(
        m.ext.stats.legal_hits, 0,
        "nothing legal was cached for mul"
    );
}

#[test]
fn legal_cache_excludes_value_dependent_csr_writes() {
    // A masked CSR write must be re-checked every time: the same
    // instruction bytes are legal for one value and illegal for another.
    let prog = csr_loop_program();
    let mut m = machine(PcuConfig::eight_e_draco(64));
    let d = m.ext.add_domain(&mut m.bus, &spec_with_sstatus());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    run(&mut m, &prog);
    // The loop ran 50 CSR writes; each one performed a real csr check.
    assert!(m.ext.stats.csr_checks >= 150, "{}", m.ext.stats.csr_checks);
}

// ---- runtime registration by guest domain-0 software (§5.2) ----

#[test]
fn guest_domain0_registers_a_gate_at_runtime() {
    // S-mode code in domain-0 writes an SGT entry directly into trusted
    // memory (allowed: loads/stores may touch trusted memory in
    // domain-0), bumps gate-nr, and then takes the brand-new gate.
    let mut m = machine(PcuConfig::eight_e());
    let layout = m.ext.layout();
    let sgt0 = layout.sgt_entry_addr(0);

    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    // Build SGT entry 0 in trusted memory: {gate, dest, domain=1, valid}.
    a.li(T0, sgt0);
    a.la(T1, "gate");
    a.sd(T1, T0, 0);
    a.la(T1, "target");
    a.sd(T1, T0, 8);
    a.li(T1, 1);
    a.sd(T1, T0, 16);
    a.sd(T1, T0, 24); // SGT_FLAG_VALID
                      // Publish it: gate-nr = 1 (writable in domain-0 only).
    a.li(T1, 1);
    a.csrw(addr::GRID_GATE_NR as u32, T1);
    // And use it.
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("target");
    a.csrr(A0, addr::GRID_DOMAIN as u32);
    a.li(T6, mmio::HALT);
    a.sd(A0, T6, 0);
    a.nop();
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();

    // The destination domain is registered host-side beforehand (its id
    // is 1); the gate itself is created *by the guest*.
    let mut spec = DomainSpec::compute_only();
    spec.allow_insts([Kind::Csrrw, Kind::Csrrs]);
    spec.allow_csr_read(addr::GRID_DOMAIN);
    m.ext.add_domain(&mut m.bus, &spec);
    assert_eq!(
        run(&mut m, &prog),
        1,
        "landed in domain-1 via the guest-made gate"
    );
}

#[test]
fn restricted_domain_cannot_publish_gates() {
    // The same gate-nr write from a non-zero domain must fault: runtime
    // registration is a domain-0 service.
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.li(T1, 7);
    a.csrw(addr::GRID_GATE_NR as u32, T1);
    a.li(T6, mmio::HALT);
    a.sd(Zero, T6, 0);
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let mut spec = DomainSpec::compute_only();
    spec.allow_insts([Kind::Csrrw, Kind::Csrrs]);
    let d = m.ext.add_domain(&mut m.bus, &spec);
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: d,
        },
    );
    assert_eq!(run(&mut m, &prog), Exception::CAUSE_GRID_CSR);
}

// ---- side-channel mitigation by flushing (§8 "Cache Optimization") ----

#[test]
fn flushing_before_switch_trades_misses_for_secrecy() {
    // Run the CSR loop twice: once plainly, once flushing the privilege
    // caches every iteration. The flushed run must show many more
    // misses — the measurable cost of hiding the access pattern.
    let build = |flush: bool| {
        let mut a = Asm::new(RAM);
        boot_to_s(&mut a);
        a.label("kernel");
        a.li(A0, 0);
        a.label("gate");
        a.hccall(A0);
        a.label("restricted");
        a.li(S0, 20);
        a.label("loop");
        a.csrr(T0, addr::SSTATUS as u32);
        if flush {
            a.li(T1, 0);
            a.pflh(T1);
        }
        a.addi(S0, S0, -1);
        a.bnez(S0, "loop");
        a.li(T6, mmio::HALT);
        a.li(T5, 0xAA);
        a.sd(T5, T6, 0);
        mtrap_halts_with_cause(&mut a);
        a.assemble().unwrap()
    };
    let mut misses = Vec::new();
    for flush in [false, true] {
        let prog = build(flush);
        let mut m = machine(PcuConfig::eight_e());
        let d = m.ext.add_domain(&mut m.bus, &spec_with_sstatus());
        m.ext.add_gate(
            &mut m.bus,
            GateSpec {
                gate_addr: prog.symbol("gate"),
                dest_addr: prog.symbol("restricted"),
                dest_domain: d,
            },
        );
        assert_eq!(run(&mut m, &prog), 0xAA);
        misses.push(m.ext.cache_stats().reg.misses);
    }
    assert!(
        misses[1] >= misses[0] + 19,
        "flushing must force refetches: {misses:?}"
    );
}

// ---- per-process SGTs (§8 "Extending to User Space") ----

#[test]
fn domain0_swaps_sgts_like_process_switching() {
    // §8: domain-0 software can "maintain multiple SGTs for different
    // processes and the kernel, and switch among them" by re-pointing
    // gate-addr. The same gate id then resolves to a different gate.
    let mut m = machine(PcuConfig::eight_e());
    let layout = m.ext.layout();
    // A second SGT lives elsewhere in trusted memory.
    let sgt_b = layout.tstack_base() + 0x2000;

    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    // Process A's view: gate 0 -> domain 1.
    a.li(T4, 0);
    a.label("site_a");
    a.hccall(T4);
    a.label("ta");
    a.csrr(S5, addr::GRID_DOMAIN as u32);
    a.li(T4, 1);
    a.label("site_back");
    a.hccall(T4); // registered gate back to domain-0
    a.label("back_in_0");
    // "Context switch": point gate-addr at process B's SGT and flush the
    // SGT cache (stale entries belong to process A).
    a.li(T0, sgt_b);
    a.csrw(addr::GRID_GATE_ADDR as u32, T0);
    a.li(T0, 4); // SGT cache id
    a.pflh(T0);
    // Same gate id 0, process B's view: -> domain 2.
    a.li(T4, 0);
    a.label("site_b");
    a.hccall(T4);
    a.label("tb");
    a.csrr(T0, addr::GRID_DOMAIN as u32);
    a.slli(T0, T0, 8);
    a.or(A0, T0, S5);
    a.li(T6, mmio::HALT);
    a.sd(A0, T6, 0);
    a.nop();
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();

    let mut spec = DomainSpec::compute_only();
    spec.allow_insts([Kind::Csrrw, Kind::Csrrs]);
    spec.allow_csr_read(addr::GRID_DOMAIN);
    let d1 = m.ext.add_domain(&mut m.bus, &spec);
    let d2 = m.ext.add_domain(&mut m.bus, &spec);
    // Process A's SGT (the installed one).
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("site_a"),
            dest_addr: prog.symbol("ta"),
            dest_domain: d1,
        },
    );
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("site_back"),
            dest_addr: prog.symbol("back_in_0"),
            dest_domain: isa_grid::DomainId::INIT,
        },
    );
    // Process B's SGT, written directly into trusted memory by "domain-0
    // software" (the host here).
    m.bus.write_u64(sgt_b, prog.symbol("site_b"));
    m.bus.write_u64(sgt_b + 8, prog.symbol("tb"));
    m.bus.write_u64(sgt_b + 16, d2.0);
    m.bus.write_u64(sgt_b + 24, 1); // valid

    // Domain 1 through table A (low byte), domain 2 through table B.
    assert_eq!(run(&mut m, &prog), (d2.0 << 8) | d1.0);
}

// ---- per-thread trusted stacks (§5.2 context switching) ----

#[test]
fn trusted_stack_save_restore_preserves_pending_frames() {
    // Enter a cross-domain call with hccalls, then have "domain-0
    // software" switch to another thread's (empty) trusted stack and
    // back; the pending frame must still return correctly.
    let mut m = machine(PcuConfig::eight_e());
    let mut a = Asm::new(RAM);
    boot_to_s(&mut a);
    a.label("kernel");
    a.li(T4, 1);
    a.label("setup");
    a.hccall(T4); // leave domain-0
    a.label("in_a");
    a.li(T4, 0);
    a.label("gate");
    a.hccalls(T4);
    // hcrets returns here:
    a.li(T6, mmio::HALT);
    a.li(T5, 0xAA);
    a.sd(T5, T6, 0);
    a.label("target");
    // Ask the host to context switch (marker via value log), then return.
    a.li(T6, mmio::VALUE_LOG);
    a.li(T5, 1);
    a.sd(T5, T6, 0);
    a.hcrets();
    mtrap_halts_with_cause(&mut a);
    let prog = a.assemble().unwrap();
    let da = m.ext.add_domain(&mut m.bus, &DomainSpec::compute_only());
    let db = m.ext.add_domain(&mut m.bus, &DomainSpec::compute_only());
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("target"),
            dest_domain: db,
        },
    );
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("setup"),
            dest_addr: prog.symbol("in_a"),
            dest_domain: da,
        },
    );
    let l = m.ext.layout();
    m.ext
        .set_trusted_stack(l.tstack_base(), l.tstack_base() + 4096);
    m.load_program(&prog);

    // Step until the guest signals from inside the cross-domain call.
    while m.bus.value_log().is_empty() {
        m.step();
        assert!(
            m.bus.halted().is_none(),
            "halted early: {:?}",
            m.bus.halted()
        );
    }
    // Simulated thread switch: stash thread A's trusted stack, install
    // thread B's, run nothing, switch back (what domain-0 does, §5.2).
    let saved = m.ext.save_trusted_stack();
    let (sp, _, _) = saved;
    assert!(sp > l.tstack_base(), "a frame is pending");
    m.ext.restore_trusted_stack(
        l.tstack_base() + 8192,
        l.tstack_base() + 8192,
        l.tstack_base() + 12288,
    );
    m.ext.restore_trusted_stack(saved.0, saved.1, saved.2);
    match m.run(10_000) {
        Exit::Halted(v) => assert_eq!(v, 0xAA),
        Exit::StepLimit => panic!("did not finish"),
    }
}
