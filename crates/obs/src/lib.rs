//! # isa-obs — the observability spine of the ISA-Grid reproduction
//!
//! Every evaluation artifact of the paper (§7, Fig. 5–8, Tables 4–6) is
//! built on counting things: privilege-check verdicts, HPT/SGT cache
//! hits, gate switches, cycle attribution. This crate is the single
//! substrate those counts flow through:
//!
//! * [`TraceEvent`] — a structured event taxonomy (retire, check
//!   verdict, cache hit/miss/flush, gate call/return, domain switch,
//!   trap, trusted-memory fence) recorded into a bounded [`EventRing`].
//! * [`Tracer`] — the recording trait; [`NullTracer`] is the zero-cost
//!   disabled form and [`TraceSink`] the cheaply-cloneable shared handle
//!   the simulator and the PCU both emit into.
//! * [`Counters`] — one snapshot struct subsuming the cache / check /
//!   gate / timing / run tallies that previously lived in four ad-hoc
//!   types; [`Counters::entries`] flattens it into a registry of
//!   dotted-name counters.
//! * [`Json`] / [`ToJson`] — a tiny dependency-free JSON encoder (and
//!   parser, for reading saved profiles back) so run reports and bench
//!   tables can be emitted machine-readable (the environment cannot
//!   fetch serde, so this is hand-rolled).
//! * [`Profile`] / [`ProfSink`] — the profiling layer: log-bucketed
//!   [`Histogram`]s, [`Span`] timelines, a [`TimeSeries`] recorder, and
//!   per-hart cycle attribution by (domain, privilege level), plus the
//!   [`AuditLog`] of denied checks the PCU keeps and the
//!   [`ProfileReport`] Perfetto `trace_event` exporter.

#![warn(missing_docs)]

mod counters;
mod event;
mod json;
mod perfetto;
mod prof;
mod ring;
mod trace;

pub use counters::{
    BbCounters, CacheBank, CacheCounters, CheckCounters, Counters, GateCounters, JitCounters,
    RunCounters, SmpCounters, TimingCounters,
};
pub use event::{CacheKind, CheckKind, TimedEvent, TraceEvent};
pub use json::{Json, ToJson};
pub use perfetto::{ProfileReport, RunProfile, TraceReport};
pub use prof::{
    AuditKind, AuditLog, AuditRecord, DomainCycles, Histogram, OpClass, ProfSink, Profile, Span,
    SpanKind, StepClass, StepSample, TimeSeries, AUDIT_CAP,
};
pub use ring::{EventRing, NullTracer, RingTracer, TraceSink, Tracer};
pub use trace::{
    DeoptReason, Exemplars, HartEvent, ReqEvent, ReqTrace, ReqTracer, Segment, TelemetryStats,
    TraceCollector, TraceId, TraceMode, TracePolicy,
};
