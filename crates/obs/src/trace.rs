//! Request-scoped tracing: trace IDs, per-hart span buffers, tail-based
//! sampling, and latency exemplars.
//!
//! The serve harness assigns each request a [`TraceId`] at arrival and
//! threads it through dispatch, gate entry/exit, PCU denials, shootdown
//! publish→ack windows, and JIT deopts. Harts record into a private
//! [`ReqTracer`] buffer (same shape as [`ProfSink`](crate::ProfSink):
//! one `Option` branch when disabled, no sharing between harts), and
//! the driver drains the buffers at round boundaries into a
//! [`TraceCollector`] that assembles per-request span trees.
//!
//! Tracing is observe-only by construction: tracers never feed the
//! timing model, the interleaver, or the completion digest, so results
//! are bit-identical with tracing off, sampled, or full.
//!
//! **Tail-based sampling** ([`TracePolicy`]): a finished tree is kept
//! when the mode is [`TraceMode::Full`], when the request's end-to-end
//! latency crosses the slow threshold, when the request was denied,
//! when a seeded 1-in-N survey picks its ID (hart-count independent:
//! the pick hashes only `seed ^ id`), or when the tree was retained as
//! a latency exemplar. **Exemplars** ([`Exemplars`]) keep up to K trace
//! IDs per log₂ histogram bucket — the same bucketing as
//! [`Histogram`](crate::Histogram) — so a reported "p99 = X cycles"
//! resolves to exportable traces from the bucket that answered it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::json::{Json, ToJson};
use crate::prof::{bucket_index, bucket_upper};

/// Identifier tying spans to one serve request. `0` means "no request
/// in flight" and is never assigned to a request.
pub type TraceId = u64;

/// Why a compiled superblock bailed back to the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeoptReason {
    /// Per-block PCU guard mismatch (context changed since compile).
    Guard,
    /// An op inside the block trapped.
    Trap,
    /// A store left RAM (MMIO must go through the slow path).
    Mmio,
    /// The coherence epoch moved (shootdown pending or absorbed).
    Epoch,
    /// A pending interrupt must be taken between instructions.
    Interrupt,
    /// The timer tick landed inside the block's window.
    Timer,
    /// The block did not fit in the remaining step budget.
    Budget,
}

impl DeoptReason {
    /// Number of deopt reasons.
    pub const COUNT: usize = 7;

    /// All reasons, in index order.
    pub const ALL: [DeoptReason; DeoptReason::COUNT] = [
        DeoptReason::Guard,
        DeoptReason::Trap,
        DeoptReason::Mmio,
        DeoptReason::Epoch,
        DeoptReason::Interrupt,
        DeoptReason::Timer,
        DeoptReason::Budget,
    ];

    /// Stable index of this reason in per-reason counter arrays.
    pub fn index(self) -> usize {
        match self {
            DeoptReason::Guard => 0,
            DeoptReason::Trap => 1,
            DeoptReason::Mmio => 2,
            DeoptReason::Epoch => 3,
            DeoptReason::Interrupt => 4,
            DeoptReason::Timer => 5,
            DeoptReason::Budget => 6,
        }
    }

    /// Inverse of [`DeoptReason::index`].
    pub fn from_index(i: usize) -> Option<DeoptReason> {
        DeoptReason::ALL.get(i).copied()
    }

    /// Stable lowercase name (registry suffix, Perfetto label).
    pub fn name(self) -> &'static str {
        match self {
            DeoptReason::Guard => "guard",
            DeoptReason::Trap => "trap",
            DeoptReason::Mmio => "mmio",
            DeoptReason::Epoch => "epoch",
            DeoptReason::Interrupt => "interrupt",
            DeoptReason::Timer => "timer",
            DeoptReason::Budget => "budget",
        }
    }
}

/// One request-scoped event, recorded by a hart at a cycle timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqEvent {
    /// A gate call switched the hart into `domain` (`hccall`/`hccalls`).
    GateEnter {
        /// Destination ISA domain.
        domain: u16,
    },
    /// A gate return switched the hart back into `domain` (`hcrets`).
    GateExit {
        /// Destination ISA domain.
        domain: u16,
    },
    /// The PCU denied a privilege check.
    Deny {
        /// Architectural trap cause raised (24–28 for Grid faults).
        cause: u64,
        /// Kind-specific detail (CSR address, class index, …).
        detail: u64,
    },
    /// The hart acknowledged a cross-hart shootdown.
    ShootdownAck {
        /// Privilege-cache flushes absorbed.
        flushes: u16,
        /// Coherence epoch acknowledged.
        epoch: u64,
    },
    /// The JIT deoptimized back to the interpreter.
    Deopt {
        /// Why the block bailed.
        reason: DeoptReason,
    },
}

impl ReqEvent {
    /// `(tag, a, b)` wire encoding for the snapshot seam.
    fn to_words(self) -> (u64, u64, u64) {
        match self {
            ReqEvent::GateEnter { domain } => (0, domain as u64, 0),
            ReqEvent::GateExit { domain } => (1, domain as u64, 0),
            ReqEvent::Deny { cause, detail } => (2, cause, detail),
            ReqEvent::ShootdownAck { flushes, epoch } => (3, flushes as u64, epoch),
            ReqEvent::Deopt { reason } => (4, reason.index() as u64, 0),
        }
    }

    /// Inverse of [`ReqEvent::to_words`].
    fn from_words(tag: u64, a: u64, b: u64) -> Option<ReqEvent> {
        Some(match tag {
            0 => ReqEvent::GateEnter { domain: a as u16 },
            1 => ReqEvent::GateExit { domain: a as u16 },
            2 => ReqEvent::Deny {
                cause: a,
                detail: b,
            },
            3 => ReqEvent::ShootdownAck {
                flushes: a as u16,
                epoch: b,
            },
            4 => ReqEvent::Deopt {
                reason: DeoptReason::from_index(a as usize)?,
            },
            _ => return None,
        })
    }

    /// Stable lowercase name (Perfetto category).
    pub fn name(&self) -> &'static str {
        match self {
            ReqEvent::GateEnter { .. } => "gate_enter",
            ReqEvent::GateExit { .. } => "gate_exit",
            ReqEvent::Deny { .. } => "deny",
            ReqEvent::ShootdownAck { .. } => "shootdown_ack",
            ReqEvent::Deopt { .. } => "deopt",
        }
    }
}

/// One buffered event: the request it belongs to (`0` when the hart was
/// idle — only shootdown acks are recorded idle) and the hart-local
/// cycle it happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HartEvent {
    /// Request the event belongs to (0 = none).
    pub id: TraceId,
    /// Hart-local cycle timestamp (CSR `cycle` at the event).
    pub t: u64,
    /// The event.
    pub ev: ReqEvent,
}

/// Bound on buffered events per hart between round-boundary drains.
/// A round is ≤ a few hundred steps and request events are sparse, so
/// the bound only bites on pathological event storms; overflow is
/// counted, never reallocated past.
const HART_BUF_CAP: usize = 4096;

/// One hart's private event buffer.
#[derive(Debug, Default)]
struct HartBuf {
    cur: TraceId,
    buf: Vec<HartEvent>,
    emitted: u64,
    dropped: u64,
}

/// Cheaply-cloneable handle to one hart's request-event buffer — or to
/// nothing. Mirrors [`ProfSink`](crate::ProfSink): the disabled tracer
/// costs one `Option` discriminant branch and never constructs the
/// event. Each hart gets its own buffer (no cross-hart sharing, so no
/// locks); the driver drains them at round boundaries.
#[derive(Debug, Clone, Default)]
pub struct ReqTracer(Option<Rc<RefCell<HartBuf>>>);

impl ReqTracer {
    /// The disabled tracer (records nothing, costs one branch).
    pub fn off() -> Self {
        ReqTracer(None)
    }

    /// An enabled tracer backed by a fresh buffer.
    pub fn enabled() -> Self {
        ReqTracer(Some(Rc::new(RefCell::new(HartBuf::default()))))
    }

    /// Whether this tracer records events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Set the request the hart is currently serving (0 = idle).
    pub fn set_current(&self, id: TraceId) {
        if let Some(b) = &self.0 {
            b.borrow_mut().cur = id;
        }
    }

    /// The request the hart is currently serving (0 when idle or when
    /// the tracer is disabled).
    pub fn current(&self) -> TraceId {
        self.0.as_ref().map_or(0, |b| b.borrow().cur)
    }

    /// Record the event built by `f` at hart-local cycle `t`, tagged
    /// with the current request. `f` is not called when disabled.
    /// Events other than shootdown acks are skipped while idle
    /// (`current == 0`): there is no request to attribute them to.
    #[inline]
    pub fn emit(&self, t: u64, f: impl FnOnce() -> ReqEvent) {
        if let Some(b) = &self.0 {
            let mut b = b.borrow_mut();
            let ev = f();
            if b.cur == 0 && !matches!(ev, ReqEvent::ShootdownAck { .. }) {
                return;
            }
            b.emitted += 1;
            if b.buf.len() < HART_BUF_CAP {
                let id = b.cur;
                b.buf.push(HartEvent { id, t, ev });
            } else {
                b.dropped += 1;
            }
        }
    }

    /// Drain the buffered events (oldest first), leaving the buffer
    /// empty and the current-request tag intact.
    pub fn drain(&self) -> Vec<HartEvent> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |b| std::mem::take(&mut b.borrow_mut().buf))
    }

    /// `(emitted, dropped)` lifetime tallies.
    pub fn counts(&self) -> (u64, u64) {
        self.0
            .as_ref()
            .map_or((0, 0), |b| (b.borrow().emitted, b.borrow().dropped))
    }
}

/// How much of the request stream keeps full span trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracers installed, no trees collected.
    #[default]
    Off,
    /// Tracers on; keep only tail-sampled trees (slow / denied /
    /// survey / exemplar).
    Sampled,
    /// Tracers on; keep every tree.
    Full,
}

impl TraceMode {
    /// Parse a CLI spelling (`off` / `sampled` / `full`).
    pub fn parse(s: &str) -> Option<TraceMode> {
        match s {
            "off" => Some(TraceMode::Off),
            "sampled" => Some(TraceMode::Sampled),
            "full" => Some(TraceMode::Full),
            _ => None,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Sampled => "sampled",
            TraceMode::Full => "full",
        }
    }

    /// Stable wire index.
    pub fn index(self) -> u64 {
        match self {
            TraceMode::Off => 0,
            TraceMode::Sampled => 1,
            TraceMode::Full => 2,
        }
    }

    /// Inverse of [`TraceMode::index`].
    pub fn from_index(i: u64) -> Option<TraceMode> {
        match i {
            0 => Some(TraceMode::Off),
            1 => Some(TraceMode::Sampled),
            2 => Some(TraceMode::Full),
            _ => None,
        }
    }
}

/// Tail-sampling policy for finished trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePolicy {
    /// Overall mode.
    pub mode: TraceMode,
    /// Keep every tree whose end-to-end latency (cycles) is ≥ this
    /// threshold (0 disables the slow gate).
    pub slow: u64,
    /// Keep a seeded 1-in-N survey of all trees (0 disables).
    pub survey: u64,
    /// Seed decorrelating the survey pick from the workload seed.
    pub seed: u64,
    /// Trace IDs retained per histogram bucket as latency exemplars.
    pub exemplar_k: usize,
}

impl Default for TracePolicy {
    fn default() -> Self {
        TracePolicy {
            mode: TraceMode::Off,
            slow: 0,
            survey: 0,
            seed: 0,
            exemplar_k: 4,
        }
    }
}

/// `splitmix64` finalizer: decorrelates the survey pick from raw IDs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TracePolicy {
    /// Whether the seeded 1-in-N survey keeps `id`. Depends only on
    /// `(seed, survey, id)`, never on scheduling — so the survey set is
    /// identical across hart counts.
    pub fn survey_hit(&self, id: TraceId) -> bool {
        self.survey != 0 && splitmix64(self.seed ^ id).is_multiple_of(self.survey)
    }
}

/// Up to K trace IDs per log₂ latency bucket, sharing the exact
/// bucketing of [`Histogram`](crate::Histogram). Kept beside the
/// histogram (not inside it) so the histogram's wire format and
/// equality are untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exemplars {
    k: usize,
    buckets: BTreeMap<usize, Vec<TraceId>>,
}

impl Exemplars {
    /// An empty exemplar store retaining up to `k` IDs per bucket.
    pub fn new(k: usize) -> Self {
        Exemplars {
            k,
            buckets: BTreeMap::new(),
        }
    }

    /// Offer `(value, id)`; returns `true` when the ID was retained.
    /// Retention keeps the K *smallest* IDs per bucket, which makes the
    /// final exemplar set a pure function of the offered `(value, id)`
    /// multiset — independent of offer order. Values that don't depend
    /// on scheduling (e.g. guest-measured service cycles) therefore
    /// yield identical exemplar IDs across hart counts.
    pub fn offer(&mut self, v: u64, id: TraceId) -> bool {
        if self.k == 0 {
            return false;
        }
        let slot = self.buckets.entry(bucket_index(v)).or_default();
        let full = slot.len() >= self.k;
        if full && slot.last().is_some_and(|max| id >= *max) {
            return false;
        }
        let pos = slot.binary_search(&id).unwrap_or_else(|p| p);
        slot.insert(pos, id);
        if full {
            slot.pop();
        }
        true
    }

    /// The exemplar IDs for the bucket containing `v` (empty when the
    /// bucket holds none). A histogram quantile interpolates inside its
    /// winning bucket, so `for_value(p99)` answers "which requests does
    /// the reported p99 describe".
    pub fn for_value(&self, v: u64) -> &[TraceId] {
        self.buckets
            .get(&bucket_index(v))
            .map_or(&[], |ids| ids.as_slice())
    }

    /// All retained IDs, bucket-ascending.
    pub fn ids(&self) -> Vec<TraceId> {
        self.buckets.values().flatten().copied().collect()
    }

    /// Flat word export (snapshot seam).
    pub fn export_words(&self) -> Vec<u64> {
        let mut w = vec![self.k as u64, self.buckets.len() as u64];
        for (b, ids) in &self.buckets {
            w.push(*b as u64);
            w.push(ids.len() as u64);
            w.extend_from_slice(ids);
        }
        w
    }

    /// Restore from [`Exemplars::export_words`]; returns words consumed.
    pub fn import_words(&mut self, w: &[u64]) -> usize {
        let mut c = Cursor::new(w);
        self.k = c.get() as usize;
        self.buckets.clear();
        let n = c.get();
        for _ in 0..n {
            let b = c.get() as usize;
            let len = c.get();
            let ids: Vec<u64> = (0..len).map(|_| c.get()).collect();
            self.buckets.insert(b, ids);
        }
        c.pos
    }
}

impl ToJson for Exemplars {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.buckets
                .iter()
                .map(|(b, ids)| {
                    Json::obj([
                        ("le", Json::U64(bucket_upper(*b))),
                        (
                            "trace_ids",
                            Json::Arr(ids.iter().map(|id| Json::U64(*id)).collect()),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

/// Pipeline self-accounting: what the tracing layer emitted, dropped,
/// and kept. Reported in the serve `telemetry` extras block and gated
/// by CI's overhead budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryStats {
    /// Requests whose trees were opened.
    pub requests: u64,
    /// Span events emitted by hart tracers.
    pub events_emitted: u64,
    /// Span events dropped at the hart buffer bound.
    pub events_dropped: u64,
    /// Span events harvested into trees at round boundaries.
    pub events_harvested: u64,
    /// Finished trees kept (any reason).
    pub kept: u64,
    /// Finished trees discarded by tail sampling.
    pub discarded: u64,
    /// Kept because the mode was `full`.
    pub kept_full: u64,
    /// Kept because latency crossed the slow threshold.
    pub kept_slow: u64,
    /// Kept because the request was denied.
    pub kept_denied: u64,
    /// Kept because the seeded survey picked the ID.
    pub kept_survey: u64,
    /// Kept because an exemplar slot retained the ID.
    pub kept_exemplar: u64,
    /// Kept trees dropped at the retention bound.
    pub trees_dropped: u64,
}

impl TelemetryStats {
    /// Fixed-order word export (snapshot seam).
    fn export_words(&self) -> [u64; 12] {
        [
            self.requests,
            self.events_emitted,
            self.events_dropped,
            self.events_harvested,
            self.kept,
            self.discarded,
            self.kept_full,
            self.kept_slow,
            self.kept_denied,
            self.kept_survey,
            self.kept_exemplar,
            self.trees_dropped,
        ]
    }

    fn import_words(&mut self, c: &mut Cursor) {
        self.requests = c.get();
        self.events_emitted = c.get();
        self.events_dropped = c.get();
        self.events_harvested = c.get();
        self.kept = c.get();
        self.discarded = c.get();
        self.kept_full = c.get();
        self.kept_slow = c.get();
        self.kept_denied = c.get();
        self.kept_survey = c.get();
        self.kept_exemplar = c.get();
        self.trees_dropped = c.get();
    }
}

impl ToJson for TelemetryStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::U64(self.requests)),
            ("events_emitted", Json::U64(self.events_emitted)),
            ("events_dropped", Json::U64(self.events_dropped)),
            ("events_harvested", Json::U64(self.events_harvested)),
            ("kept", Json::U64(self.kept)),
            ("discarded", Json::U64(self.discarded)),
            ("kept_full", Json::U64(self.kept_full)),
            ("kept_slow", Json::U64(self.kept_slow)),
            ("kept_denied", Json::U64(self.kept_denied)),
            ("kept_survey", Json::U64(self.kept_survey)),
            ("kept_exemplar", Json::U64(self.kept_exemplar)),
            ("trees_dropped", Json::U64(self.trees_dropped)),
        ])
    }
}

/// A contiguous domain-residency child span of one request, derived
/// from its gate events. Segments are non-overlapping and lie inside
/// `[start, end)` of the root span, so their durations sum to at most
/// the request's measured latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// ISA domain resident during the segment.
    pub domain: u16,
    /// First cycle (global virtual time).
    pub start: u64,
    /// One past the last cycle (global virtual time).
    pub end: u64,
}

impl Segment {
    /// Length of the segment in cycles.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Bound on retained events per tree: a request is a handful of gate
/// crossings plus rare denials/deopts, so the bound only bites on
/// event storms; overflow is counted on the tree.
const TREE_EVENT_CAP: usize = 512;

/// One request's span tree: the root span plus its timestamped events,
/// all in global virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqTrace {
    /// Trace ID (request index + 1).
    pub id: TraceId,
    /// Tenant the request belongs to.
    pub tenant: u16,
    /// Workload kind index.
    pub kind: u16,
    /// Hart the request was dispatched to.
    pub hart: usize,
    /// Global virtual time the request arrived (generator schedule).
    pub arrival: u64,
    /// Global virtual time the request was dispatched to its hart.
    pub start: u64,
    /// Global virtual time the completion was harvested.
    pub end: u64,
    /// End-to-end latency recorded in the latency histogram
    /// (`end - arrival`, including queueing).
    pub latency: u64,
    /// The request completed denied (doorbell 3).
    pub denied: bool,
    /// Timestamped child events, oldest first (global virtual time).
    pub events: Vec<(u64, ReqEvent)>,
    /// Events discarded at the per-tree bound.
    pub events_dropped: u64,
}

impl ReqTrace {
    /// Derive the non-overlapping domain-residency child spans between
    /// consecutive gate events. The first segment opens at the first
    /// gate entry (dispatch spin-wait before it is not attributed);
    /// the last closes at `end`. Denials/deopts/acks are markers, not
    /// segments.
    pub fn segments(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut cur: Option<(u16, u64)> = None;
        for (t, ev) in &self.events {
            let dest = match ev {
                ReqEvent::GateEnter { domain } | ReqEvent::GateExit { domain } => *domain,
                _ => continue,
            };
            let t = (*t).clamp(self.start, self.end);
            if let Some((d, since)) = cur {
                if t > since {
                    out.push(Segment {
                        domain: d,
                        start: since,
                        end: t,
                    });
                }
            }
            cur = Some((dest, t));
        }
        if let Some((d, since)) = cur {
            if self.end > since {
                out.push(Segment {
                    domain: d,
                    start: since,
                    end: self.end,
                });
            }
        }
        out
    }

    fn push_event(&mut self, t: u64, ev: ReqEvent) {
        if self.events.len() < TREE_EVENT_CAP {
            self.events.push((t, ev));
        } else {
            self.events_dropped += 1;
        }
    }

    fn export_words(&self, w: &mut Vec<u64>) {
        w.push(self.id);
        w.push(self.tenant as u64);
        w.push(self.kind as u64);
        w.push(self.hart as u64);
        w.push(self.arrival);
        w.push(self.start);
        w.push(self.end);
        w.push(self.latency);
        w.push(self.denied as u64);
        w.push(self.events_dropped);
        w.push(self.events.len() as u64);
        for (t, ev) in &self.events {
            let (tag, a, b) = ev.to_words();
            w.push(*t);
            w.push(tag);
            w.push(a);
            w.push(b);
        }
    }

    fn import_words(c: &mut Cursor) -> ReqTrace {
        let mut tr = ReqTrace {
            id: c.get(),
            tenant: c.get() as u16,
            kind: c.get() as u16,
            hart: c.get() as usize,
            arrival: c.get(),
            start: c.get(),
            end: c.get(),
            latency: c.get(),
            denied: c.get() != 0,
            events_dropped: c.get(),
            events: Vec::new(),
        };
        let n = c.get().min(TREE_EVENT_CAP as u64);
        for _ in 0..n {
            let (t, tag, a, b) = (c.get(), c.get(), c.get(), c.get());
            if let Some(ev) = ReqEvent::from_words(tag, a, b) {
                tr.events.push((t, ev));
            }
        }
        tr
    }
}

impl ToJson for ReqTrace {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::U64(self.id)),
            ("tenant", Json::U64(self.tenant as u64)),
            ("kind", Json::U64(self.kind as u64)),
            ("hart", Json::U64(self.hart as u64)),
            ("arrival", Json::U64(self.arrival)),
            ("start", Json::U64(self.start)),
            ("end", Json::U64(self.end)),
            ("latency", Json::U64(self.latency)),
            ("denied", Json::Bool(self.denied)),
            ("events", Json::U64(self.events.len() as u64)),
        ])
    }
}

/// Bound on retained kept trees (overflow counted, not stored).
const KEPT_CAP: usize = 4096;

/// Bound on retained shootdown publish/ack flow endpoints.
const SHOOTDOWN_CAP: usize = 4096;

/// Assembles drained hart events into per-request span trees, applies
/// the tail-sampling policy at request completion, and retains latency
/// exemplars plus shootdown publish→ack flow endpoints for export.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    policy: TracePolicy,
    inflight: BTreeMap<TraceId, ReqTrace>,
    kept: Vec<ReqTrace>,
    /// Pipeline self-accounting.
    pub stats: TelemetryStats,
    /// End-to-end latency exemplars (the histogram serve reports p99
    /// from).
    pub latency_exemplars: Exemplars,
    /// Guest-measured service-cycle exemplars. Service cycles are
    /// hart-count independent (they exclude queueing), so these IDs
    /// are identical across hart counts.
    pub service_exemplars: Exemplars,
    publishes: Vec<(u64, u64)>,
    acks: Vec<(u64, usize, u64)>,
}

impl TraceCollector {
    /// A collector enforcing `policy`.
    pub fn new(policy: TracePolicy) -> Self {
        TraceCollector {
            policy,
            latency_exemplars: Exemplars::new(policy.exemplar_k),
            service_exemplars: Exemplars::new(policy.exemplar_k),
            ..TraceCollector::default()
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &TracePolicy {
        &self.policy
    }

    /// Whether any trees are collected.
    pub fn is_enabled(&self) -> bool {
        self.policy.mode != TraceMode::Off
    }

    /// Open a tree: request `id` from `tenant` (workload `kind`,
    /// generator arrival time `arrival`) was dispatched to `hart` at
    /// global virtual time `start`.
    pub fn begin(
        &mut self,
        id: TraceId,
        tenant: u16,
        kind: u16,
        hart: usize,
        arrival: u64,
        start: u64,
    ) {
        if !self.is_enabled() || id == 0 {
            return;
        }
        self.stats.requests += 1;
        self.inflight.insert(
            id,
            ReqTrace {
                id,
                tenant,
                kind,
                hart,
                arrival,
                start,
                end: 0,
                latency: 0,
                denied: false,
                events: Vec::new(),
                events_dropped: 0,
            },
        );
    }

    /// Ingest one drained hart event, timestamped in global virtual
    /// time. Events for unknown IDs are dropped; idle shootdown acks
    /// (id 0) still feed the publish→ack flow endpoints.
    pub fn ingest(&mut self, hart: usize, id: TraceId, t: u64, ev: ReqEvent) {
        if !self.is_enabled() {
            return;
        }
        self.stats.events_harvested += 1;
        if let ReqEvent::ShootdownAck { epoch, .. } = ev {
            if self.acks.len() < SHOOTDOWN_CAP {
                self.acks.push((epoch, hart, t));
            }
        }
        if id == 0 {
            return;
        }
        if let Some(tr) = self.inflight.get_mut(&id) {
            tr.push_event(t, ev);
        }
    }

    /// Note a shootdown publish (host-side privilege rotation) at
    /// global virtual time `t` for `epoch` — the start endpoint of the
    /// publish→ack flow.
    pub fn note_publish(&mut self, epoch: u64, t: u64) {
        if self.is_enabled() && self.publishes.len() < SHOOTDOWN_CAP {
            self.publishes.push((epoch, t));
        }
    }

    /// Fold hart-tracer lifetime tallies into the stats (call once per
    /// tracer at the end of the run).
    pub fn absorb_tracer_counts(&mut self, emitted: u64, dropped: u64) {
        self.stats.events_emitted += emitted;
        self.stats.events_dropped += dropped;
    }

    /// Close the tree for `id`: the completion was harvested at global
    /// virtual time `end` with the given end-to-end `latency` and
    /// guest-measured `service` cycles. Applies the tail-sampling
    /// policy; returns whether the tree was kept.
    pub fn finish(
        &mut self,
        id: TraceId,
        end: u64,
        latency: u64,
        service: u64,
        denied: bool,
    ) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let Some(mut tr) = self.inflight.remove(&id) else {
            return false;
        };
        tr.end = end;
        tr.latency = latency;
        tr.denied = denied;
        let ex_lat = self.latency_exemplars.offer(latency, id);
        let ex_svc = self.service_exemplars.offer(service, id);
        let full = self.policy.mode == TraceMode::Full;
        let slow = self.policy.slow != 0 && latency >= self.policy.slow;
        let survey = self.policy.survey_hit(id);
        let exemplar = ex_lat || ex_svc;
        let keep = full || slow || denied || survey || exemplar;
        if full {
            self.stats.kept_full += 1;
        }
        if slow {
            self.stats.kept_slow += 1;
        }
        if denied {
            self.stats.kept_denied += 1;
        }
        if survey {
            self.stats.kept_survey += 1;
        }
        if exemplar {
            self.stats.kept_exemplar += 1;
        }
        if keep {
            self.stats.kept += 1;
            if self.kept.len() < KEPT_CAP {
                self.kept.push(tr);
            } else if exemplar {
                // At the cap an exemplar-retained tree must still
                // resolve, so it replaces the oldest tree nothing
                // references instead of being stranded.
                self.stats.trees_dropped += 1;
                if let Some(slot) = self.evictable_slot() {
                    self.kept.remove(slot);
                    self.kept.push(tr);
                }
            } else {
                self.stats.trees_dropped += 1;
            }
        } else {
            self.stats.discarded += 1;
        }
        keep
    }

    /// The oldest kept tree safe to evict at [`KEPT_CAP`]: one kept
    /// only because the mode was `Full` — not denied, not slow, not a
    /// survey pick, and not referenced by either exemplar set.
    fn evictable_slot(&self) -> Option<usize> {
        let lat = self.latency_exemplars.ids();
        let svc = self.service_exemplars.ids();
        self.kept.iter().position(|t| {
            !t.denied
                && (self.policy.slow == 0 || t.latency < self.policy.slow)
                && !self.policy.survey_hit(t.id)
                && !lat.contains(&t.id)
                && !svc.contains(&t.id)
        })
    }

    /// The kept trees, completion order.
    pub fn kept(&self) -> &[ReqTrace] {
        &self.kept
    }

    /// Look up a kept tree by trace ID (how an exemplar resolves).
    pub fn resolve(&self, id: TraceId) -> Option<&ReqTrace> {
        self.kept.iter().find(|t| t.id == id)
    }

    /// Trees still open (dispatched, not yet harvested).
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Shootdown publish flow endpoints `(epoch, t)`.
    pub fn publishes(&self) -> &[(u64, u64)] {
        &self.publishes
    }

    /// Shootdown ack flow endpoints `(epoch, hart, t)`.
    pub fn acks(&self) -> &[(u64, usize, u64)] {
        &self.acks
    }

    /// Flat word export of all dynamic state (snapshot seam). The
    /// policy itself travels with the harness config, not here.
    pub fn export_words(&self) -> Vec<u64> {
        let mut w = Vec::new();
        w.extend_from_slice(&self.stats.export_words());
        let lat = self.latency_exemplars.export_words();
        w.push(lat.len() as u64);
        w.extend_from_slice(&lat);
        let svc = self.service_exemplars.export_words();
        w.push(svc.len() as u64);
        w.extend_from_slice(&svc);
        w.push(self.inflight.len() as u64);
        for tr in self.inflight.values() {
            tr.export_words(&mut w);
        }
        w.push(self.kept.len() as u64);
        for tr in &self.kept {
            tr.export_words(&mut w);
        }
        w.push(self.publishes.len() as u64);
        for (e, t) in &self.publishes {
            w.push(*e);
            w.push(*t);
        }
        w.push(self.acks.len() as u64);
        for (e, h, t) in &self.acks {
            w.push(*e);
            w.push(*h as u64);
            w.push(*t);
        }
        w
    }

    /// Restore dynamic state exported by
    /// [`TraceCollector::export_words`]. Missing trailing words read as
    /// zero (a short vector restores an empty collector, never panics).
    pub fn import_words(&mut self, w: &[u64]) {
        let mut c = Cursor::new(w);
        self.stats.import_words(&mut c);
        let n = c.get() as usize;
        self.latency_exemplars.import_words(c.take(n));
        let n = c.get() as usize;
        self.service_exemplars.import_words(c.take(n));
        self.inflight.clear();
        let n = c.get().min(u32::MAX as u64);
        for _ in 0..n {
            let tr = ReqTrace::import_words(&mut c);
            if c.exhausted() && tr.id == 0 {
                break;
            }
            self.inflight.insert(tr.id, tr);
        }
        self.kept.clear();
        let n = c.get().min(KEPT_CAP as u64);
        for _ in 0..n {
            self.kept.push(ReqTrace::import_words(&mut c));
        }
        self.publishes.clear();
        let n = c.get().min(SHOOTDOWN_CAP as u64);
        for _ in 0..n {
            let (e, t) = (c.get(), c.get());
            self.publishes.push((e, t));
        }
        self.acks.clear();
        let n = c.get().min(SHOOTDOWN_CAP as u64);
        for _ in 0..n {
            let (e, h, t) = (c.get(), c.get() as usize, c.get());
            self.acks.push((e, h, t));
        }
    }
}

/// A forgiving word-stream reader: reads past the end yield zero, so a
/// truncated snapshot degrades to empty state instead of panicking.
pub(crate) struct Cursor<'a> {
    w: &'a [u64],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(w: &'a [u64]) -> Self {
        Cursor { w, pos: 0 }
    }

    pub(crate) fn get(&mut self) -> u64 {
        let v = self.w.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        v
    }

    fn take(&mut self, n: usize) -> &'a [u64] {
        let start = self.pos.min(self.w.len());
        let end = (self.pos + n).min(self.w.len());
        self.pos += n;
        &self.w[start..end]
    }

    fn exhausted(&self) -> bool {
        self.pos > self.w.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = ReqTracer::off();
        let mut built = false;
        t.emit(1, || {
            built = true;
            ReqEvent::GateEnter { domain: 1 }
        });
        assert!(!built);
        assert!(t.drain().is_empty());
        assert_eq!(t.counts(), (0, 0));
    }

    #[test]
    fn tracer_tags_events_with_current_request() {
        let t = ReqTracer::enabled();
        t.emit(5, || ReqEvent::GateEnter { domain: 1 });
        t.set_current(7);
        t.emit(9, || ReqEvent::GateEnter { domain: 2 });
        t.emit(11, || ReqEvent::ShootdownAck {
            flushes: 3,
            epoch: 4,
        });
        let evs = t.drain();
        // The idle gate event is skipped; the ack is kept even idle.
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].id, 7);
        assert_eq!(evs[0].t, 9);
        assert_eq!(t.counts(), (2, 0));
        assert!(t.drain().is_empty());
        assert_eq!(t.current(), 7);
    }

    #[test]
    fn survey_is_id_keyed_and_seeded() {
        let p = TracePolicy {
            mode: TraceMode::Sampled,
            survey: 8,
            seed: 42,
            ..TracePolicy::default()
        };
        let hits: Vec<u64> = (1..=1000).filter(|id| p.survey_hit(*id)).collect();
        // Roughly 1 in 8, and stable across runs.
        assert!((60..=190).contains(&hits.len()), "{}", hits.len());
        let p2 = TracePolicy { seed: 43, ..p };
        let hits2: Vec<u64> = (1..=1000).filter(|id| p2.survey_hit(*id)).collect();
        assert_ne!(hits, hits2);
    }

    #[test]
    fn exemplars_keep_k_per_bucket_and_resolve_values() {
        let mut e = Exemplars::new(2);
        assert!(e.offer(100, 1)); // bucket [64,127]
        assert!(e.offer(70, 2));
        assert!(!e.offer(101, 3)); // bucket full
        assert!(e.offer(1000, 4)); // different bucket
        assert_eq!(e.for_value(90), &[1, 2]);
        assert_eq!(e.for_value(600), &[4]);
        assert_eq!(e.ids(), vec![1, 2, 4]);
        let mut e2 = Exemplars::new(0);
        e2.import_words(&e.export_words());
        assert_eq!(e, e2);
    }

    #[test]
    fn exemplar_retention_is_offer_order_independent() {
        // The K smallest IDs per bucket win no matter the offer order,
        // so exemplar sets over schedule-independent values are
        // identical across hart counts.
        let offers = [(100u64, 5u64), (70, 2), (101, 9), (90, 1), (1000, 4)];
        let mut fwd = Exemplars::new(2);
        let mut rev = Exemplars::new(2);
        for (v, id) in offers {
            fwd.offer(v, id);
        }
        for (v, id) in offers.iter().rev() {
            rev.offer(*v, *id);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.for_value(80), &[1, 2]);
    }

    #[test]
    fn exemplar_trees_survive_the_kept_cap() {
        let mut c = TraceCollector::new(TracePolicy {
            mode: TraceMode::Full,
            slow: 0,
            survey: 0,
            seed: 1,
            exemplar_k: 2,
        });
        // Overfill the store with same-bucket completions, then finish
        // one slow enough to open a fresh latency bucket: its ID is
        // exemplar-retained after the cap was reached, so it must evict
        // an unreferenced tree rather than be stranded unresolvable.
        for i in 0..(KEPT_CAP as u64 + 8) {
            let id = i + 1;
            c.begin(id, 0, 0, 0, i, i);
            c.finish(id, i + 100, 100, 50, false);
        }
        let slow_id = KEPT_CAP as u64 + 100;
        c.begin(slow_id, 0, 0, 0, 0, 0);
        c.finish(slow_id, 1 << 20, 1 << 20, 50, false);
        assert!(c.latency_exemplars.for_value(1 << 20).contains(&slow_id));
        assert!(
            c.resolve(slow_id).is_some(),
            "every exemplar ID resolves to a kept tree, even at the cap"
        );
        assert_eq!(c.kept().len(), KEPT_CAP);
        // The survivors it displaced were plain full-mode trees; the
        // exemplar-referenced early IDs are untouched.
        assert!(c.resolve(1).is_some() && c.resolve(2).is_some());
    }

    fn collector(mode: TraceMode) -> TraceCollector {
        TraceCollector::new(TracePolicy {
            mode,
            slow: 100,
            survey: 0,
            seed: 1,
            exemplar_k: 0,
        })
    }

    #[test]
    fn tail_sampling_keeps_slow_and_denied() {
        let mut c = collector(TraceMode::Sampled);
        c.begin(1, 0, 0, 0, 10, 12);
        c.begin(2, 1, 0, 1, 11, 12);
        c.begin(3, 1, 1, 0, 20, 30);
        assert!(c.finish(1, 200, 190, 50, false)); // slow
        assert!(!c.finish(2, 60, 49, 20, false)); // fast, clean
        assert!(c.finish(3, 80, 60, 20, true)); // denied
        assert_eq!(c.stats.kept, 2);
        assert_eq!(c.stats.discarded, 1);
        assert_eq!(c.stats.kept_slow, 1);
        assert_eq!(c.stats.kept_denied, 1);
        assert!(c.resolve(1).is_some());
        assert!(c.resolve(2).is_none());
    }

    #[test]
    fn full_mode_keeps_everything() {
        let mut c = collector(TraceMode::Full);
        c.begin(1, 0, 0, 0, 0, 1);
        assert!(c.finish(1, 10, 10, 5, false));
        assert_eq!(c.stats.kept_full, 1);
    }

    #[test]
    fn exemplar_retention_forces_keep() {
        let mut c = TraceCollector::new(TracePolicy {
            mode: TraceMode::Sampled,
            slow: 0,
            survey: 0,
            seed: 0,
            exemplar_k: 1,
        });
        c.begin(1, 0, 0, 0, 0, 1);
        c.begin(2, 0, 0, 0, 0, 1);
        assert!(c.finish(1, 10, 9, 9, false)); // first in bucket → exemplar
        assert!(!c.finish(2, 10, 9, 9, false)); // bucket full → discarded
        assert_eq!(c.latency_exemplars.for_value(9), &[1]);
        assert_eq!(c.resolve(1).unwrap().latency, 9);
    }

    #[test]
    fn segments_partition_the_root_span() {
        let mut tr = ReqTrace {
            id: 1,
            tenant: 0,
            kind: 0,
            hart: 0,
            arrival: 90,
            start: 100,
            end: 200,
            latency: 110,
            denied: false,
            events: vec![
                (110, ReqEvent::GateEnter { domain: 4 }),
                (130, ReqEvent::GateEnter { domain: 2 }),
                (
                    150,
                    ReqEvent::Deny {
                        cause: 25,
                        detail: 0x180,
                    },
                ),
                (160, ReqEvent::GateExit { domain: 4 }),
            ],
            events_dropped: 0,
        };
        let segs = tr.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!((segs[0].domain, segs[0].start, segs[0].end), (4, 110, 130));
        assert_eq!((segs[1].domain, segs[1].start, segs[1].end), (2, 130, 160));
        assert_eq!((segs[2].domain, segs[2].start, segs[2].end), (4, 160, 200));
        let total: u64 = segs.iter().map(Segment::cycles).sum();
        assert!(total <= tr.end - tr.start);
        assert!(tr.end - tr.start <= tr.latency);
        // Out-of-window timestamps clamp rather than corrupt.
        tr.events.push((500, ReqEvent::GateEnter { domain: 9 }));
        let segs = tr.segments();
        assert!(segs.iter().all(|s| s.start >= tr.start && s.end <= tr.end));
    }

    #[test]
    fn collector_state_round_trips_through_words() {
        let mut c = TraceCollector::new(TracePolicy {
            mode: TraceMode::Sampled,
            slow: 50,
            survey: 4,
            seed: 9,
            exemplar_k: 2,
        });
        c.begin(1, 0, 1, 0, 5, 8);
        c.ingest(0, 1, 12, ReqEvent::GateEnter { domain: 4 });
        c.ingest(
            0,
            0,
            13,
            ReqEvent::ShootdownAck {
                flushes: 2,
                epoch: 7,
            },
        );
        c.note_publish(7, 11);
        c.begin(2, 1, 0, 1, 6, 8);
        c.ingest(
            1,
            2,
            14,
            ReqEvent::Deopt {
                reason: DeoptReason::Epoch,
            },
        );
        c.finish(2, 90, 84, 30, true);
        let words = c.export_words();
        let mut c2 = TraceCollector::new(*c.policy());
        c2.import_words(&words);
        assert_eq!(c.stats, c2.stats);
        assert_eq!(c.latency_exemplars, c2.latency_exemplars);
        assert_eq!(c.kept(), c2.kept());
        assert_eq!(c.inflight(), c2.inflight());
        assert_eq!(c.publishes(), c2.publishes());
        assert_eq!(c.acks(), c2.acks());
        // The restored collector continues identically.
        c.finish(1, 100, 95, 40, false);
        c2.finish(1, 100, 95, 40, false);
        assert_eq!(c.kept(), c2.kept());
        assert_eq!(c.stats, c2.stats);
    }

    #[test]
    fn truncated_words_restore_without_panic() {
        let mut c = collector(TraceMode::Full);
        c.begin(1, 0, 0, 0, 0, 1);
        c.finish(1, 10, 10, 5, false);
        let words = c.export_words();
        for cut in 0..words.len() {
            let mut c2 = collector(TraceMode::Full);
            c2.import_words(&words[..cut]);
        }
    }

    #[test]
    fn deopt_reason_names_and_indices_are_stable() {
        for (i, r) in DeoptReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(DeoptReason::from_index(i), Some(*r));
        }
        assert_eq!(DeoptReason::Guard.name(), "guard");
        assert_eq!(DeoptReason::Budget.name(), "budget");
        assert!(DeoptReason::from_index(7).is_none());
    }
}
