//! The trace-event taxonomy: everything the simulator, the PCU and the
//! timing model can report, as one flat enum cheap enough to record on
//! every committed instruction.

use crate::json::{Json, ToJson};

/// Which privilege check produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Instruction-class check against the HPT instruction bitmap.
    Inst,
    /// CSR read/write check (register double-bitmap + bit-mask array).
    Csr,
    /// Physical-access check against the trusted-memory fence.
    Phys,
}

impl CheckKind {
    /// Stable lowercase name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Inst => "inst",
            CheckKind::Csr => "csr",
            CheckKind::Phys => "phys",
        }
    }
}

/// Which PCU-internal cache an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// HPT instruction-bitmap cache.
    HptInst,
    /// HPT register double-bitmap cache.
    HptReg,
    /// HPT bit-mask array cache.
    HptMask,
    /// Switching-gate-table cache.
    Sgt,
    /// Legal-instruction short-circuit cache.
    Legal,
}

impl CacheKind {
    /// Stable lowercase name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            CacheKind::HptInst => "hpt_inst",
            CacheKind::HptReg => "hpt_reg",
            CacheKind::HptMask => "hpt_mask",
            CacheKind::Sgt => "sgt",
            CacheKind::Legal => "legal",
        }
    }
}

/// One structured trace event.
///
/// Events are emitted in program order within a step: the privilege
/// checks and cache probes an instruction causes precede its
/// [`TraceEvent::Retire`], so the stream reads as a causal narrative.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instruction committed.
    Retire {
        /// Virtual PC of the instruction.
        pc: u64,
        /// Raw 32-bit encoding.
        raw: u32,
        /// ISA domain it executed under.
        domain: u16,
        /// Privilege level (0 = U, 1 = S, 3 = M).
        priv_level: u8,
        /// Whether this step ended in a trap.
        trapped: bool,
    },
    /// A privilege check produced a verdict.
    Check {
        /// Which checker ran.
        kind: CheckKind,
        /// Whether the access was permitted.
        allowed: bool,
        /// The checking domain.
        domain: u16,
        /// Checker-specific detail: instruction-class index for `Inst`,
        /// CSR address for `Csr`, physical address for `Phys`.
        detail: u64,
    },
    /// A PCU cache probe hit or missed.
    Cache {
        /// Which cache.
        cache: CacheKind,
        /// Hit (`true`) or miss with trusted-memory refill (`false`).
        hit: bool,
    },
    /// A PCU cache was flushed (`pflh` or domain teardown).
    CacheFlush {
        /// Which cache.
        cache: CacheKind,
        /// Number of live entries discarded.
        discarded: u64,
    },
    /// A switching gate fired (`hccall` / `hccalls`).
    GateCall {
        /// Gate (call-site) address.
        gate: u64,
        /// Destination address jumped to.
        target: u64,
        /// Domain before the switch.
        from_domain: u16,
        /// Domain after the switch.
        to_domain: u16,
        /// Extended gate (`hccalls`, pushes the trusted stack).
        extended: bool,
    },
    /// An extended gate returned (`hcrets`).
    GateReturn {
        /// Return address popped from the trusted stack.
        target: u64,
        /// Domain before the return.
        from_domain: u16,
        /// Domain restored by the return.
        to_domain: u16,
    },
    /// The current ISA domain changed (follows gate call/return).
    DomainSwitch {
        /// Previous domain.
        from: u16,
        /// New current domain.
        to: u16,
    },
    /// A trap was taken.
    Trap {
        /// `mcause`-style cause value.
        cause: u64,
        /// PC of the trapping instruction.
        pc: u64,
    },
    /// The trusted-memory fence blocked a physical access.
    TmemFence {
        /// Offending physical address.
        paddr: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// A hart published a privilege-cache shootdown (privilege-table
    /// mutation or PCU fence): remote harts must flush before their
    /// next commit.
    Shootdown {
        /// Publishing hart.
        hart: u64,
        /// Coherence epoch the publication advanced to.
        epoch: u64,
    },
    /// A hart honored a pending shootdown by flushing its PCU caches.
    ShootdownAck {
        /// Acknowledging hart.
        hart: u64,
        /// Coherence epoch the hart caught up to.
        epoch: u64,
        /// Live privilege-cache entries discarded by the flush.
        discarded: u64,
    },
    /// The chaos harness injected a fault into privilege state.
    FaultInjected {
        /// Stable fault-kind tag (e.g. `table_bit_flip`).
        kind: &'static str,
        /// Kind-specific detail (address, cache index, …).
        detail: u64,
    },
    /// The fail-closed integrity layer detected corrupted privilege
    /// state and either scrubbed it (`recovered`) or denied the check.
    IntegrityEvent {
        /// What was found corrupt (`table`, `cache`, `snapshot`,
        /// `shootdown`).
        scope: &'static str,
        /// Trusted-memory address or cache tag of the corrupted state.
        detail: u64,
        /// True when the state was scrubbed and re-walked in place;
        /// false when the check was denied with a trap.
        recovered: bool,
    },
    /// The replay layer captured a whole-machine snapshot.
    Snapshot {
        /// Committed-instruction count (or serve-request index) the
        /// snapshot was taken at.
        at: u64,
        /// Content digest of the snapshot image.
        digest: u64,
    },
    /// The replay layer restored a whole-machine snapshot.
    Restore {
        /// Committed-instruction count (or serve-request index) the
        /// restored image was taken at.
        at: u64,
        /// Content digest of the snapshot image.
        digest: u64,
    },
    /// The differential oracle found the fast machine and the reference
    /// interpreter disagreeing.
    Divergence {
        /// PC of the first diverging step.
        pc: u64,
        /// Committed-instruction index of the first diverging step.
        step: u64,
        /// What disagreed first (`pc`, `reg`, `csr`, `priv`, `trap`).
        what: &'static str,
    },
    /// The self-healing serve layer tore a tenant's ISA domain down to
    /// deny-all after a classified failure.
    Quarantine {
        /// Tenant index in the serve workload.
        tenant: u64,
        /// The quarantined ISA domain.
        domain: u64,
    },
}

impl TraceEvent {
    /// Stable lowercase tag for JSON output and filtering.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Retire { .. } => "retire",
            TraceEvent::Check { .. } => "check",
            TraceEvent::Cache { .. } => "cache",
            TraceEvent::CacheFlush { .. } => "cache_flush",
            TraceEvent::GateCall { .. } => "gate_call",
            TraceEvent::GateReturn { .. } => "gate_return",
            TraceEvent::DomainSwitch { .. } => "domain_switch",
            TraceEvent::Trap { .. } => "trap",
            TraceEvent::TmemFence { .. } => "tmem_fence",
            TraceEvent::Shootdown { .. } => "shootdown",
            TraceEvent::ShootdownAck { .. } => "shootdown_ack",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::IntegrityEvent { .. } => "integrity",
            TraceEvent::Snapshot { .. } => "snapshot",
            TraceEvent::Restore { .. } => "restore",
            TraceEvent::Divergence { .. } => "divergence",
            TraceEvent::Quarantine { .. } => "quarantine",
        }
    }
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![("event".into(), Json::Str(self.name().into()))];
        match *self {
            TraceEvent::Retire {
                pc,
                raw,
                domain,
                priv_level,
                trapped,
            } => {
                pairs.push(("pc".into(), Json::Str(format!("{pc:#x}"))));
                pairs.push(("raw".into(), Json::Str(format!("{raw:#010x}"))));
                pairs.push(("domain".into(), Json::U64(domain as u64)));
                pairs.push(("priv".into(), Json::U64(priv_level as u64)));
                pairs.push(("trapped".into(), Json::Bool(trapped)));
            }
            TraceEvent::Check {
                kind,
                allowed,
                domain,
                detail,
            } => {
                pairs.push(("kind".into(), Json::Str(kind.name().into())));
                pairs.push(("allowed".into(), Json::Bool(allowed)));
                pairs.push(("domain".into(), Json::U64(domain as u64)));
                pairs.push(("detail".into(), Json::Str(format!("{detail:#x}"))));
            }
            TraceEvent::Cache { cache, hit } => {
                pairs.push(("cache".into(), Json::Str(cache.name().into())));
                pairs.push(("hit".into(), Json::Bool(hit)));
            }
            TraceEvent::CacheFlush { cache, discarded } => {
                pairs.push(("cache".into(), Json::Str(cache.name().into())));
                pairs.push(("discarded".into(), Json::U64(discarded)));
            }
            TraceEvent::GateCall {
                gate,
                target,
                from_domain,
                to_domain,
                extended,
            } => {
                pairs.push(("gate".into(), Json::Str(format!("{gate:#x}"))));
                pairs.push(("target".into(), Json::Str(format!("{target:#x}"))));
                pairs.push(("from_domain".into(), Json::U64(from_domain as u64)));
                pairs.push(("to_domain".into(), Json::U64(to_domain as u64)));
                pairs.push(("extended".into(), Json::Bool(extended)));
            }
            TraceEvent::GateReturn {
                target,
                from_domain,
                to_domain,
            } => {
                pairs.push(("target".into(), Json::Str(format!("{target:#x}"))));
                pairs.push(("from_domain".into(), Json::U64(from_domain as u64)));
                pairs.push(("to_domain".into(), Json::U64(to_domain as u64)));
            }
            TraceEvent::DomainSwitch { from, to } => {
                pairs.push(("from".into(), Json::U64(from as u64)));
                pairs.push(("to".into(), Json::U64(to as u64)));
            }
            TraceEvent::Trap { cause, pc } => {
                pairs.push(("cause".into(), Json::U64(cause)));
                pairs.push(("pc".into(), Json::Str(format!("{pc:#x}"))));
            }
            TraceEvent::TmemFence { paddr, write } => {
                pairs.push(("paddr".into(), Json::Str(format!("{paddr:#x}"))));
                pairs.push(("write".into(), Json::Bool(write)));
            }
            TraceEvent::Shootdown { hart, epoch } => {
                pairs.push(("hart".into(), Json::U64(hart)));
                pairs.push(("epoch".into(), Json::U64(epoch)));
            }
            TraceEvent::ShootdownAck {
                hart,
                epoch,
                discarded,
            } => {
                pairs.push(("hart".into(), Json::U64(hart)));
                pairs.push(("epoch".into(), Json::U64(epoch)));
                pairs.push(("discarded".into(), Json::U64(discarded)));
            }
            TraceEvent::FaultInjected { kind, detail } => {
                pairs.push(("kind".into(), Json::Str(kind.into())));
                pairs.push(("detail".into(), Json::Str(format!("{detail:#x}"))));
            }
            TraceEvent::IntegrityEvent {
                scope,
                detail,
                recovered,
            } => {
                pairs.push(("scope".into(), Json::Str(scope.into())));
                pairs.push(("detail".into(), Json::Str(format!("{detail:#x}"))));
                pairs.push(("recovered".into(), Json::Bool(recovered)));
            }
            TraceEvent::Snapshot { at, digest } | TraceEvent::Restore { at, digest } => {
                pairs.push(("at".into(), Json::U64(at)));
                pairs.push(("digest".into(), Json::Str(format!("{digest:#018x}"))));
            }
            TraceEvent::Quarantine { tenant, domain } => {
                pairs.push(("tenant".into(), Json::U64(tenant)));
                pairs.push(("domain".into(), Json::U64(domain)));
            }
            TraceEvent::Divergence { pc, step, what } => {
                pairs.push(("pc".into(), Json::Str(format!("{pc:#x}"))));
                pairs.push(("step".into(), Json::U64(step)));
                pairs.push(("what".into(), Json::Str(what.into())));
            }
        }
        Json::Obj(pairs)
    }
}

/// A [`TraceEvent`] stamped with its position in the run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Monotone sequence number (survives ring overwrites).
    pub seq: u64,
    /// Committed-instruction step the event belongs to.
    pub step: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl ToJson for TimedEvent {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("seq".into(), Json::U64(self.seq)),
            ("step".into(), Json::U64(self.step)),
        ];
        if let Json::Obj(inner) = self.event.to_json() {
            pairs.extend(inner);
        }
        Json::Obj(pairs)
    }
}
