//! Profiling primitives: log-bucketed latency histograms, cycle spans,
//! interval-sliced time series, per-hart profiles, and the structured
//! audit record the PCU emits on every denied check.
//!
//! The design mirrors the trace layer: a [`ProfSink`] is a cheaply
//! cloneable handle to a shared [`Profile`] — or to nothing. The
//! disabled sink costs one `Option` discriminant branch per retired
//! instruction and never constructs the sample, so profiling adds zero
//! modeled cycles and (when off) near-zero host time. Sinks observe the
//! machine; they never perturb it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::json::{Json, ToJson};

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i - 1]`, and bucket 64 holds values
/// with the top bit set.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Recording is O(1) (a `leading_zeros` and two adds); percentiles
/// interpolate linearly inside the winning log₂ bucket (and clamp to
/// the recorded maximum), so a reported quantile is off by at most the
/// distance between the interpolated rank and the true sample within
/// one bucket — not the full 2× bucket width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// Index of the bucket holding `v`.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Largest value bucket `i` can hold.
pub(crate) fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// Smallest value bucket `i` can hold.
fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Index of the log₂ bucket holding `v`. Exposed so latency
    /// exemplars (trace IDs retained per bucket) share the exact
    /// bucketing of the histogram they annotate.
    pub fn bucket_of(v: u64) -> usize {
        bucket_index(v)
    }

    /// `(lower, upper)` value bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        (bucket_lower(i), bucket_upper(i))
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`p` in 0..=100), interpolated linearly
    /// within the winning log₂ bucket and clamped to the recorded
    /// maximum. Answering from bucket *upper* bounds alone would
    /// overstate a quantile by up to 2× near bucket edges; assuming the
    /// bucket's samples spread evenly across its range keeps the error
    /// within the bucket. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut acc = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            if acc + n >= rank {
                let lower = bucket_lower(i);
                let upper = bucket_upper(i).min(self.max);
                if upper <= lower || *n == 0 {
                    return upper;
                }
                // The rank-th sample is the k-th of n in this bucket;
                // place it k/n of the way through the bucket's range.
                let k = rank - acc;
                let span = (upper - lower) as f64;
                let off = (span * k as f64 / *n as f64).round() as u64;
                return lower.saturating_add(off).min(upper);
            }
            acc += n;
        }
        self.max
    }

    /// Export all state as a flat word vector (snapshot seam): the 65
    /// bucket counts, then `count`, `sum`, `max`.
    pub fn export_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(BUCKETS + 3);
        w.extend_from_slice(&self.buckets);
        w.push(self.count);
        w.push(self.sum);
        w.push(self.max);
        w
    }

    /// Restore state exported by [`Histogram::export_words`]. Missing
    /// trailing words read as zero (a short vector restores an empty
    /// histogram, never panics).
    pub fn import_words(&mut self, words: &[u64]) {
        let get = |i: usize| words.get(i).copied().unwrap_or(0);
        for (i, b) in self.buckets.iter_mut().enumerate() {
            *b = get(i);
        }
        self.count = get(BUCKETS);
        self.sum = get(BUCKETS + 1);
        self.max = get(BUCKETS + 2);
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| Json::obj([("le", Json::U64(bucket_upper(i))), ("n", Json::U64(*n))]))
            .collect();
        Json::obj([
            ("count", Json::U64(self.count)),
            ("sum", Json::U64(self.sum)),
            ("max", Json::U64(self.max)),
            ("mean", Json::F64(self.mean())),
            ("p50", Json::U64(self.p50())),
            ("p90", Json::U64(self.p90())),
            ("p99", Json::U64(self.p99())),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// What a [`Span`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Residency in one ISA domain (id = domain id).
    Domain,
    /// A gate-switch instruction (id = destination domain).
    Gate,
    /// A step that flushed privilege caches for a cross-hart
    /// shootdown (id = number of flushes absorbed).
    Shootdown,
    /// A step on which the chaos harness injected a fault or the
    /// integrity layer detected one (id = number of fault events).
    Fault,
}

impl SpanKind {
    /// Stable lowercase name (used as the Perfetto category).
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Domain => "domain",
            SpanKind::Gate => "gate",
            SpanKind::Shootdown => "shootdown",
            SpanKind::Fault => "fault",
        }
    }
}

/// A half-open interval `[start, end)` of modeled cycles on one hart's
/// timeline, tagged with what the hart was doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the interval measures.
    pub kind: SpanKind,
    /// Kind-specific identifier (domain id, destination domain, …).
    pub id: u64,
    /// First cycle of the interval.
    pub start: u64,
    /// One past the last cycle of the interval.
    pub end: u64,
}

impl Span {
    /// Length of the interval in cycles.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

impl ToJson for Span {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::Str(self.kind.name().to_string())),
            ("id", Json::U64(self.id)),
            ("start", Json::U64(self.start)),
            ("end", Json::U64(self.end)),
        ])
    }
}

/// An interval-sliced accumulator: `add(t, v)` adds `v` to the slice
/// containing time `t`. The slice count is bounded; when a sample lands
/// past the last slice the interval doubles and adjacent slices fold
/// together, so memory stays O(`max_slices`) for arbitrarily long runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    interval: u64,
    max_slices: usize,
    slices: Vec<u64>,
}

impl TimeSeries {
    /// A series starting with `interval` time units per slice and at
    /// most `max_slices` slices (both clamped to ≥ 1).
    pub fn new(interval: u64, max_slices: usize) -> Self {
        TimeSeries {
            interval: interval.max(1),
            max_slices: max_slices.max(1),
            slices: Vec::new(),
        }
    }

    /// Add `v` to the slice containing time `t`, rescaling as needed.
    pub fn add(&mut self, t: u64, v: u64) {
        let mut idx = (t / self.interval) as usize;
        while idx >= self.max_slices {
            self.rescale();
            idx = (t / self.interval) as usize;
        }
        if idx >= self.slices.len() {
            self.slices.resize(idx + 1, 0);
        }
        self.slices[idx] += v;
    }

    /// Double the interval, folding adjacent slices together.
    fn rescale(&mut self) {
        self.interval *= 2;
        let n = self.slices.len().div_ceil(2);
        for i in 0..n {
            let a = self.slices[2 * i];
            let b = self.slices.get(2 * i + 1).copied().unwrap_or(0);
            self.slices[i] = a + b;
        }
        self.slices.truncate(n);
    }

    /// Export `(interval, slices)` (snapshot seam). The slice bound is
    /// a construction parameter, not state.
    pub fn export_state(&self) -> (u64, Vec<u64>) {
        (self.interval, self.slices.clone())
    }

    /// Restore state exported by [`TimeSeries::export_state`] into a
    /// series built with the same bound. The interval is clamped to
    /// ≥ 1 and the slices to this series' bound.
    pub fn import_state(&mut self, interval: u64, slices: &[u64]) {
        self.interval = interval.max(1);
        self.slices = slices[..slices.len().min(self.max_slices)].to_vec();
    }

    /// Current time units per slice.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The slice values, oldest first.
    pub fn slices(&self) -> &[u64] {
        &self.slices
    }
}

impl Default for TimeSeries {
    fn default() -> Self {
        // 4096 slices of 4096 cycles covers a 16M-cycle run before the
        // first rescale — plenty for the bench workloads.
        TimeSeries::new(4096, 4096)
    }
}

impl ToJson for TimeSeries {
    fn to_json(&self) -> Json {
        Json::obj([
            ("interval", Json::U64(self.interval)),
            (
                "slices",
                Json::Arr(self.slices.iter().map(|v| Json::U64(*v)).collect()),
            ),
        ])
    }
}

/// Coarse opcode class of one retired instruction, used for cycle
/// attribution independent of the (domain, privilege) key. The classes
/// mirror where the interpreter's `execute()` dispatch spends its time,
/// giving the ROADMAP's JIT-specialization rung a measured baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// Integer ALU / shift / compare / mul-div work (the default).
    #[default]
    Alu,
    /// Memory loads (including LR).
    Load,
    /// Memory stores (including SC and AMOs).
    Store,
    /// Branches, jumps, and calls.
    Branch,
    /// Explicit CSR accesses.
    Csr,
    /// ISA-Grid gate and grid-cache instructions.
    Gate,
    /// Everything else: fences, ecall/ebreak, xRET, WFI.
    System,
}

impl OpClass {
    /// Number of opcode classes.
    pub const COUNT: usize = 7;

    /// All classes, in index order.
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::Alu,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Csr,
        OpClass::Gate,
        OpClass::System,
    ];

    /// Stable index of this class in attribution arrays.
    pub fn index(self) -> usize {
        match self {
            OpClass::Alu => 0,
            OpClass::Load => 1,
            OpClass::Store => 2,
            OpClass::Branch => 3,
            OpClass::Csr => 4,
            OpClass::Gate => 5,
            OpClass::System => 6,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Alu => "alu",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Csr => "csr",
            OpClass::Gate => "gate",
            OpClass::System => "system",
        }
    }
}

/// Classification of one retired instruction, used to attribute its
/// cycles to the latency histograms. Built by the simulator from the
/// PCU's drained per-step events; the timing model never reads it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepClass {
    /// Coarse opcode class of the instruction.
    pub op: OpClass,
    /// The step performed a gate switch (`hccall`/`hccalls`/`hcrets`).
    pub gate_switch: bool,
    /// Privilege checks the PCU performed for this step.
    pub checks: u16,
    /// HPT/SGT grid-cache misses taken by this step.
    pub grid_misses: u16,
    /// Cross-hart shootdown flushes absorbed before this step.
    pub shootdown_flushed: u16,
    /// Fault-injection events applied or detected on this step.
    pub fault_events: u16,
    /// The step trapped (any cause).
    pub trapped: bool,
}

/// One retired instruction's profiling sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepSample {
    /// ISA domain the hart is in after the step.
    pub domain: u16,
    /// Privilege level the step committed at (0=U, 1=S, 3=M).
    pub priv_level: u8,
    /// Modeled cycles charged by the timing model for the step.
    pub cycles: u64,
    /// Event classification for histogram attribution.
    pub class: StepClass,
}

/// Cycle/step tallies for one (domain, privilege) attribution key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainCycles {
    /// Modeled cycles attributed to the key.
    pub cycles: u64,
    /// Retired instructions attributed to the key.
    pub steps: u64,
}

/// Default bound on retained spans per profile.
const DEFAULT_SPAN_CAP: usize = 1 << 16;

/// One hart's profile: cycle attribution by (domain, privilege level),
/// latency histograms, a span timeline for Perfetto export, and a
/// cycles-over-time series.
///
/// The profile owns a cumulative cycle clock (`cycles()`): each
/// recorded step advances it by the step's modeled cycles, and domain
/// residency spans are derived inline whenever the domain changes.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Hart the profile belongs to.
    pub hart: usize,
    cycles: u64,
    steps: u64,
    cur_domain: Option<u16>,
    cur_since: u64,
    /// Cycle/step attribution keyed by (domain id, privilege level).
    pub domains: BTreeMap<(u16, u8), DomainCycles>,
    /// Cycle/step attribution keyed by opcode class (see [`OpClass`]).
    pub op_classes: [DomainCycles; OpClass::COUNT],
    /// Cycles of steps that performed a gate switch.
    pub gate_switch: Histogram,
    /// Cycles of steps that performed ≥ 1 privilege check.
    pub check: Histogram,
    /// Cycles of steps that took ≥ 1 grid-cache miss.
    pub grid_miss: Histogram,
    /// Cycles of steps stalled flushing a cross-hart shootdown.
    pub shootdown: Histogram,
    /// Cycles of steps carrying fault-injection or integrity events.
    pub fault: Histogram,
    spans: Vec<Span>,
    span_cap: usize,
    spans_dropped: u64,
    /// Committed cycles per time slice.
    pub series: TimeSeries,
    /// Steps that trapped (any cause), including privilege faults.
    pub faults: u64,
}

impl Profile {
    /// An empty profile for `hart` with the default span bound.
    pub fn new(hart: usize) -> Self {
        Profile {
            hart,
            span_cap: DEFAULT_SPAN_CAP,
            series: TimeSeries::default(),
            ..Profile::default()
        }
    }

    /// Override the retained-span bound (clamped to ≥ 1).
    pub fn with_span_cap(mut self, cap: usize) -> Self {
        self.span_cap = cap.max(1);
        self
    }

    /// Total modeled cycles recorded.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total retired instructions recorded.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Spans recorded so far, oldest first.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans discarded because the bound was hit.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    fn push_span(&mut self, s: Span) {
        if self.spans.len() < self.span_cap {
            self.spans.push(s);
        } else {
            self.spans_dropped += 1;
        }
    }

    /// Record one retired instruction.
    pub fn record_step(&mut self, s: StepSample) {
        let t0 = self.cycles;
        match self.cur_domain {
            None => {
                self.cur_domain = Some(s.domain);
                self.cur_since = t0;
            }
            Some(d) if d != s.domain => {
                self.push_span(Span {
                    kind: SpanKind::Domain,
                    id: d as u64,
                    start: self.cur_since,
                    end: t0,
                });
                self.cur_domain = Some(s.domain);
                self.cur_since = t0;
            }
            _ => {}
        }
        self.cycles += s.cycles;
        self.steps += 1;
        let e = self.domains.entry((s.domain, s.priv_level)).or_default();
        e.cycles += s.cycles;
        e.steps += 1;
        let oc = &mut self.op_classes[s.class.op.index()];
        oc.cycles += s.cycles;
        oc.steps += 1;
        self.series.add(t0, s.cycles);
        if s.class.gate_switch {
            self.gate_switch.record(s.cycles);
            self.push_span(Span {
                kind: SpanKind::Gate,
                id: s.domain as u64,
                start: t0,
                end: self.cycles,
            });
        }
        if s.class.checks > 0 {
            self.check.record(s.cycles);
        }
        if s.class.grid_misses > 0 {
            self.grid_miss.record(s.cycles);
        }
        if s.class.shootdown_flushed > 0 {
            self.shootdown.record(s.cycles);
            self.push_span(Span {
                kind: SpanKind::Shootdown,
                id: s.class.shootdown_flushed as u64,
                start: t0,
                end: self.cycles,
            });
        }
        if s.class.fault_events > 0 {
            self.fault.record(s.cycles);
            self.push_span(Span {
                kind: SpanKind::Fault,
                id: s.class.fault_events as u64,
                start: t0,
                end: self.cycles,
            });
        }
        if s.class.trapped {
            self.faults += 1;
        }
    }

    /// Close the open domain-residency span at the current cycle.
    /// Idempotent; call when the run ends.
    pub fn finish(&mut self) {
        if let Some(d) = self.cur_domain.take() {
            if self.cycles > self.cur_since {
                self.push_span(Span {
                    kind: SpanKind::Domain,
                    id: d as u64,
                    start: self.cur_since,
                    end: self.cycles,
                });
            }
        }
    }

    /// Fold another profile's attribution (domains, histograms, fault
    /// count — not spans or series) into this one.
    pub fn merge_attribution(&mut self, other: &Profile) {
        self.cycles += other.cycles;
        self.steps += other.steps;
        for (k, v) in &other.domains {
            let e = self.domains.entry(*k).or_default();
            e.cycles += v.cycles;
            e.steps += v.steps;
        }
        for (a, b) in self.op_classes.iter_mut().zip(other.op_classes.iter()) {
            a.cycles += b.cycles;
            a.steps += b.steps;
        }
        self.gate_switch.merge(&other.gate_switch);
        self.check.merge(&other.check);
        self.grid_miss.merge(&other.grid_miss);
        self.shootdown.merge(&other.shootdown);
        self.fault.merge(&other.fault);
        self.faults += other.faults;
        self.spans_dropped += other.spans_dropped;
    }
}

/// Serialize the opcode-class attribution as an array of objects
/// (zero classes omitted).
pub(crate) fn op_classes_json(op_classes: &[DomainCycles; OpClass::COUNT]) -> Json {
    Json::Arr(
        OpClass::ALL
            .iter()
            .filter(|c| op_classes[c.index()].steps > 0)
            .map(|c| {
                let v = op_classes[c.index()];
                Json::obj([
                    ("class", Json::Str(c.name().to_string())),
                    ("cycles", Json::U64(v.cycles)),
                    ("steps", Json::U64(v.steps)),
                ])
            })
            .collect(),
    )
}

/// Serialize the attribution keys as an array of objects.
fn domains_json(domains: &BTreeMap<(u16, u8), DomainCycles>) -> Json {
    Json::Arr(
        domains
            .iter()
            .map(|((d, p), v)| {
                Json::obj([
                    ("domain", Json::U64(*d as u64)),
                    ("priv", Json::U64(*p as u64)),
                    ("cycles", Json::U64(v.cycles)),
                    ("steps", Json::U64(v.steps)),
                ])
            })
            .collect(),
    )
}

/// The latency histograms as one JSON object.
fn histograms_json(p: &Profile) -> Json {
    Json::obj([
        ("gate_switch", p.gate_switch.to_json()),
        ("check", p.check.to_json()),
        ("grid_miss", p.grid_miss.to_json()),
        ("shootdown", p.shootdown.to_json()),
        ("fault", p.fault.to_json()),
    ])
}

impl ToJson for Profile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hart", Json::U64(self.hart as u64)),
            ("cycles", Json::U64(self.cycles)),
            ("steps", Json::U64(self.steps)),
            ("faults", Json::U64(self.faults)),
            ("domains", domains_json(&self.domains)),
            ("op_classes", op_classes_json(&self.op_classes)),
            ("histograms", histograms_json(self)),
            ("series", self.series.to_json()),
            ("spans_dropped", Json::U64(self.spans_dropped)),
        ])
    }
}

/// Cheaply-cloneable handle to a shared [`Profile`] — or to nothing.
///
/// Mirrors [`TraceSink`](crate::TraceSink): the disabled sink carries
/// no profile, `is_enabled()` is one `Option` discriminant test, and
/// [`ProfSink::record`] never constructs the sample when disabled.
#[derive(Debug, Clone, Default)]
pub struct ProfSink(Option<Rc<RefCell<Profile>>>);

impl ProfSink {
    /// The disabled sink (records nothing, costs one branch).
    pub fn off() -> Self {
        ProfSink(None)
    }

    /// An enabled sink backed by a fresh profile for `hart`.
    pub fn enabled(hart: usize) -> Self {
        ProfSink(Some(Rc::new(RefCell::new(Profile::new(hart)))))
    }

    /// Whether this sink records samples.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record the sample built by `f`; `f` is not called when disabled.
    #[inline]
    pub fn record(&self, f: impl FnOnce() -> StepSample) {
        if let Some(p) = &self.0 {
            p.borrow_mut().record_step(f());
        }
    }

    /// Take the accumulated profile (closing its open span), leaving a
    /// fresh one in place. `None` when disabled.
    pub fn take(&self) -> Option<Profile> {
        self.0.as_ref().map(|p| {
            let hart = p.borrow().hart;
            let mut out = std::mem::replace(&mut *p.borrow_mut(), Profile::new(hart));
            out.finish();
            out
        })
    }

    /// Clone out the profile so far (with its open span closed).
    /// `None` when disabled.
    pub fn snapshot(&self) -> Option<Profile> {
        self.0.as_ref().map(|p| {
            let mut out = p.borrow().clone();
            out.finish();
            out
        })
    }
}

/// What a denied check was checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// Instruction-privilege check (detail = instruction class index).
    Inst,
    /// CSR-privilege check (detail = CSR address).
    Csr,
    /// Gate legality check (detail = destination domain, or the gate
    /// table index that failed validation).
    Gate,
    /// Trusted-memory access check (detail = physical address).
    Tmem,
    /// Integrity verification of privilege state (detail = trusted-memory
    /// address of the corrupted word, or 0 for poisoned snapshot state).
    Integrity,
    /// Shootdown delivery blew the bounded-backoff deadline (detail =
    /// the coherence epoch that expired).
    Shootdown,
}

impl AuditKind {
    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AuditKind::Inst => "inst",
            AuditKind::Csr => "csr",
            AuditKind::Gate => "gate",
            AuditKind::Tmem => "tmem",
            AuditKind::Integrity => "integrity",
            AuditKind::Shootdown => "shootdown",
        }
    }
}

/// One denied privilege check, as recorded by the PCU at the moment it
/// raised (or would raise) a Grid fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditRecord {
    /// PC of the faulting instruction.
    pub pc: u64,
    /// Raw instruction bits (0 when the deny site has no decode, e.g.
    /// a CSR check reached through the CSR file).
    pub raw: u32,
    /// Privilege level at the time of the check (0=U, 1=S, 3=M).
    pub priv_level: u8,
    /// ISA domain the hart was executing in.
    pub domain: u16,
    /// Which checker denied.
    pub kind: AuditKind,
    /// Architectural trap cause raised (24–28 for Grid faults).
    pub cause: u64,
    /// Kind-specific detail: instruction class index, CSR address,
    /// destination domain / gate index, or physical address.
    pub detail: u64,
}

impl ToJson for AuditRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("pc", Json::Str(format!("{:#x}", self.pc))),
            ("raw", Json::Str(format!("{:#010x}", self.raw))),
            ("priv", Json::U64(self.priv_level as u64)),
            ("domain", Json::U64(self.domain as u64)),
            ("kind", Json::Str(self.kind.name().to_string())),
            ("cause", Json::U64(self.cause)),
            ("detail", Json::Str(format!("{:#x}", self.detail))),
        ])
    }
}

/// Default bound on retained audit records.
pub const AUDIT_CAP: usize = 4096;

/// A bounded audit log: appends past the cap are counted, not stored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
    dropped: u64,
}

impl AuditLog {
    /// An empty log with the default bound.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Append a record, counting it as dropped past the bound.
    pub fn push(&mut self, r: AuditRecord) {
        if self.records.len() < AUDIT_CAP {
            self.records.push(r);
        } else {
            self.dropped += 1;
        }
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Records discarded because the bound was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever appended.
    pub fn total(&self) -> u64 {
        self.records.len() as u64 + self.dropped
    }

    /// Whether nothing was ever appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.dropped == 0
    }

    /// Move the retained records out, leaving the log empty.
    pub fn take(&mut self) -> Vec<AuditRecord> {
        self.dropped = 0;
        std::mem::take(&mut self.records)
    }

    /// Reassemble a log from its parts (snapshot seam). Records past
    /// the bound are folded into the dropped count.
    pub fn from_parts(mut records: Vec<AuditRecord>, dropped: u64) -> AuditLog {
        let extra = records.len().saturating_sub(AUDIT_CAP) as u64;
        records.truncate(AUDIT_CAP);
        AuditLog {
            records,
            dropped: dropped + extra,
        }
    }
}

impl ToJson for AuditLog {
    fn to_json(&self) -> Json {
        Json::obj([
            ("total", Json::U64(self.total())),
            ("dropped", Json::U64(self.dropped)),
            (
                "records",
                Json::Arr(self.records.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new();
        // 2^k and 2^k - 1 land in different buckets.
        assert_ne!(bucket_index(8), bucket_index(7));
        assert_eq!(bucket_index(4), bucket_index(7));
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 6);
        assert_eq!(h.max(), 3);
        // rank(50%) = 2 → the second sample (value 1, bucket upper 1).
        assert_eq!(h.p50(), 1);
        // rank(99%) = 4 → bucket of {2,3}, upper bound 3.
        assert_eq!(h.p99(), 3);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 3);
    }

    #[test]
    fn histogram_percentile_clamps_to_max() {
        let mut h = Histogram::new();
        h.record(1000); // bucket upper bound is 1023
        assert_eq!(h.p50(), 1000);
        assert_eq!(h.p99(), 1000);
        h.record(1);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p99(), 1000);
    }

    #[test]
    fn histogram_empty_and_extremes() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
    }

    #[test]
    fn histogram_percentile_interpolates_within_bucket() {
        // Uniform 1..=1000: the true p50 is 500, which sits mid-bucket
        // in [256, 511] ∪ [512, 1023] territory. The old upper-bound
        // answer reported a bucket edge (≈2× off near the low edge);
        // interpolation must land near the true quantile.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        assert!(
            (450..=550).contains(&p50),
            "p50 of uniform 1..=1000 should be ≈500, got {p50}"
        );
        let p90 = h.p90();
        assert!(
            (820..=980).contains(&p90),
            "p90 of uniform 1..=1000 should be ≈900, got {p90}"
        );
        // Quantiles stay monotone and inside the recorded range.
        assert!(p50 <= p90 && p90 <= h.p99() && h.p99() <= h.max());
        // A hot spike far below the max must not be reported at the
        // bucket's upper edge.
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(600); // bucket [512, 1023]
        }
        h.record(4000); // max outside the winning bucket
        let p50 = h.p50();
        assert!(
            (512..800).contains(&p50),
            "p50 must interpolate inside [512, 1023], got {p50}"
        );
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(4);
        b.record(100);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100);
        assert_eq!(a.sum(), 109);
    }

    #[test]
    fn time_series_rescales_in_place() {
        let mut s = TimeSeries::new(10, 4);
        s.add(0, 1);
        s.add(35, 2); // slice 3
        assert_eq!(s.slices(), &[1, 0, 0, 2]);
        s.add(45, 4); // slice 4 ≥ cap → interval doubles to 20
        assert_eq!(s.interval(), 20);
        assert_eq!(s.slices(), &[1, 2, 4]);
        // Totals are conserved across rescales.
        assert_eq!(s.slices().iter().sum::<u64>(), 7);
    }

    fn sample(domain: u16, cycles: u64, class: StepClass) -> StepSample {
        StepSample {
            domain,
            priv_level: 1,
            cycles,
            class,
        }
    }

    #[test]
    fn profile_attributes_cycles_and_derives_spans() {
        let mut p = Profile::new(0);
        p.record_step(sample(0, 10, StepClass::default()));
        p.record_step(sample(
            3,
            12,
            StepClass {
                gate_switch: true,
                checks: 1,
                ..StepClass::default()
            },
        ));
        p.record_step(sample(3, 5, StepClass::default()));
        p.finish();
        assert_eq!(p.cycles(), 27);
        assert_eq!(p.steps(), 3);
        assert_eq!(p.domains[&(0, 1)].cycles, 10);
        assert_eq!(p.domains[&(3, 1)].cycles, 17);
        assert_eq!(p.gate_switch.count(), 1);
        assert_eq!(p.check.count(), 1);
        // Spans: domain 0 [0,10), gate [10,22), domain 3 [10,27).
        let domains: Vec<&Span> = p
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Domain)
            .collect();
        assert_eq!(domains.len(), 2);
        assert_eq!(
            (domains[0].id, domains[0].start, domains[0].end),
            (0, 0, 10)
        );
        assert_eq!(
            (domains[1].id, domains[1].start, domains[1].end),
            (3, 10, 27)
        );
        let gate = p.spans().iter().find(|s| s.kind == SpanKind::Gate).unwrap();
        assert_eq!((gate.id, gate.start, gate.end), (3, 10, 22));
    }

    #[test]
    fn profile_finish_is_idempotent() {
        let mut p = Profile::new(0);
        p.record_step(sample(2, 4, StepClass::default()));
        p.finish();
        p.finish();
        assert_eq!(p.spans().len(), 1);
    }

    #[test]
    fn profile_span_cap_counts_drops() {
        let mut p = Profile::new(0).with_span_cap(1);
        for d in 0..4u16 {
            p.record_step(sample(d, 1, StepClass::default()));
        }
        p.finish();
        assert_eq!(p.spans().len(), 1);
        assert_eq!(p.spans_dropped(), 3);
    }

    #[test]
    fn disabled_sink_never_builds_samples() {
        let sink = ProfSink::off();
        let mut built = false;
        sink.record(|| {
            built = true;
            sample(0, 1, StepClass::default())
        });
        assert!(!built);
        assert!(sink.take().is_none());
    }

    #[test]
    fn sink_take_resets_and_closes_span() {
        let sink = ProfSink::enabled(2);
        sink.record(|| sample(1, 8, StepClass::default()));
        let p = sink.take().unwrap();
        assert_eq!(p.hart, 2);
        assert_eq!(p.cycles(), 8);
        assert_eq!(p.spans().len(), 1);
        let p2 = sink.take().unwrap();
        assert_eq!(p2.cycles(), 0);
        assert!(sink.is_enabled());
    }

    #[test]
    fn audit_log_bounds_and_serializes() {
        let mut log = AuditLog::new();
        let r = AuditRecord {
            pc: 0x8000_0004,
            raw: 0x1234_5678,
            priv_level: 0,
            domain: 3,
            kind: AuditKind::Csr,
            cause: 25,
            detail: 0x305,
        };
        for _ in 0..AUDIT_CAP + 5 {
            log.push(r);
        }
        assert_eq!(log.records().len(), AUDIT_CAP);
        assert_eq!(log.dropped(), 5);
        assert_eq!(log.total(), AUDIT_CAP as u64 + 5);
        let j = r.to_json().to_string();
        assert!(j.contains("\"kind\":\"csr\""));
        assert!(j.contains("\"cause\":25"));
        assert!(j.contains("\"pc\":\"0x80000004\""));
    }
}
