//! Perfetto / Chrome `trace_event` JSON export.
//!
//! A [`ProfileReport`] gathers the per-hart [`Profile`]s and audit logs
//! of one or more runs and renders them as a single JSON document that
//! the Perfetto UI (<https://ui.perfetto.dev>) loads directly:
//!
//! * `traceEvents` — the standard trace-event array. Each run is a
//!   Perfetto *process* (named by the run), each hart a *thread*
//!   ("hart N"), and every profile span becomes a complete (`"ph":"X"`)
//!   event. One modeled cycle is rendered as one microsecond, so the
//!   Perfetto timeline reads directly in cycles.
//! * `isaGrid` — a sidecar object with the aggregate attribution
//!   (per-domain cycles, latency histograms with precomputed
//!   percentiles, audit log). Perfetto ignores unknown top-level keys;
//!   `grid-prof` reads this section so it never has to re-derive
//!   percentiles from raw events.

use crate::json::{Json, ToJson};
use crate::prof::{op_classes_json, AuditRecord, DomainCycles, Profile, Span, SpanKind};
use crate::trace::{ReqEvent, TraceCollector};
use std::collections::BTreeMap;

/// One profiled run: a name, the per-hart profiles, and the audit log.
#[derive(Debug, Clone, Default)]
pub struct RunProfile {
    /// Display name ("stat/native", "smp-scaling", …).
    pub name: String,
    /// One profile per hart that executed.
    pub profiles: Vec<Profile>,
    /// Denied checks recorded by the run's PCU(s).
    pub audit: Vec<AuditRecord>,
}

/// A collection of profiled runs, exportable as one Perfetto trace.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// The runs, in execution order.
    pub runs: Vec<RunProfile>,
}

/// Display name of a span for the Perfetto track.
fn span_name(s: &Span) -> String {
    match s.kind {
        SpanKind::Domain => format!("domain {}", s.id),
        SpanKind::Gate => format!("gate→{}", s.id),
        SpanKind::Shootdown => format!("shootdown×{}", s.id),
        SpanKind::Fault => format!("fault×{}", s.id),
    }
}

/// A `"ph":"M"` metadata event naming a process or thread.
fn metadata(pid: u64, tid: Option<u64>, what: &str, name: &str) -> Json {
    let mut pairs = vec![
        ("ph".to_string(), Json::Str("M".into())),
        ("pid".to_string(), Json::U64(pid)),
    ];
    if let Some(t) = tid {
        pairs.push(("tid".to_string(), Json::U64(t)));
    }
    pairs.push(("name".to_string(), Json::Str(what.into())));
    pairs.push((
        "args".to_string(),
        Json::obj([("name", Json::Str(name.into()))]),
    ));
    Json::Obj(pairs)
}

/// A `"ph":"X"` complete event for one span.
fn complete(pid: u64, tid: u64, s: &Span) -> Json {
    Json::obj([
        ("ph", Json::Str("X".into())),
        ("pid", Json::U64(pid)),
        ("tid", Json::U64(tid)),
        ("ts", Json::U64(s.start)),
        ("dur", Json::U64(s.cycles().max(1))),
        ("name", Json::Str(span_name(s))),
        ("cat", Json::Str(s.kind.name().into())),
    ])
}

impl ProfileReport {
    /// A report over the given runs.
    pub fn new(runs: Vec<RunProfile>) -> Self {
        ProfileReport { runs }
    }

    /// The `traceEvents` array.
    fn trace_events(&self) -> Json {
        let mut events = Vec::new();
        for (i, run) in self.runs.iter().enumerate() {
            let pid = i as u64 + 1;
            events.push(metadata(pid, None, "process_name", &run.name));
            for p in &run.profiles {
                let tid = p.hart as u64;
                events.push(metadata(
                    pid,
                    Some(tid),
                    "thread_name",
                    &format!("hart {}", p.hart),
                ));
                for s in p.spans() {
                    events.push(complete(pid, tid, s));
                }
            }
        }
        Json::Arr(events)
    }

    /// Aggregate attribution across every run and hart.
    fn totals(&self) -> Json {
        let mut agg = Profile::new(0);
        let mut audit_total = 0u64;
        for run in &self.runs {
            for p in &run.profiles {
                agg.merge_attribution(p);
            }
            audit_total += run.audit.len() as u64;
        }
        Json::obj([
            ("cycles", Json::U64(agg.cycles())),
            ("steps", Json::U64(agg.steps())),
            ("faults", Json::U64(agg.faults)),
            ("audit_total", Json::U64(audit_total)),
            ("domains", domains_json(&agg.domains)),
            ("op_classes", op_classes_json(&agg.op_classes)),
            (
                "histograms",
                Json::obj([
                    ("gate_switch", agg.gate_switch.to_json()),
                    ("check", agg.check.to_json()),
                    ("grid_miss", agg.grid_miss.to_json()),
                    ("shootdown", agg.shootdown.to_json()),
                ]),
            ),
        ])
    }

    /// The full document: `traceEvents` plus the `isaGrid` sidecar.
    pub fn to_json(&self) -> Json {
        let runs: Vec<Json> = self
            .runs
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::Str(r.name.clone())),
                    (
                        "harts",
                        Json::Arr(r.profiles.iter().map(ToJson::to_json).collect()),
                    ),
                    (
                        "audit",
                        Json::Arr(r.audit.iter().map(ToJson::to_json).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("traceEvents", self.trace_events()),
            ("displayTimeUnit", Json::Str("ms".into())),
            (
                "isaGrid",
                Json::obj([("runs", Json::Arr(runs)), ("totals", self.totals())]),
            ),
        ])
    }
}

/// One common field set for a trace event on a track.
fn event_base(ph: &str, tid: u64, ts: u64, name: String, cat: &str) -> Vec<(String, Json)> {
    vec![
        ("ph".to_string(), Json::Str(ph.into())),
        ("pid".to_string(), Json::U64(1)),
        ("tid".to_string(), Json::U64(tid)),
        ("ts".to_string(), Json::U64(ts)),
        ("name".to_string(), Json::Str(name)),
        ("cat".to_string(), Json::Str(cat.into())),
    ]
}

/// A flow-start (`"ph":"s"`) event. Perfetto matches flow endpoints on
/// `(cat, id, name)`, so starts and finishes must agree on all three.
fn flow_start(tid: u64, ts: u64, name: &str, cat: &str, id: u64) -> Json {
    let mut pairs = event_base("s", tid, ts, name.to_string(), cat);
    pairs.push(("id".to_string(), Json::U64(id)));
    Json::Obj(pairs)
}

/// A flow-finish (`"ph":"f"`, binding to the enclosing slice) event.
fn flow_finish(tid: u64, ts: u64, name: &str, cat: &str, id: u64) -> Json {
    let mut pairs = event_base("f", tid, ts, name.to_string(), cat);
    pairs.push(("bp".to_string(), Json::Str("e".into())));
    pairs.push(("id".to_string(), Json::U64(id)));
    Json::Obj(pairs)
}

/// A complete (`"ph":"X"`) event with explicit fields and args.
fn complete_at(tid: u64, ts: u64, dur: u64, name: String, cat: &str, args: Json) -> Json {
    let mut pairs = event_base("X", tid, ts, name, cat);
    pairs.push(("dur".to_string(), Json::U64(dur.max(1))));
    pairs.push(("args".to_string(), args));
    Json::Obj(pairs)
}

/// Renders a [`TraceCollector`]'s kept request trees as one Perfetto
/// document with causally-linked spans across hart tracks:
///
/// * track 0 is the **host** (the serve driver): request arrivals and
///   shootdown publishes start flow arrows there;
/// * track `h + 1` is **hart h**: each kept request is a root
///   complete event `[dispatch, harvest)` with its domain-residency
///   segments as child slices and its denials / deopts / shootdown
///   acks as unit-duration markers;
/// * flow events (`"ph":"s"` / `"ph":"f"`) link the host arrival to
///   the hart dispatch (category `req`, id = trace ID) and each
///   shootdown publish to its per-hart acks (category `shootdown`,
///   id = coherence epoch) — the cross-track causality arrows.
///
/// One virtual cycle renders as one microsecond. The `isaGridTrace`
/// sidecar carries the telemetry stats, exemplars, and kept-tree
/// summaries for tools that don't want to re-derive them.
#[derive(Debug, Clone, Copy)]
pub struct TraceReport<'a> {
    /// Display name of the run.
    pub name: &'a str,
    /// Harts in the session (fixes the track count).
    pub harts: usize,
    /// The collector holding kept trees and flow endpoints.
    pub collector: &'a TraceCollector,
}

impl TraceReport<'_> {
    /// The `traceEvents` array.
    fn trace_events(&self) -> Json {
        let c = self.collector;
        let mut events = Vec::new();
        events.push(metadata(1, None, "process_name", self.name));
        events.push(metadata(1, Some(0), "thread_name", "host"));
        for h in 0..self.harts {
            events.push(metadata(
                1,
                Some(h as u64 + 1),
                "thread_name",
                &format!("hart {h}"),
            ));
        }
        for tr in c.kept() {
            let tid = tr.hart as u64 + 1;
            events.push(flow_start(0, tr.arrival, "dispatch", "req", tr.id));
            events.push(flow_finish(tid, tr.start, "dispatch", "req", tr.id));
            events.push(complete_at(
                tid,
                tr.start,
                tr.end.saturating_sub(tr.start),
                format!("req {}", tr.id),
                "req",
                Json::obj([
                    ("tenant", Json::U64(tr.tenant as u64)),
                    ("kind", Json::U64(tr.kind as u64)),
                    ("arrival", Json::U64(tr.arrival)),
                    ("latency", Json::U64(tr.latency)),
                    ("denied", Json::Bool(tr.denied)),
                ]),
            ));
            for seg in tr.segments() {
                events.push(complete_at(
                    tid,
                    seg.start,
                    seg.cycles(),
                    format!("domain {}", seg.domain),
                    "req_domain",
                    Json::obj([("trace_id", Json::U64(tr.id))]),
                ));
            }
            for (t, ev) in &tr.events {
                let (name, a, b) = match ev {
                    ReqEvent::GateEnter { .. } | ReqEvent::GateExit { .. } => continue,
                    ReqEvent::Deny { cause, detail } => ("deny", *cause, *detail),
                    ReqEvent::ShootdownAck { flushes, epoch } => {
                        ("shootdown_ack", *flushes as u64, *epoch)
                    }
                    ReqEvent::Deopt { reason } => ("deopt", reason.index() as u64, 0),
                };
                events.push(complete_at(
                    tid,
                    *t,
                    1,
                    name.to_string(),
                    ev.name(),
                    Json::obj([
                        ("trace_id", Json::U64(tr.id)),
                        ("a", Json::U64(a)),
                        ("b", Json::U64(b)),
                    ]),
                ));
            }
        }
        for (epoch, t) in c.publishes() {
            events.push(flow_start(0, *t, "publish", "shootdown", *epoch));
        }
        for (epoch, hart, t) in c.acks() {
            // An ack needs a published start to bind to; rotations
            // always publish before harts ack, so unmatched acks only
            // appear when the publish list overflowed its bound.
            events.push(flow_finish(
                *hart as u64 + 1,
                *t,
                "publish",
                "shootdown",
                *epoch,
            ));
            events.push(complete_at(
                *hart as u64 + 1,
                *t,
                1,
                format!("ack e{epoch}"),
                "shootdown",
                Json::obj([("epoch", Json::U64(*epoch))]),
            ));
        }
        Json::Arr(events)
    }

    /// The full document: `traceEvents` plus the `isaGridTrace`
    /// sidecar.
    pub fn to_json(&self) -> Json {
        let c = self.collector;
        Json::obj([
            ("traceEvents", self.trace_events()),
            ("displayTimeUnit", Json::Str("ms".into())),
            (
                "isaGridTrace",
                Json::obj([
                    ("name", Json::Str(self.name.to_string())),
                    ("harts", Json::U64(self.harts as u64)),
                    ("mode", Json::Str(c.policy().mode.name().to_string())),
                    ("telemetry", c.stats.to_json()),
                    ("latency_exemplars", c.latency_exemplars.to_json()),
                    ("service_exemplars", c.service_exemplars.to_json()),
                    (
                        "kept",
                        Json::Arr(c.kept().iter().map(ToJson::to_json).collect()),
                    ),
                ]),
            ),
        ])
    }
}

/// Serialize `(domain, priv) → cycles` attribution as a JSON array.
fn domains_json(domains: &BTreeMap<(u16, u8), DomainCycles>) -> Json {
    Json::Arr(
        domains
            .iter()
            .map(|((d, p), v)| {
                Json::obj([
                    ("domain", Json::U64(*d as u64)),
                    ("priv", Json::U64(*p as u64)),
                    ("cycles", Json::U64(v.cycles)),
                    ("steps", Json::U64(v.steps)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prof::{StepClass, StepSample};

    fn profiled_run() -> RunProfile {
        let mut p = Profile::new(0);
        p.record_step(StepSample {
            domain: 0,
            priv_level: 1,
            cycles: 7,
            class: StepClass::default(),
        });
        p.record_step(StepSample {
            domain: 2,
            priv_level: 0,
            cycles: 12,
            class: StepClass {
                gate_switch: true,
                checks: 1,
                ..StepClass::default()
            },
        });
        p.finish();
        RunProfile {
            name: "unit/run".into(),
            profiles: vec![p],
            audit: vec![],
        }
    }

    #[test]
    fn report_has_process_thread_and_span_events() {
        let doc = ProfileReport::new(vec![profiled_run()]).to_json();
        let s = doc.to_string();
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"process_name\""));
        assert!(s.contains("\"hart 0\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"cat\":\"domain\""));
        assert!(s.contains("\"cat\":\"gate\""));
        assert!(s.contains("\"isaGrid\""));
    }

    #[test]
    fn trace_report_emits_cross_track_flow_events() {
        use crate::trace::{TraceCollector, TraceMode, TracePolicy};
        let mut c = TraceCollector::new(TracePolicy {
            mode: TraceMode::Full,
            ..TracePolicy::default()
        });
        c.begin(9, 2, 1, 3, 100, 120);
        c.ingest(3, 9, 130, ReqEvent::GateEnter { domain: 4 });
        c.ingest(3, 9, 150, ReqEvent::GateExit { domain: 0 });
        c.note_publish(5, 140);
        c.ingest(
            3,
            0,
            145,
            ReqEvent::ShootdownAck {
                flushes: 2,
                epoch: 5,
            },
        );
        c.finish(9, 200, 100, 60, false);
        let doc = TraceReport {
            name: "unit/trace",
            harts: 4,
            collector: &c,
        }
        .to_json();
        let s = doc.to_string();
        // Request flow: start on the host track, finish on hart 3.
        assert!(s.contains("\"ph\":\"s\""));
        assert!(s.contains("\"ph\":\"f\""));
        assert!(s.contains("\"cat\":\"req\""));
        assert!(s.contains("\"cat\":\"shootdown\""));
        assert!(s.contains("\"req 9\""));
        assert!(s.contains("\"domain 4\""));
        assert!(s.contains("\"isaGridTrace\""));
        // Round-trips through the hand-rolled parser.
        let parsed = Json::parse(&s).expect("trace JSON parses");
        assert!(parsed.get("traceEvents").is_some());
    }

    #[test]
    fn totals_aggregate_across_runs() {
        let doc = ProfileReport::new(vec![profiled_run(), profiled_run()]);
        let j = doc.to_json();
        let s = j.to_string();
        // 2 runs × 19 cycles each.
        assert!(s.contains("\"totals\":{\"cycles\":38"));
    }
}
