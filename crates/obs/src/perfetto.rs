//! Perfetto / Chrome `trace_event` JSON export.
//!
//! A [`ProfileReport`] gathers the per-hart [`Profile`]s and audit logs
//! of one or more runs and renders them as a single JSON document that
//! the Perfetto UI (<https://ui.perfetto.dev>) loads directly:
//!
//! * `traceEvents` — the standard trace-event array. Each run is a
//!   Perfetto *process* (named by the run), each hart a *thread*
//!   ("hart N"), and every profile span becomes a complete (`"ph":"X"`)
//!   event. One modeled cycle is rendered as one microsecond, so the
//!   Perfetto timeline reads directly in cycles.
//! * `isaGrid` — a sidecar object with the aggregate attribution
//!   (per-domain cycles, latency histograms with precomputed
//!   percentiles, audit log). Perfetto ignores unknown top-level keys;
//!   `grid-prof` reads this section so it never has to re-derive
//!   percentiles from raw events.

use crate::json::{Json, ToJson};
use crate::prof::{AuditRecord, DomainCycles, Profile, Span, SpanKind};
use std::collections::BTreeMap;

/// One profiled run: a name, the per-hart profiles, and the audit log.
#[derive(Debug, Clone, Default)]
pub struct RunProfile {
    /// Display name ("stat/native", "smp-scaling", …).
    pub name: String,
    /// One profile per hart that executed.
    pub profiles: Vec<Profile>,
    /// Denied checks recorded by the run's PCU(s).
    pub audit: Vec<AuditRecord>,
}

/// A collection of profiled runs, exportable as one Perfetto trace.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// The runs, in execution order.
    pub runs: Vec<RunProfile>,
}

/// Display name of a span for the Perfetto track.
fn span_name(s: &Span) -> String {
    match s.kind {
        SpanKind::Domain => format!("domain {}", s.id),
        SpanKind::Gate => format!("gate→{}", s.id),
        SpanKind::Shootdown => format!("shootdown×{}", s.id),
        SpanKind::Fault => format!("fault×{}", s.id),
    }
}

/// A `"ph":"M"` metadata event naming a process or thread.
fn metadata(pid: u64, tid: Option<u64>, what: &str, name: &str) -> Json {
    let mut pairs = vec![
        ("ph".to_string(), Json::Str("M".into())),
        ("pid".to_string(), Json::U64(pid)),
    ];
    if let Some(t) = tid {
        pairs.push(("tid".to_string(), Json::U64(t)));
    }
    pairs.push(("name".to_string(), Json::Str(what.into())));
    pairs.push((
        "args".to_string(),
        Json::obj([("name", Json::Str(name.into()))]),
    ));
    Json::Obj(pairs)
}

/// A `"ph":"X"` complete event for one span.
fn complete(pid: u64, tid: u64, s: &Span) -> Json {
    Json::obj([
        ("ph", Json::Str("X".into())),
        ("pid", Json::U64(pid)),
        ("tid", Json::U64(tid)),
        ("ts", Json::U64(s.start)),
        ("dur", Json::U64(s.cycles().max(1))),
        ("name", Json::Str(span_name(s))),
        ("cat", Json::Str(s.kind.name().into())),
    ])
}

impl ProfileReport {
    /// A report over the given runs.
    pub fn new(runs: Vec<RunProfile>) -> Self {
        ProfileReport { runs }
    }

    /// The `traceEvents` array.
    fn trace_events(&self) -> Json {
        let mut events = Vec::new();
        for (i, run) in self.runs.iter().enumerate() {
            let pid = i as u64 + 1;
            events.push(metadata(pid, None, "process_name", &run.name));
            for p in &run.profiles {
                let tid = p.hart as u64;
                events.push(metadata(
                    pid,
                    Some(tid),
                    "thread_name",
                    &format!("hart {}", p.hart),
                ));
                for s in p.spans() {
                    events.push(complete(pid, tid, s));
                }
            }
        }
        Json::Arr(events)
    }

    /// Aggregate attribution across every run and hart.
    fn totals(&self) -> Json {
        let mut agg = Profile::new(0);
        let mut audit_total = 0u64;
        for run in &self.runs {
            for p in &run.profiles {
                agg.merge_attribution(p);
            }
            audit_total += run.audit.len() as u64;
        }
        Json::obj([
            ("cycles", Json::U64(agg.cycles())),
            ("steps", Json::U64(agg.steps())),
            ("faults", Json::U64(agg.faults)),
            ("audit_total", Json::U64(audit_total)),
            ("domains", domains_json(&agg.domains)),
            (
                "histograms",
                Json::obj([
                    ("gate_switch", agg.gate_switch.to_json()),
                    ("check", agg.check.to_json()),
                    ("grid_miss", agg.grid_miss.to_json()),
                    ("shootdown", agg.shootdown.to_json()),
                ]),
            ),
        ])
    }

    /// The full document: `traceEvents` plus the `isaGrid` sidecar.
    pub fn to_json(&self) -> Json {
        let runs: Vec<Json> = self
            .runs
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::Str(r.name.clone())),
                    (
                        "harts",
                        Json::Arr(r.profiles.iter().map(ToJson::to_json).collect()),
                    ),
                    (
                        "audit",
                        Json::Arr(r.audit.iter().map(ToJson::to_json).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("traceEvents", self.trace_events()),
            ("displayTimeUnit", Json::Str("ms".into())),
            (
                "isaGrid",
                Json::obj([("runs", Json::Arr(runs)), ("totals", self.totals())]),
            ),
        ])
    }
}

/// Serialize `(domain, priv) → cycles` attribution as a JSON array.
fn domains_json(domains: &BTreeMap<(u16, u8), DomainCycles>) -> Json {
    Json::Arr(
        domains
            .iter()
            .map(|((d, p), v)| {
                Json::obj([
                    ("domain", Json::U64(*d as u64)),
                    ("priv", Json::U64(*p as u64)),
                    ("cycles", Json::U64(v.cycles)),
                    ("steps", Json::U64(v.steps)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prof::{StepClass, StepSample};

    fn profiled_run() -> RunProfile {
        let mut p = Profile::new(0);
        p.record_step(StepSample {
            domain: 0,
            priv_level: 1,
            cycles: 7,
            class: StepClass::default(),
        });
        p.record_step(StepSample {
            domain: 2,
            priv_level: 0,
            cycles: 12,
            class: StepClass {
                gate_switch: true,
                checks: 1,
                ..StepClass::default()
            },
        });
        p.finish();
        RunProfile {
            name: "unit/run".into(),
            profiles: vec![p],
            audit: vec![],
        }
    }

    #[test]
    fn report_has_process_thread_and_span_events() {
        let doc = ProfileReport::new(vec![profiled_run()]).to_json();
        let s = doc.to_string();
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"process_name\""));
        assert!(s.contains("\"hart 0\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"cat\":\"domain\""));
        assert!(s.contains("\"cat\":\"gate\""));
        assert!(s.contains("\"isaGrid\""));
    }

    #[test]
    fn totals_aggregate_across_runs() {
        let doc = ProfileReport::new(vec![profiled_run(), profiled_run()]);
        let j = doc.to_json();
        let s = j.to_string();
        // 2 runs × 19 cycles each.
        assert!(s.contains("\"totals\":{\"cycles\":38"));
    }
}
