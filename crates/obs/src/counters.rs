//! The unified counter registry: one snapshot type subsuming the cache,
//! check, gate, timing and run tallies that previously lived in four
//! disjoint ad-hoc structs across the workspace.

use crate::json::{Json, ToJson};
use crate::trace::DeoptReason;

/// Hit/miss/flush tallies for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Cold lookups: nothing (valid) was cached for the probed tag.
    pub misses: u64,
    /// Whole-cache flushes.
    pub flushes: u64,
    /// Conflict evictions: a lookup found a *different* valid entry
    /// occupying its direct-mapped slot. Tracked apart from `misses`
    /// so capacity pressure does not skew [`CacheCounters::hit_rate`].
    pub conflicts: u64,
}

impl CacheCounters {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; an unused cache reports `1.0`.
    ///
    /// This is the single source of hit-rate math for the workspace —
    /// bench tables and run reports must both go through it.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Add another tally into this one.
    pub fn merge(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.flushes += other.flushes;
        self.conflicts += other.conflicts;
    }
}

impl ToJson for CacheCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::U64(self.hits)),
            ("misses", Json::U64(self.misses)),
            ("flushes", Json::U64(self.flushes)),
            ("conflicts", Json::U64(self.conflicts)),
            ("hit_rate", Json::F64(self.hit_rate())),
        ])
    }
}

/// Per-cache tallies for the PCU's five internal caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBank {
    /// HPT instruction-bitmap cache.
    pub inst: CacheCounters,
    /// HPT register double-bitmap cache.
    pub reg: CacheCounters,
    /// HPT bit-mask array cache.
    pub mask: CacheCounters,
    /// Switching-gate-table cache.
    pub sgt: CacheCounters,
    /// Legal-instruction short-circuit cache.
    pub legal: CacheCounters,
}

impl CacheBank {
    /// `(name, counters)` pairs in canonical order.
    pub fn named(&self) -> [(&'static str, &CacheCounters); 5] {
        [
            ("inst", &self.inst),
            ("reg", &self.reg),
            ("mask", &self.mask),
            ("sgt", &self.sgt),
            ("legal", &self.legal),
        ]
    }

    /// Sum over all five caches.
    pub fn total(&self) -> CacheCounters {
        let mut t = CacheCounters::default();
        for (_, c) in self.named() {
            t.merge(c);
        }
        t
    }

    /// Add another bank into this one, cache by cache.
    pub fn merge(&mut self, other: &CacheBank) {
        self.inst.merge(&other.inst);
        self.reg.merge(&other.reg);
        self.mask.merge(&other.mask);
        self.sgt.merge(&other.sgt);
        self.legal.merge(&other.legal);
    }
}

impl ToJson for CacheBank {
    fn to_json(&self) -> Json {
        Json::obj(self.named().map(|(n, c)| (n, c.to_json())))
    }
}

/// Basic-block cache tallies from the simulator's predecoded fetch
/// path: the decode-slot cache and its embedded fetch-translation
/// cache. Zero when the bbcache is disabled (`--no-bbcache`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BbCounters {
    /// Predecoded-slot lookups (fetches answered without `decode`).
    /// `flushes` counts whole-cache invalidations — FENCE.I,
    /// SFENCE.VMA, code-line stores, and cross-hart shootdowns.
    pub decode: CacheCounters,
    /// Fetch-translation lookups (fetches answered without a page
    /// walk). Flush events are tallied on `decode` only; a flush
    /// always drops all three structures together.
    pub tlb: CacheCounters,
    /// Data-translation lookups (paged loads/stores answered without a
    /// page walk).
    pub dtlb: CacheCounters,
}

impl BbCounters {
    /// `(name, counters)` pairs in canonical order.
    pub fn named(&self) -> [(&'static str, &CacheCounters); 3] {
        [
            ("decode", &self.decode),
            ("tlb", &self.tlb),
            ("dtlb", &self.dtlb),
        ]
    }

    /// Add another tally into this one.
    pub fn merge(&mut self, other: &BbCounters) {
        self.decode.merge(&other.decode);
        self.tlb.merge(&other.tlb);
        self.dtlb.merge(&other.dtlb);
    }
}

impl ToJson for BbCounters {
    fn to_json(&self) -> Json {
        Json::obj(self.named().map(|(n, c)| (n, c.to_json())))
    }
}

/// Superblock-JIT tallies from the simulator's linked-block fast path.
/// All zero when the JIT is disabled (`--no-jit` / `--no-bbcache`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitCounters {
    /// Superblocks compiled from hot bbcache pages.
    pub compiled: u64,
    /// Superblock executions entered through the dispatch map or a
    /// resolved block link.
    pub entered: u64,
    /// Instructions retired inside superblocks (the JIT's share of
    /// `run.steps`).
    pub ops: u64,
    /// Block-to-block transitions that used a resolved fallthrough or
    /// taken link (no dispatch-map re-hash).
    pub linked: u64,
    /// Dispatches refused by the per-block privilege guard (domain or
    /// coherence-epoch mismatch, pending shootdown, fault regime).
    pub guard_misses: u64,
    /// Early exits to the interpreter mid-block (trap, MMIO store,
    /// code/coherence epoch movement at a store).
    pub deopts: u64,
    /// Whole-JIT invalidations (code or coherence epoch movement).
    pub flushes: u64,
    /// Every bail back to the interpreter, broken down by
    /// [`DeoptReason`] index. Wider than `deopts`: it also counts the
    /// pre-dispatch refusals (guard miss, pending interrupt, timer
    /// window, step budget) that never entered the block.
    pub deopt_by: [u64; DeoptReason::COUNT],
}

impl JitCounters {
    /// Add another tally into this one.
    pub fn merge(&mut self, other: &JitCounters) {
        self.compiled += other.compiled;
        self.entered += other.entered;
        self.ops += other.ops;
        self.linked += other.linked;
        self.guard_misses += other.guard_misses;
        self.deopts += other.deopts;
        self.flushes += other.flushes;
        for (a, b) in self.deopt_by.iter_mut().zip(other.deopt_by.iter()) {
            *a += *b;
        }
    }
}

impl ToJson for JitCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("compiled", Json::U64(self.compiled)),
            ("entered", Json::U64(self.entered)),
            ("ops", Json::U64(self.ops)),
            ("linked", Json::U64(self.linked)),
            ("guard_misses", Json::U64(self.guard_misses)),
            ("deopts", Json::U64(self.deopts)),
            ("flushes", Json::U64(self.flushes)),
            (
                "deopt",
                Json::obj(
                    DeoptReason::ALL
                        .iter()
                        .map(|r| (r.name(), Json::U64(self.deopt_by[r.index()]))),
                ),
            ),
        ])
    }
}

/// Privilege-check verdict tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Instruction-class checks performed.
    pub inst: u64,
    /// CSR checks performed.
    pub csr: u64,
    /// Checks that ended in a grid fault.
    pub faults: u64,
    /// Physical accesses blocked by the trusted-memory fence.
    pub tmem_denials: u64,
}

impl ToJson for CheckCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("inst", Json::U64(self.inst)),
            ("csr", Json::U64(self.csr)),
            ("faults", Json::U64(self.faults)),
            ("tmem_denials", Json::U64(self.tmem_denials)),
        ])
    }
}

/// Gate and PCU-maintenance instruction tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounters {
    /// `hccall`/`hccalls` switches taken.
    pub calls: u64,
    /// `hcrets` returns taken.
    pub returns: u64,
    /// `pfch` prefetches executed.
    pub prefetches: u64,
    /// `pflh` cache flushes executed.
    pub flushes: u64,
}

impl ToJson for GateCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("calls", Json::U64(self.calls)),
            ("returns", Json::U64(self.returns)),
            ("prefetches", Json::U64(self.prefetches)),
            ("flushes", Json::U64(self.flushes)),
        ])
    }
}

/// Cycle attribution per event class, mirroring the timing model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingCounters {
    /// Retired events seen by the pipeline model.
    pub events: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles stalled on instruction fetch.
    pub fetch_stall: u64,
    /// Cycles stalled on data access.
    pub data_stall: u64,
    /// Cycles lost to branch redirects.
    pub branch_stall: u64,
    /// Cycles lost to serializing instructions.
    pub serialize_stall: u64,
    /// Cycles lost to trap entry/exit.
    pub trap_stall: u64,
    /// Cycles lost to page-table walks.
    pub walk_stall: u64,
    /// Cycles lost to PCU cache-miss refills.
    pub pcu_stall: u64,
    /// Cycles spent in gate instructions.
    pub gate_cycles: u64,
    /// Cycles lost refilling privilege caches after cross-hart
    /// shootdowns.
    pub shootdown_stall: u64,
}

impl ToJson for TimingCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("events", Json::U64(self.events)),
            ("cycles", Json::U64(self.cycles)),
            ("fetch_stall", Json::U64(self.fetch_stall)),
            ("data_stall", Json::U64(self.data_stall)),
            ("branch_stall", Json::U64(self.branch_stall)),
            ("serialize_stall", Json::U64(self.serialize_stall)),
            ("trap_stall", Json::U64(self.trap_stall)),
            ("walk_stall", Json::U64(self.walk_stall)),
            ("pcu_stall", Json::U64(self.pcu_stall)),
            ("gate_cycles", Json::U64(self.gate_cycles)),
            ("shootdown_stall", Json::U64(self.shootdown_stall)),
        ])
    }
}

/// SMP coherence tallies: hart count, privilege-cache shootdown traffic
/// and cost, and LR/SC reservation breaks. All zero on single-hart runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmpCounters {
    /// Harts that participated in the run.
    pub harts: u64,
    /// Shootdowns published (table mutations / PCU fences).
    pub shootdowns: u64,
    /// Shootdowns taken: remote flushes performed before next commit.
    pub shootdown_acks: u64,
    /// Live privilege-cache entries discarded by shootdown flushes.
    pub flushed_entries: u64,
    /// Modeled cycles spent re-warming caches after shootdowns.
    pub flush_cycles: u64,
    /// LR/SC reservations broken by remote stores/AMOs.
    pub reservation_breaks: u64,
}

impl ToJson for SmpCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("harts", Json::U64(self.harts)),
            ("shootdowns", Json::U64(self.shootdowns)),
            ("shootdown_acks", Json::U64(self.shootdown_acks)),
            ("flushed_entries", Json::U64(self.flushed_entries)),
            ("flush_cycles", Json::U64(self.flush_cycles)),
            ("reservation_breaks", Json::U64(self.reservation_breaks)),
        ])
    }
}

/// Whole-run bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Committed instructions.
    pub steps: u64,
    /// Traps taken.
    pub traps: u64,
    /// Trace events dropped by the bounded ring (0 when disabled).
    pub trace_dropped: u64,
    /// Denied checks recorded in the PCU audit log (including any past
    /// the log's retention bound).
    pub audit_denied: u64,
    /// Faults the chaos harness actually applied (bit flips, evictions,
    /// dropped shootdowns). Zero when injection is off.
    pub fault_injected: u64,
    /// Injected corruptions the integrity layer caught (seal mismatch on
    /// refill, cache-line scrub, poisoned snapshot, expired shootdown).
    pub fault_detected: u64,
    /// Detections recovered in place (line scrubbed and re-walked from
    /// trusted memory) without raising an architectural trap.
    pub fault_recovered: u64,
    /// Detections resolved fail-closed as deny + architectural trap.
    pub fault_denied: u64,
    /// Shootdown deliveries that blew the bounded-backoff deadline and
    /// faulted the offending hart.
    pub fault_shootdown_expired: u64,
    /// Whole-machine snapshots captured by the replay layer.
    pub snapshots: u64,
    /// Whole-machine restores performed by the replay layer.
    pub restores: u64,
    /// Differential-oracle comparisons performed (lockstep steps or
    /// checkpoint digests, depending on mode).
    pub oracle_checks: u64,
    /// Oracle comparisons that found the fast machine and the
    /// interpreter disagreeing. Nonzero means a simulator bug.
    pub divergences: u64,
    /// Tenant domains torn down to deny-all by the self-healing serve
    /// layer after a classified failure.
    pub quarantines: u64,
    /// Inflight requests retried against a machine restored from the
    /// last good checkpoint (bounded deterministic backoff).
    pub retries: u64,
    /// Admissions shed by the deterministic deadline-budget rule under
    /// overload. Sheds are counted, never hidden.
    pub sheds: u64,
    /// Completed recovery episodes: a classified failure resolved by
    /// quarantine/restore and the serve loop resumed.
    pub recoveries: u64,
}

impl ToJson for RunCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("steps", Json::U64(self.steps)),
            ("traps", Json::U64(self.traps)),
            ("trace_dropped", Json::U64(self.trace_dropped)),
            ("audit_denied", Json::U64(self.audit_denied)),
            ("fault_injected", Json::U64(self.fault_injected)),
            ("fault_detected", Json::U64(self.fault_detected)),
            ("fault_recovered", Json::U64(self.fault_recovered)),
            ("fault_denied", Json::U64(self.fault_denied)),
            (
                "fault_shootdown_expired",
                Json::U64(self.fault_shootdown_expired),
            ),
            ("snapshots", Json::U64(self.snapshots)),
            ("restores", Json::U64(self.restores)),
            ("oracle_checks", Json::U64(self.oracle_checks)),
            ("divergences", Json::U64(self.divergences)),
            ("quarantines", Json::U64(self.quarantines)),
            ("retries", Json::U64(self.retries)),
            ("sheds", Json::U64(self.sheds)),
            ("recoveries", Json::U64(self.recoveries)),
        ])
    }
}

/// The unified counter snapshot.
///
/// One `Counters` value captures everything the paper's evaluation
/// counts: per-cache hit rates (§7.1), check and gate tallies (Tables
/// 4–5), and cycle attribution (Figures 5–8). Producers snapshot into
/// it; consumers either read the typed fields or flatten with
/// [`Counters::entries`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// PCU cache tallies.
    pub caches: CacheBank,
    /// Simulator basic-block cache tallies.
    pub bbcache: BbCounters,
    /// Superblock-JIT tallies.
    pub jit: JitCounters,
    /// Privilege-check verdict tallies.
    pub checks: CheckCounters,
    /// Gate / maintenance instruction tallies.
    pub gates: GateCounters,
    /// Cycle attribution from the timing model.
    pub timing: TimingCounters,
    /// Whole-run bookkeeping.
    pub run: RunCounters,
    /// SMP coherence tallies (zero on single-hart runs).
    pub smp: SmpCounters,
}

impl Counters {
    /// Flatten into a registry of `(dotted_name, value)` counter pairs,
    /// in stable order (hit rates excluded — they are derived).
    pub fn entries(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(40);
        for (name, c) in self.caches.named() {
            out.push((format!("caches.{name}.hits"), c.hits));
            out.push((format!("caches.{name}.misses"), c.misses));
            out.push((format!("caches.{name}.flushes"), c.flushes));
            out.push((format!("caches.{name}.conflicts"), c.conflicts));
        }
        for (name, c) in self.bbcache.named() {
            out.push((format!("bbcache.{name}.hits"), c.hits));
            out.push((format!("bbcache.{name}.misses"), c.misses));
            out.push((format!("bbcache.{name}.flushes"), c.flushes));
            out.push((format!("bbcache.{name}.conflicts"), c.conflicts));
        }
        out.push(("jit.compiled".into(), self.jit.compiled));
        out.push(("jit.entered".into(), self.jit.entered));
        out.push(("jit.ops".into(), self.jit.ops));
        out.push(("jit.linked".into(), self.jit.linked));
        out.push(("jit.guard_misses".into(), self.jit.guard_misses));
        out.push(("jit.deopts".into(), self.jit.deopts));
        out.push(("jit.flushes".into(), self.jit.flushes));
        for r in DeoptReason::ALL {
            out.push((
                format!("jit.deopt.{}", r.name()),
                self.jit.deopt_by[r.index()],
            ));
        }
        out.push(("checks.inst".into(), self.checks.inst));
        out.push(("checks.csr".into(), self.checks.csr));
        out.push(("checks.faults".into(), self.checks.faults));
        out.push(("checks.tmem_denials".into(), self.checks.tmem_denials));
        out.push(("gates.calls".into(), self.gates.calls));
        out.push(("gates.returns".into(), self.gates.returns));
        out.push(("gates.prefetches".into(), self.gates.prefetches));
        out.push(("gates.flushes".into(), self.gates.flushes));
        out.push(("timing.events".into(), self.timing.events));
        out.push(("timing.cycles".into(), self.timing.cycles));
        out.push(("timing.fetch_stall".into(), self.timing.fetch_stall));
        out.push(("timing.data_stall".into(), self.timing.data_stall));
        out.push(("timing.branch_stall".into(), self.timing.branch_stall));
        out.push(("timing.serialize_stall".into(), self.timing.serialize_stall));
        out.push(("timing.trap_stall".into(), self.timing.trap_stall));
        out.push(("timing.walk_stall".into(), self.timing.walk_stall));
        out.push(("timing.pcu_stall".into(), self.timing.pcu_stall));
        out.push(("timing.gate_cycles".into(), self.timing.gate_cycles));
        out.push(("timing.shootdown_stall".into(), self.timing.shootdown_stall));
        out.push(("run.steps".into(), self.run.steps));
        out.push(("run.traps".into(), self.run.traps));
        out.push(("run.trace_dropped".into(), self.run.trace_dropped));
        out.push(("run.audit_denied".into(), self.run.audit_denied));
        out.push(("run.fault_injected".into(), self.run.fault_injected));
        out.push(("run.fault_detected".into(), self.run.fault_detected));
        out.push(("run.fault_recovered".into(), self.run.fault_recovered));
        out.push(("run.fault_denied".into(), self.run.fault_denied));
        out.push((
            "run.fault_shootdown_expired".into(),
            self.run.fault_shootdown_expired,
        ));
        out.push(("run.snapshots".into(), self.run.snapshots));
        out.push(("run.restores".into(), self.run.restores));
        out.push(("run.oracle_checks".into(), self.run.oracle_checks));
        out.push(("run.divergences".into(), self.run.divergences));
        out.push(("run.quarantines".into(), self.run.quarantines));
        out.push(("run.retries".into(), self.run.retries));
        out.push(("run.sheds".into(), self.run.sheds));
        out.push(("run.recoveries".into(), self.run.recoveries));
        out.push(("smp.harts".into(), self.smp.harts));
        out.push(("smp.shootdowns".into(), self.smp.shootdowns));
        out.push(("smp.shootdown_acks".into(), self.smp.shootdown_acks));
        out.push(("smp.flushed_entries".into(), self.smp.flushed_entries));
        out.push(("smp.flush_cycles".into(), self.smp.flush_cycles));
        out.push(("smp.reservation_breaks".into(), self.smp.reservation_breaks));
        out
    }

    /// Add another snapshot into this one, field by field — the
    /// aggregation primitive for multi-hart runs. `smp.harts` is summed
    /// like everything else, so seed it on exactly one of the inputs
    /// (or overwrite it after merging).
    pub fn merge(&mut self, other: &Counters) {
        self.caches.merge(&other.caches);
        self.bbcache.merge(&other.bbcache);
        self.jit.merge(&other.jit);
        self.checks.inst += other.checks.inst;
        self.checks.csr += other.checks.csr;
        self.checks.faults += other.checks.faults;
        self.checks.tmem_denials += other.checks.tmem_denials;
        self.gates.calls += other.gates.calls;
        self.gates.returns += other.gates.returns;
        self.gates.prefetches += other.gates.prefetches;
        self.gates.flushes += other.gates.flushes;
        self.timing.events += other.timing.events;
        self.timing.cycles += other.timing.cycles;
        self.timing.fetch_stall += other.timing.fetch_stall;
        self.timing.data_stall += other.timing.data_stall;
        self.timing.branch_stall += other.timing.branch_stall;
        self.timing.serialize_stall += other.timing.serialize_stall;
        self.timing.trap_stall += other.timing.trap_stall;
        self.timing.walk_stall += other.timing.walk_stall;
        self.timing.pcu_stall += other.timing.pcu_stall;
        self.timing.gate_cycles += other.timing.gate_cycles;
        self.timing.shootdown_stall += other.timing.shootdown_stall;
        self.run.steps += other.run.steps;
        self.run.traps += other.run.traps;
        self.run.trace_dropped += other.run.trace_dropped;
        self.run.audit_denied += other.run.audit_denied;
        self.run.fault_injected += other.run.fault_injected;
        self.run.fault_detected += other.run.fault_detected;
        self.run.fault_recovered += other.run.fault_recovered;
        self.run.fault_denied += other.run.fault_denied;
        self.run.fault_shootdown_expired += other.run.fault_shootdown_expired;
        self.run.snapshots += other.run.snapshots;
        self.run.restores += other.run.restores;
        self.run.oracle_checks += other.run.oracle_checks;
        self.run.divergences += other.run.divergences;
        self.run.quarantines += other.run.quarantines;
        self.run.retries += other.run.retries;
        self.run.sheds += other.run.sheds;
        self.run.recoveries += other.run.recoveries;
        self.smp.harts += other.smp.harts;
        self.smp.shootdowns += other.smp.shootdowns;
        self.smp.shootdown_acks += other.smp.shootdown_acks;
        self.smp.flushed_entries += other.smp.flushed_entries;
        self.smp.flush_cycles += other.smp.flush_cycles;
        self.smp.reservation_breaks += other.smp.reservation_breaks;
    }

    /// Look up one counter by its dotted registry name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

impl ToJson for Counters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("caches", self.caches.to_json()),
            ("bbcache", self.bbcache.to_json()),
            ("jit", self.jit.to_json()),
            ("checks", self.checks.to_json()),
            ("gates", self.gates.to_json()),
            ("timing", self.timing.to_json()),
            ("run", self.run.to_json()),
            ("smp", self.smp.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_unused_cache() {
        assert_eq!(CacheCounters::default().hit_rate(), 1.0);
        let c = CacheCounters {
            hits: 3,
            misses: 1,
            flushes: 0,
            conflicts: 0,
        };
        assert_eq!(c.hit_rate(), 0.75);
    }

    #[test]
    fn entries_match_typed_fields() {
        let mut c = Counters::default();
        c.caches.sgt = CacheCounters {
            hits: 10,
            misses: 2,
            flushes: 1,
            conflicts: 0,
        };
        c.checks.inst = 99;
        c.gates.calls = 7;
        c.timing.cycles = 1234;
        c.run.steps = 500;
        assert_eq!(c.get("caches.sgt.hits"), Some(10));
        assert_eq!(c.get("caches.sgt.misses"), Some(2));
        assert_eq!(c.get("checks.inst"), Some(99));
        assert_eq!(c.get("gates.calls"), Some(7));
        assert_eq!(c.get("timing.cycles"), Some(1234));
        assert_eq!(c.get("run.steps"), Some(500));
        // Every entry name is unique.
        let e = c.entries();
        let mut names: Vec<_> = e.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), e.len());
    }

    #[test]
    fn bank_total_sums_all_caches() {
        let b = CacheBank {
            inst: CacheCounters {
                hits: 1,
                misses: 2,
                flushes: 0,
                conflicts: 0,
            },
            legal: CacheCounters {
                hits: 4,
                misses: 0,
                flushes: 3,
                conflicts: 0,
            },
            ..CacheBank::default()
        };
        let t = b.total();
        assert_eq!((t.hits, t.misses, t.flushes), (5, 2, 3));
    }

    #[test]
    fn merge_sums_every_section() {
        let mut a = Counters::default();
        a.caches.inst.hits = 1;
        a.run.steps = 10;
        a.smp.shootdowns = 2;
        let mut b = Counters::default();
        b.caches.inst.hits = 2;
        b.run.steps = 5;
        b.smp.shootdowns = 1;
        b.smp.reservation_breaks = 4;
        b.timing.shootdown_stall = 8;
        a.merge(&b);
        assert_eq!(a.get("caches.inst.hits"), Some(3));
        assert_eq!(a.get("run.steps"), Some(15));
        assert_eq!(a.get("smp.shootdowns"), Some(3));
        assert_eq!(a.get("smp.reservation_breaks"), Some(4));
        assert_eq!(a.get("timing.shootdown_stall"), Some(8));
    }

    #[test]
    fn smp_block_is_in_entries_and_json() {
        let mut c = Counters::default();
        c.smp.harts = 4;
        c.smp.flush_cycles = 77;
        assert_eq!(c.get("smp.harts"), Some(4));
        assert_eq!(c.get("smp.flush_cycles"), Some(77));
        let s = c.to_json().to_string();
        assert!(s.contains("\"smp\""));
        assert!(s.contains("\"flush_cycles\":77"));
    }

    #[test]
    fn bbcache_block_is_in_entries_and_json() {
        let mut c = Counters::default();
        c.bbcache.decode.hits = 900;
        c.bbcache.decode.misses = 100;
        c.bbcache.tlb.hits = 990;
        c.bbcache.dtlb.hits = 42;
        c.bbcache.decode.flushes = 3;
        assert_eq!(c.get("bbcache.decode.hits"), Some(900));
        assert_eq!(c.get("bbcache.tlb.hits"), Some(990));
        assert_eq!(c.get("bbcache.dtlb.hits"), Some(42));
        assert_eq!(c.get("bbcache.decode.flushes"), Some(3));
        assert_eq!(c.bbcache.decode.hit_rate(), 0.9);
        let s = c.to_json().to_string();
        assert!(s.contains("\"bbcache\""));
        assert!(s.contains("\"hit_rate\""));
        let mut d = Counters::default();
        d.bbcache.decode.hits = 100;
        c.merge(&d);
        assert_eq!(c.get("bbcache.decode.hits"), Some(1000));
    }

    #[test]
    fn json_snapshot_round_trips_counts() {
        let mut c = Counters::default();
        c.caches.inst.hits = 42;
        let s = c.to_json().to_string();
        assert!(s.contains("\"hits\":42"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }
}
