//! Bounded event recording: the ring buffer, the `Tracer` trait, and
//! the cloneable [`TraceSink`] handle shared by the simulator core and
//! the PCU extension.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::event::{TimedEvent, TraceEvent};

/// Bounded FIFO of [`TimedEvent`]s; the oldest event is overwritten
/// when capacity is reached, and a monotone sequence number plus a
/// dropped-count make the loss observable.
#[derive(Debug)]
pub struct EventRing {
    cap: usize,
    buf: VecDeque<TimedEvent>,
    seq: u64,
    step: u64,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        EventRing {
            cap,
            buf: VecDeque::with_capacity(cap),
            seq: 0,
            step: 0,
            dropped: 0,
        }
    }

    /// Tag subsequent events with the given committed-instruction step.
    pub fn set_step(&mut self, step: u64) {
        self.step = step;
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TimedEvent {
            seq: self.seq,
            step: self.step,
            event,
        });
        self.seq += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// Clone out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.seq
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discard all retained events (sequence numbers keep advancing).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// A recorder of trace events. Implementations decide retention;
/// emitters must gate event *construction* on [`Tracer::enabled`] so a
/// disabled tracer costs one branch per potential event.
pub trait Tracer {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool;

    /// Record one event.
    fn record(&mut self, event: TraceEvent);

    /// Tag subsequent events with a committed-instruction step.
    fn set_step(&mut self, _step: u64) {}
}

/// The always-off tracer: `enabled()` is `false` and recording is a
/// no-op, so tracing disappears from hot paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// A tracer that owns its ring directly (single-writer use).
#[derive(Debug)]
pub struct RingTracer {
    ring: EventRing,
}

impl RingTracer {
    /// A ring-backed tracer retaining at most `cap` events.
    pub fn new(cap: usize) -> Self {
        RingTracer {
            ring: EventRing::new(cap),
        }
    }

    /// The underlying ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }
}

impl Tracer for RingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.ring.record(event);
    }

    fn set_step(&mut self, step: u64) {
        self.ring.set_step(step);
    }
}

/// Cheaply-cloneable handle to a shared [`EventRing`] — or to nothing.
///
/// The simulator's `Machine` and the PCU extension each hold a clone of
/// the same sink so their events interleave in one stream in commit
/// order. The default (disabled) sink carries no ring: `is_enabled()`
/// is a single `Option` discriminant test and [`TraceSink::emit`] never
/// even constructs the event, which keeps the disabled cost within the
/// <5% budget on the privilege-check hot path.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Rc<RefCell<EventRing>>>);

impl TraceSink {
    /// The disabled sink (records nothing, costs one branch).
    pub fn off() -> Self {
        TraceSink(None)
    }

    /// An enabled sink backed by a fresh ring of `cap` events.
    pub fn ring(cap: usize) -> Self {
        TraceSink(Some(Rc::new(RefCell::new(EventRing::new(cap)))))
    }

    /// Whether this sink records events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record the event built by `f`; `f` is not called when disabled.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(ring) = &self.0 {
            ring.borrow_mut().record(f());
        }
    }

    /// Tag subsequent events with a committed-instruction step.
    #[inline]
    pub fn set_step(&self, step: u64) {
        if let Some(ring) = &self.0 {
            ring.borrow_mut().set_step(step);
        }
    }

    /// Clone out the retained events, oldest first (empty if disabled).
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        self.0
            .as_ref()
            .map(|r| r.borrow().snapshot())
            .unwrap_or_default()
    }

    /// Events lost to ring overwriting.
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map(|r| r.borrow().dropped()).unwrap_or(0)
    }

    /// Total events ever recorded through this sink's ring.
    pub fn total_recorded(&self) -> u64 {
        self.0
            .as_ref()
            .map(|r| r.borrow().total_recorded())
            .unwrap_or(0)
    }

    /// Discard retained events, keeping the sink enabled.
    pub fn clear(&self) {
        if let Some(ring) = &self.0 {
            ring.borrow_mut().clear();
        }
    }
}

impl Tracer for TraceSink {
    fn enabled(&self) -> bool {
        self.is_enabled()
    }

    fn record(&mut self, event: TraceEvent) {
        self.emit(|| event);
    }

    fn set_step(&mut self, step: u64) {
        TraceSink::set_step(self, step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CacheKind;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::Trap {
            cause: n,
            pc: n * 4,
        }
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut r = EventRing::new(4);
        for i in 0..10 {
            r.set_step(i);
            r.record(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.total_recorded(), 10);
        // The survivors are the newest four, in order, with intact seq/step.
        let kept: Vec<u64> = r.events().map(|t| t.seq).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        for t in r.events() {
            assert_eq!(t.seq, t.step);
            assert_eq!(t.event, ev(t.seq));
        }
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = EventRing::new(0);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn disabled_sink_never_builds_events() {
        let sink = TraceSink::off();
        let mut built = false;
        sink.emit(|| {
            built = true;
            ev(0)
        });
        assert!(!built);
        assert!(!sink.is_enabled());
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn cloned_sinks_share_one_ring() {
        let a = TraceSink::ring(8);
        let b = a.clone();
        a.emit(|| ev(1));
        b.emit(|| TraceEvent::Cache {
            cache: CacheKind::Sgt,
            hit: true,
        });
        let evs = a.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
    }
}
