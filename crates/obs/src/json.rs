//! Hand-rolled JSON values — the offline build cannot fetch serde, so
//! this module provides the minimal encoder the report layer needs.

use std::fmt;

/// A JSON value. Object keys keep insertion order so reports are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values encode as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Render with two-space indentation for human consumption.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Parse a JSON document (the inverse of `to_string`). The parser
    /// exists so `grid-prof` can read saved profiles offline; it
    /// accepts standard JSON and rejects trailing garbage.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for other variants).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members of an object (`None` for other variants).
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string value (`None` for other variants).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64` (integers only; an integral `F64` counts).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            Json::F64(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value (`None` for other variants).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&format!("{}: ", Escaped(k)));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => {
                out.push_str(&other.to_string());
            }
        }
    }
}

/// Compact (single-line) JSON encoding.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::I64(n) => write!(f, "{n}"),
            Json::F64(x) if x.is_finite() => write!(f, "{x}"),
            Json::F64(_) => write!(f, "null"),
            Json::Str(s) => write!(f, "{}", Escaped(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Escaped(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A string rendered as a quoted, escaped JSON string literal.
struct Escaped<'a>(&'a str);

impl fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"")?;
        for c in self.0.chars() {
            match c {
                '"' => write!(f, "\\\"")?,
                '\\' => write!(f, "\\\\")?,
                '\n' => write!(f, "\\n")?,
                '\r' => write!(f, "\\r")?,
                '\t' => write!(f, "\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        write!(f, "\"")
    }
}

/// Recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let n = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| (*b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = s.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = s.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        s.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Types that can serialize themselves into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_encoding_escapes_and_orders() {
        let v = Json::obj([
            ("a", Json::U64(1)),
            ("b", Json::Str("x\"y\n".into())),
            ("c", Json::arr([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":"x\"y\n","c":[true,null]}"#);
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
    }

    #[test]
    fn parse_round_trips_compact_encoding() {
        let v = Json::obj([
            ("a", Json::U64(1)),
            ("b", Json::Str("x\"y\n\t\u{1}".into())),
            (
                "c",
                Json::arr([Json::Bool(true), Json::Null, Json::I64(-3)]),
            ),
            ("d", Json::F64(1.5)),
            ("big", Json::U64(u64::MAX)),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        let v = Json::parse(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aé😀b");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let v = Json::parse(r#"{"runs":[{"name":"fig5","cycles":42,"ok":true,"r":0.5}]}"#).unwrap();
        let run = &v.get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(run.get("name").unwrap().as_str(), Some("fig5"));
        assert_eq!(run.get("cycles").unwrap().as_u64(), Some(42));
        assert_eq!(run.get("r").unwrap().as_f64(), Some(0.5));
        assert_eq!(run.get("ok").unwrap().as_bool(), Some(true));
        assert!(run.get("missing").is_none());
    }

    #[test]
    fn pretty_is_parseable_shape() {
        let v = Json::obj([("k", Json::arr([Json::U64(1), Json::U64(2)]))]);
        let p = v.pretty();
        assert!(p.contains("\"k\": ["));
        assert!(p.ends_with('}'));
    }
}
