//! Hand-rolled JSON values — the offline build cannot fetch serde, so
//! this module provides the minimal encoder the report layer needs.

use std::fmt;

/// A JSON value. Object keys keep insertion order so reports are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values encode as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Render with two-space indentation for human consumption.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&format!("{}: ", Escaped(k)));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => {
                out.push_str(&other.to_string());
            }
        }
    }
}

/// Compact (single-line) JSON encoding.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::I64(n) => write!(f, "{n}"),
            Json::F64(x) if x.is_finite() => write!(f, "{x}"),
            Json::F64(_) => write!(f, "null"),
            Json::Str(s) => write!(f, "{}", Escaped(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Escaped(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A string rendered as a quoted, escaped JSON string literal.
struct Escaped<'a>(&'a str);

impl fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"")?;
        for c in self.0.chars() {
            match c {
                '"' => write!(f, "\\\"")?,
                '\\' => write!(f, "\\\\")?,
                '\n' => write!(f, "\\n")?,
                '\r' => write!(f, "\\r")?,
                '\t' => write!(f, "\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        write!(f, "\"")
    }
}

/// Types that can serialize themselves into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_encoding_escapes_and_orders() {
        let v = Json::obj([
            ("a", Json::U64(1)),
            ("b", Json::Str("x\"y\n".into())),
            ("c", Json::arr([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":"x\"y\n","c":[true,null]}"#);
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
    }

    #[test]
    fn pretty_is_parseable_shape() {
        let v = Json::obj([("k", Json::arr([Json::U64(1), Json::U64(2)]))]);
        let p = v.pretty();
        assert!(p.contains("\"k\": ["));
        assert!(p.ends_with('}'));
    }
}
