//! Preemptive (timer-driven) scheduling: involuntary context switches
//! must work under every kernel configuration — with the satp switch on
//! the preemption path routed through the MM domain's gates when
//! decomposed.

use isa_asm::Reg::*;
use simkernel::layout::sys;
use simkernel::{usr, KernelConfig, SimBuilder};

const STEPS: u64 = 20_000_000;

/// Task 0 busy-loops N times then exits with task 1's progress counter;
/// task 1 increments a shared memory counter forever. Without
/// preemption task 1 would never run.
fn two_hogs(n: u64) -> isa_asm::Program {
    let counter = usr::heap_base() + 0x100;
    let mut a = usr::program();
    a.li(S5, n);
    a.label("spin0");
    a.addi(S5, S5, -1);
    a.bnez(S5, "spin0");
    a.li(T0, counter);
    a.ld(A0, T0, 0); // task 1's progress
    usr::syscall(&mut a, sys::EXIT);
    a.label("task1");
    a.li(T0, counter);
    a.label("spin1");
    a.ld(T1, T0, 0);
    a.addi(T1, T1, 1);
    a.sd(T1, T0, 0);
    a.j("spin1");
    a.assemble().unwrap()
}

#[test]
fn timer_preemption_interleaves_cpu_hogs() {
    for cfg in [
        KernelConfig::native().with_preempt(),
        KernelConfig::decomposed().with_preempt(),
        KernelConfig::nested(false).with_preempt(),
    ] {
        let prog = two_hogs(50_000);
        let mut sim = SimBuilder::new(cfg)
            .timer_every(2000)
            .boot(&prog, Some("task1"));
        let progress = sim.run_to_halt(STEPS).unwrap();
        assert!(
            progress > 1000,
            "{cfg:?}: task 1 starved (progress {progress})"
        );
    }
}

#[test]
fn decomposed_preemption_crosses_the_mm_domain() {
    let prog = two_hogs(20_000);
    let mut sim = SimBuilder::new(KernelConfig::decomposed().with_preempt())
        .timer_every(1000)
        .boot(&prog, Some("task1"));
    sim.run_to_halt(STEPS).unwrap();
    // Each preemption takes the PREEMPT_IN/OUT hccall pair.
    assert!(
        sim.machine.ext.stats.gate_calls > 20,
        "gates: {}",
        sim.machine.ext.stats.gate_calls
    );
    assert_eq!(sim.machine.ext.stats.faults, 0);
    assert_eq!(
        sim.machine.ext.current_domain().0,
        1,
        "back in the kernel domain"
    );
}

#[test]
fn single_task_preemption_resumes_the_same_task() {
    let mut a = usr::program();
    a.li(S5, 30_000);
    a.label("spin");
    a.addi(S5, S5, -1);
    a.bnez(S5, "spin");
    usr::exit_code(&mut a, 7);
    let prog = a.assemble().unwrap();
    let mut sim = SimBuilder::new(KernelConfig::decomposed().with_preempt())
        .timer_every(500)
        .boot(&prog, None);
    assert_eq!(sim.run_to_halt(STEPS).unwrap(), 7);
    assert!(sim.machine.trap_counts.len() >= 2, "timer traps were taken");
}

#[test]
fn preemption_preserves_task_state_exactly() {
    // A checksum loop must compute the same value with and without
    // aggressive preemption: involuntary switches are transparent.
    let build = || {
        let mut a = usr::program();
        a.li(S5, 0);
        a.li(S6, 0x1234_5678_9abc_def0u64);
        a.li(S7, 5000);
        a.label("loop");
        a.mul(S6, S6, S6);
        a.addi(S6, S6, 13);
        a.xor(S5, S5, S6);
        a.addi(S7, S7, -1);
        a.bnez(S7, "loop");
        a.andi(A0, S5, 0x7ff);
        usr::syscall(&mut a, sys::EXIT);
        a.label("task1");
        a.label("t1spin");
        a.j("t1spin");
        a.assemble().unwrap()
    };
    let prog = build();
    let mut quiet =
        SimBuilder::new(KernelConfig::decomposed().with_preempt()).boot(&prog, Some("task1"));
    let want = quiet.run_to_halt(STEPS).unwrap();
    let mut noisy = SimBuilder::new(KernelConfig::decomposed().with_preempt())
        .timer_every(137)
        .boot(&prog, Some("task1"));
    assert_eq!(
        noisy.run_to_halt(STEPS).unwrap(),
        want,
        "state corrupted by preemption"
    );
}

#[test]
fn non_preempt_kernel_masks_the_timer_safely() {
    let mut a = usr::program();
    a.label("spin");
    a.j("spin");
    let prog = a.assemble().unwrap();
    // Kernel built WITHOUT preempt support while the timer device fires:
    // the interrupt stays masked (mie.STIE clear) and execution simply
    // continues — pending-but-disabled interrupts are a no-op.
    let mut sim = SimBuilder::new(KernelConfig::decomposed())
        .timer_every(500)
        .boot(&prog, None);
    let exit = sim.machine.run(100_000);
    assert_eq!(exit, isa_sim::Exit::StepLimit, "no halt, no trap storm");
    assert_eq!(sim.machine.ext.stats.faults, 0);
    assert!(
        sim.machine.trap_counts.is_empty(),
        "no interrupt was ever taken"
    );
}
