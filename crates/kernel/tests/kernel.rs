//! End-to-end kernel tests: user programs exercising every syscall on
//! every kernel configuration.

use isa_asm::Reg::*;
use isa_sim::Exception;
use simkernel::layout::{exit, sys, vuln_op};
use simkernel::{usr, KernelConfig, Platform, Sim, SimBuilder};

const STEPS: u64 = 5_000_000;

fn all_configs() -> Vec<KernelConfig> {
    vec![
        KernelConfig::native(),
        KernelConfig::native().with_pti(),
        KernelConfig::decomposed(),
        KernelConfig::decomposed().with_pti(),
        KernelConfig::nested(false),
        KernelConfig::nested(true),
    ]
}

fn boot(cfg: KernelConfig, user: &isa_asm::Program) -> Sim {
    SimBuilder::new(cfg).boot(user, None)
}

#[test]
fn getpid_returns_zero_everywhere() {
    let mut a = usr::program();
    usr::syscall(&mut a, sys::GETPID);
    a.addi(A0, A0, 7);
    usr::syscall(&mut a, sys::EXIT);
    let user = a.assemble().unwrap();
    for cfg in all_configs() {
        let mut sim = boot(cfg, &user);
        assert_eq!(sim.run_to_halt(STEPS).unwrap(), 7, "{cfg:?}");
    }
}

#[test]
fn read_from_dev_zero_fills_buffer() {
    let mut a = usr::program();
    // Poison the buffer, read 64 zero bytes over it, then sum it.
    let buf = usr::heap_base();
    a.li(T0, buf);
    a.li(T1, 0xff);
    for i in 0..64 {
        a.sb(T1, T0, i);
    }
    a.li(A0, 0); // path 0 = zero device
    usr::syscall(&mut a, sys::OPEN);
    a.mv(S5, A0); // fd
    a.mv(A0, S5);
    a.li(A1, buf);
    a.li(A2, 64);
    usr::syscall(&mut a, sys::READ);
    a.mv(S6, A0); // n = 64
    a.li(T0, buf);
    a.li(S7, 0);
    for i in 0..64 {
        a.lbu(T1, T0, i);
        a.add(S7, S7, T1);
    }
    // exit with n + sum (should be 64 + 0).
    a.add(A0, S6, S7);
    usr::syscall(&mut a, sys::EXIT);
    let user = a.assemble().unwrap();
    for cfg in all_configs() {
        let mut sim = boot(cfg, &user);
        assert_eq!(sim.run_to_halt(STEPS).unwrap(), 64, "{cfg:?}");
    }
}

#[test]
fn file_write_then_read_roundtrip() {
    let mut a = usr::program();
    let buf = usr::heap_base();
    // Fill a pattern.
    a.li(T0, buf);
    for i in 0..16 {
        a.li(T1, (i * 3 + 1) as u64);
        a.sb(T1, T0, i);
    }
    // open file (path 2), write 16 bytes, close, reopen, read back.
    a.li(A0, 2);
    usr::syscall(&mut a, sys::OPEN);
    a.mv(S5, A0);
    a.mv(A0, S5);
    a.li(A1, buf);
    a.li(A2, 16);
    usr::syscall(&mut a, sys::WRITE);
    a.mv(A0, S5);
    usr::syscall(&mut a, sys::CLOSE);
    a.li(A0, 2);
    usr::syscall(&mut a, sys::OPEN);
    a.mv(S5, A0);
    a.mv(A0, S5);
    a.li(A1, buf + 0x100);
    a.li(A2, 16);
    usr::syscall(&mut a, sys::READ);
    // Compare.
    a.li(T0, buf);
    a.li(T1, buf + 0x100);
    a.li(S7, 0);
    for i in 0..16 {
        a.lbu(T2, T0, i);
        a.lbu(T3, T1, i);
        a.xor(T2, T2, T3);
        a.or(S7, S7, T2);
    }
    usr::exit_with(&mut a, S7); // 0 = identical
    let user = a.assemble().unwrap();
    for cfg in all_configs() {
        let mut sim = boot(cfg, &user);
        assert_eq!(sim.run_to_halt(STEPS).unwrap(), 0, "{cfg:?}");
    }
}

#[test]
fn write_to_console_lands_on_uart() {
    let mut a = usr::program();
    let buf = usr::heap_base();
    a.li(T0, buf);
    for (i, b) in b"hello".iter().enumerate() {
        a.li(T1, *b as u64);
        a.sb(T1, T0, i as i32);
    }
    a.li(A0, 1); // stdout
    a.li(A1, buf);
    a.li(A2, 5);
    usr::syscall(&mut a, sys::WRITE);
    usr::exit_with(&mut a, A0);
    let user = a.assemble().unwrap();
    let mut sim = boot(KernelConfig::decomposed(), &user);
    assert_eq!(sim.run_to_halt(STEPS).unwrap(), 5);
    assert_eq!(sim.console(), "hello");
}

#[test]
fn stat_and_fstat_report_file_metadata() {
    let mut a = usr::program();
    let buf = usr::heap_base();
    a.li(A0, 2);
    a.li(A1, buf);
    usr::syscall(&mut a, sys::STAT);
    a.li(T0, buf);
    a.ld(S5, T0, 0); // size = FILE_STRIDE
    a.li(A0, 2);
    usr::syscall(&mut a, sys::OPEN);
    a.li(A1, buf + 64);
    usr::syscall(&mut a, sys::FSTAT);
    a.li(T0, buf + 64);
    a.ld(S6, T0, 0);
    a.xor(A0, S5, S6); // both sizes equal -> 0... then add size>>12 = 16
    a.srli(S5, S5, 12);
    a.add(A0, A0, S5);
    usr::syscall(&mut a, sys::EXIT);
    let user = a.assemble().unwrap();
    let mut sim = boot(KernelConfig::decomposed(), &user);
    assert_eq!(sim.run_to_halt(STEPS).unwrap(), 16); // 64 KiB >> 12
}

#[test]
fn pipe_roundtrip_single_task() {
    let mut a = usr::program();
    let buf = usr::heap_base();
    a.li(A0, 0); // pipe A
    usr::syscall(&mut a, sys::PIPE);
    // a0 = (rd << 8) | wr
    a.andi(S5, A0, 0xff); // wr fd
    a.srli(S6, A0, 8); // rd fd
                       // write 3 bytes
    a.li(T0, buf);
    a.li(T1, 0xAB);
    a.sb(T1, T0, 0);
    a.li(T1, 0xCD);
    a.sb(T1, T0, 1);
    a.li(T1, 0xEF);
    a.sb(T1, T0, 2);
    a.mv(A0, S5);
    a.li(A1, buf);
    a.li(A2, 3);
    usr::syscall(&mut a, sys::WRITE);
    // read them back
    a.mv(A0, S6);
    a.li(A1, buf + 16);
    a.li(A2, 8); // ask for more than available
    usr::syscall(&mut a, sys::READ);
    a.mv(S7, A0); // must be 3
    a.li(T0, buf + 16);
    a.lbu(T1, T0, 2);
    // exit with n*256 + last byte = 3*256 + 0xEF
    a.slli(S7, S7, 8);
    a.or(A0, S7, T1);
    usr::syscall(&mut a, sys::EXIT);
    let user = a.assemble().unwrap();
    for cfg in [KernelConfig::native(), KernelConfig::decomposed()] {
        let mut sim = boot(cfg, &user);
        assert_eq!(sim.run_to_halt(STEPS).unwrap(), (3 << 8) | 0xEF, "{cfg:?}");
    }
}

#[test]
fn empty_pipe_read_is_nonblocking() {
    let mut a = usr::program();
    a.li(A0, 1); // pipe B
    usr::syscall(&mut a, sys::PIPE);
    a.srli(S6, A0, 8);
    a.mv(A0, S6);
    a.li(A1, usr::heap_base());
    a.li(A2, 4);
    usr::syscall(&mut a, sys::READ);
    a.addi(A0, A0, 100);
    usr::syscall(&mut a, sys::EXIT);
    let user = a.assemble().unwrap();
    let mut sim = boot(KernelConfig::decomposed(), &user);
    assert_eq!(
        sim.run_to_halt(STEPS).unwrap(),
        100,
        "read of empty pipe returns 0"
    );
}

#[test]
fn signals_deliver_and_return() {
    let mut a = usr::program();
    // handler: s5 += 10, sigreturn.
    a.la(T0, "handler");
    a.mv(A0, T0);
    usr::syscall(&mut a, sys::SIGACTION);
    a.li(S5, 1);
    usr::syscall(&mut a, sys::RAISE);
    // Signal fires on this return; handler bumps s5 and resumes here.
    a.addi(S5, S5, 100);
    usr::exit_with(&mut a, S5); // 1 + 10 + 100
    a.label("handler");
    a.addi(S5, S5, 10);
    usr::syscall(&mut a, sys::SIGRETURN);
    a.label("handler_hang"); // sigreturn resumes elsewhere
    a.j("handler_hang");
    let user = a.assemble().unwrap();
    for cfg in all_configs() {
        let mut sim = boot(cfg, &user);
        assert_eq!(sim.run_to_halt(STEPS).unwrap(), 111, "{cfg:?}");
    }
}

#[test]
fn yield_is_a_noop_without_second_task() {
    let mut a = usr::program();
    usr::syscall(&mut a, sys::YIELD);
    a.addi(A0, A0, 5);
    usr::syscall(&mut a, sys::EXIT);
    let user = a.assemble().unwrap();
    let mut sim = boot(KernelConfig::decomposed(), &user);
    assert_eq!(sim.run_to_halt(STEPS).unwrap(), 5);
}

#[test]
fn two_tasks_ping_pong_through_pipes() {
    // Task 0 sends a byte through pipe A; task 1 increments it and sends
    // it back through pipe B; 8 rounds.
    let mut a = usr::program();
    let buf = usr::heap_base();
    // main: create both pipes (fds are global: 8/9 and 10/11).
    a.li(A0, 0);
    usr::syscall(&mut a, sys::PIPE);
    a.li(A0, 1);
    usr::syscall(&mut a, sys::PIPE);
    a.li(S5, 0); // value
    a.li(S6, 8); // rounds
    a.label("t0_loop");
    // send value via pipe A (wr fd 9)
    a.li(T0, buf);
    a.sb(S5, T0, 0);
    a.li(A0, 9);
    a.li(A1, buf);
    a.li(A2, 1);
    usr::syscall(&mut a, sys::WRITE);
    // receive from pipe B (rd fd 10)
    a.label("t0_recv");
    a.li(A0, 10);
    a.li(A1, buf + 8);
    a.li(A2, 1);
    usr::syscall(&mut a, sys::READ);
    a.bnez(A0, "t0_got");
    usr::syscall(&mut a, sys::YIELD);
    a.j("t0_recv");
    a.label("t0_got");
    a.li(T0, buf + 8);
    a.lbu(S5, T0, 0);
    a.addi(S6, S6, -1);
    a.bnez(S6, "t0_loop");
    usr::exit_with(&mut a, S5); // 8 increments
                                // task 1: echo+1 loop forever.
    a.label("task1");
    a.label("t1_recv");
    a.li(A0, 8); // pipe A rd
    a.li(A1, buf + 16);
    a.li(A2, 1);
    usr::syscall(&mut a, sys::READ);
    a.bnez(A0, "t1_got");
    usr::syscall(&mut a, sys::YIELD);
    a.j("t1_recv");
    a.label("t1_got");
    a.li(T0, buf + 16);
    a.lbu(T1, T0, 0);
    a.addi(T1, T1, 1);
    a.sb(T1, T0, 0);
    a.li(A0, 11); // pipe B wr
    a.li(A1, buf + 16);
    a.li(A2, 1);
    usr::syscall(&mut a, sys::WRITE);
    a.j("t1_recv");
    let user = a.assemble().unwrap();
    for cfg in all_configs() {
        let mut sim = SimBuilder::new(cfg).boot(&user, Some("task1"));
        assert_eq!(sim.run_to_halt(STEPS).unwrap(), 8, "{cfg:?}");
    }
}

#[test]
fn ioctl_services_return_consistently() {
    // Each service must return the same value under the native and the
    // decomposed kernel (the domains change, not the semantics).
    let mut results = Vec::new();
    for cfg in [KernelConfig::native(), KernelConfig::decomposed()] {
        let mut per_cfg = Vec::new();
        for svc in 0..4u64 {
            let mut a = usr::program();
            a.li(A0, svc);
            a.li(A1, 0);
            usr::syscall(&mut a, sys::IOCTL);
            usr::report(&mut a, A0);
            usr::exit_code(&mut a, 0);
            let user = a.assemble().unwrap();
            let mut sim = boot(cfg, &user);
            sim.run_to_halt(STEPS).unwrap();
            per_cfg.push(sim.values()[0]);
        }
        results.push(per_cfg);
    }
    // Services 0/1 read static identification CSRs: identical results.
    // Services 2/3 read live performance counters, whose values depend on
    // how much the kernel itself ran — only require them to respond.
    assert_eq!(results[0][..2], results[1][..2], "static service results");
    assert!(results.iter().all(|r| r.len() == 4));
}

#[test]
fn mapctl_updates_scratch_mapping_in_all_modes() {
    use isa_sim::mmu::pte;
    // Remap scratch page 0, then touch it: changing the PTE to point at
    // a different frame must change what the user reads.
    let mut a = usr::program();
    let scratch = simkernel::layout::SCRATCH_PAGES;
    // First: write marker 0x11 via the identity mapping.
    a.li(T0, scratch);
    a.li(T1, 0x11);
    a.sb(T1, T0, 0);
    // Remap page 0 -> frame of page 1.
    a.li(A0, 0);
    let new_pte =
        ((scratch + 4096) >> 12 << 10) | pte::V | pte::R | pte::W | pte::U | pte::A | pte::D;
    a.li(A1, new_pte);
    usr::syscall(&mut a, sys::MAPCTL);
    // Write 0x22 through the *new* mapping of page 0 (hits frame 1).
    a.li(T0, scratch);
    a.li(T1, 0x22);
    a.sb(T1, T0, 8);
    // Map back and verify frame 0 still holds 0x11 at offset 0.
    a.li(A0, 0);
    let orig_pte = (scratch >> 12 << 10) | pte::V | pte::R | pte::W | pte::U | pte::A | pte::D;
    a.li(A1, orig_pte);
    usr::syscall(&mut a, sys::MAPCTL);
    a.li(T0, scratch);
    a.lbu(S5, T0, 0); // 0x11
    a.lbu(S6, T0, 8); // 0 (the 0x22 went to frame 1)
    a.slli(S6, S6, 8);
    a.or(A0, S5, S6);
    usr::syscall(&mut a, sys::EXIT);
    let user = a.assemble().unwrap();
    for cfg in [
        KernelConfig::native(),
        KernelConfig::decomposed(),
        KernelConfig::nested(false),
        KernelConfig::nested(true),
    ] {
        let mut sim = boot(cfg, &user);
        assert_eq!(sim.run_to_halt(STEPS).unwrap(), 0x11, "{cfg:?}");
    }
}

#[test]
fn nested_log_records_mapping_changes() {
    use isa_sim::mmu::pte;
    let mut a = usr::program();
    let scratch = simkernel::layout::SCRATCH_PAGES;
    let the_pte = (scratch >> 12 << 10) | pte::V | pte::R | pte::W | pte::U | pte::A | pte::D;
    for i in 0..3 {
        a.li(A0, i);
        a.li(A1, the_pte + (i << 10)); // distinct values
        usr::syscall(&mut a, sys::MAPCTL);
    }
    usr::exit_code(&mut a, 0);
    let user = a.assemble().unwrap();
    let mut sim = boot(KernelConfig::nested(true), &user);
    sim.run_to_halt(STEPS).unwrap();
    let cursor = sim.machine.bus.read_u64(simkernel::layout::MONLOG);
    assert_eq!(cursor, 3, "three mapping changes logged");

    // Without logging the cursor stays zero.
    let mut sim = boot(KernelConfig::nested(false), &user);
    sim.run_to_halt(STEPS).unwrap();
    assert_eq!(sim.machine.bus.read_u64(simkernel::layout::MONLOG), 0);
}

#[test]
fn outer_kernel_cannot_write_page_tables_directly_in_nested_mode() {
    // The WP range must block a direct PTE store from the (compromised)
    // outer kernel. The vuln gadget for wpctl is tested separately; here
    // we check the memory fence itself via a store access fault.
    let mut a = usr::program();
    // Try to store to the PT pool from user mode: S pages, so a page
    // fault -> kernel panic exit.
    a.li(T0, simkernel::layout::PT_POOL);
    a.sd(Zero, T0, 0);
    usr::exit_code(&mut a, 1);
    let user = a.assemble().unwrap();
    let mut sim = boot(KernelConfig::nested(false), &user);
    let code = sim.run_to_halt(STEPS).unwrap();
    assert_eq!(code, exit::PANIC | 15, "store page fault panics the kernel");
}

#[test]
fn vuln_gadgets_succeed_natively_and_fault_when_decomposed() {
    for op in 0..vuln_op::COUNT {
        let mut a = usr::program();
        a.li(A0, op);
        usr::syscall(&mut a, sys::VULN);
        a.addi(A0, A0, 50);
        usr::syscall(&mut a, sys::EXIT);
        let user = a.assemble().unwrap();

        // Native: the "attack" goes through (returns 0).
        let mut sim = boot(KernelConfig::native(), &user);
        assert_eq!(sim.run_to_halt(STEPS).unwrap(), 50, "native op {op}");

        // Decomposed (with the rdtsc restriction on): every gadget hits
        // an ISA-Grid fault and domain-0 panics the machine.
        let mut cfg = KernelConfig::decomposed();
        cfg.deny_cycle = true;
        let mut sim = boot(cfg, &user);
        let code = sim.run_to_halt(STEPS).unwrap();
        assert_eq!(
            code & !0xff,
            exit::GRID_FAULT & !0xff,
            "decomposed op {op} must hit a grid fault, got {code:#x}"
        );
        let cause = code & 0xff;
        assert!(
            cause == Exception::CAUSE_GRID_CSR || cause == Exception::CAUSE_GRID_INST,
            "op {op}: cause {cause}"
        );
    }
}

#[test]
fn pti_kernel_still_runs_syscalls() {
    let mut a = usr::program();
    usr::repeat(&mut a, 50, "l", |a| {
        usr::syscall(a, sys::GETPID);
    });
    usr::exit_code(&mut a, 9);
    let user = a.assemble().unwrap();
    for cfg in [
        KernelConfig::native().with_pti(),
        KernelConfig::decomposed().with_pti(),
    ] {
        let mut sim = boot(cfg, &user);
        assert_eq!(sim.run_to_halt(STEPS).unwrap(), 9, "{cfg:?}");
    }
}

#[test]
fn timing_platforms_boot_and_charge_cycles() {
    let mut a = usr::program();
    usr::repeat(&mut a, 100, "l", |a| {
        usr::syscall(a, sys::GETPID);
    });
    usr::exit_code(&mut a, 0);
    let user = a.assemble().unwrap();
    for platform in [Platform::Rocket, Platform::O3] {
        let mut sim = SimBuilder::new(KernelConfig::decomposed())
            .platform(platform)
            .boot(&user, None);
        sim.run_to_halt(STEPS).unwrap();
        assert!(sim.cycles() > 1000, "{platform:?}: {}", sim.cycles());
    }
}

#[test]
fn decomposed_kernel_blocks_user_grid_probing() {
    // User code trying to read the hidden grid base registers must die
    // with an ISA-Grid CSR fault (cause 25), not read anything.
    let mut a = usr::program();
    a.csrr(T0, isa_sim::csr::addr::GRID_TMEMB as u32);
    usr::exit_code(&mut a, 1);
    let user = a.assemble().unwrap();
    let mut sim = boot(KernelConfig::decomposed(), &user);
    let code = sim.run_to_halt(STEPS).unwrap();
    // The architectural privilege check fires first for U-mode code
    // (grid CSRs are supervisor addresses): illegal instruction, which
    // the kernel turns into a panic. Either way, nothing leaks.
    assert_eq!(code, exit::PANIC | 2);
}
