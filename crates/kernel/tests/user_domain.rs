//! §8 "Extending to User Space": user code runs in its own ISA domain,
//! entered/left through in-place gates on the trap paths.

use isa_sim::Exception;
use simkernel::layout::{exit, sys};
use simkernel::{usr, KernelConfig, SimBuilder};

const STEPS: u64 = 20_000_000;

#[test]
fn syscalls_work_across_the_user_domain_boundary() {
    let mut a = usr::program();
    usr::repeat(&mut a, 10, "l", |a| {
        usr::syscall(a, sys::GETPID);
    });
    usr::exit_code(&mut a, 3);
    let prog = a.assemble().unwrap();
    let mut sim = SimBuilder::new(KernelConfig::decomposed().with_user_domain()).boot(&prog, None);
    assert_eq!(sim.run_to_halt(STEPS).unwrap(), 3);
    // Boot gate + (U2K + K2U) per kernel crossing; 11 syscalls at least.
    let calls = sim.machine.ext.stats.gate_calls;
    assert!(calls > 2 * 10, "gate calls: {calls}");
    assert_eq!(sim.machine.ext.stats.faults, 0);
}

#[test]
fn user_rdcycle_allowed_by_default() {
    let mut a = usr::program();
    usr::measure_start(&mut a);
    usr::repeat(&mut a, 16, "l", |a| {
        a.nop();
    });
    usr::measure_end_report(&mut a);
    usr::exit_code(&mut a, 0);
    let prog = a.assemble().unwrap();
    let mut sim = SimBuilder::new(KernelConfig::decomposed().with_user_domain()).boot(&prog, None);
    assert_eq!(sim.run_to_halt(STEPS).unwrap(), 0);
    assert!(sim.values()[0] >= 16);
}

#[test]
fn per_process_rdtsc_restriction_blocks_user_rdcycle() {
    // The §2.2 timing-side-channel mitigation, applied to one process:
    // deny the user domain the cycle counter while the kernel keeps it.
    let mut a = usr::program();
    a.rdcycle(isa_asm::Reg::T0);
    usr::exit_code(&mut a, 1);
    let prog = a.assemble().unwrap();
    let mut cfg = KernelConfig::decomposed().with_user_domain();
    cfg.deny_user_cycle = true;
    let mut sim = SimBuilder::new(cfg).boot(&prog, None);
    let code = sim.run_to_halt(STEPS).unwrap();
    assert_eq!(code, exit::GRID_FAULT | Exception::CAUSE_GRID_CSR);
}

#[test]
fn kernel_keeps_the_cycle_counter_when_the_user_loses_it() {
    // Same restriction, but the measurement happens kernel-side via an
    // ioctl service — the privilege is per-domain, not global.
    let mut a = usr::program();
    a.li(isa_asm::Reg::A0, 2); // PMC service reads hpmcounter3
    a.li(isa_asm::Reg::A1, 0);
    usr::syscall(&mut a, sys::IOCTL);
    usr::exit_code(&mut a, 0);
    let prog = a.assemble().unwrap();
    let mut cfg = KernelConfig::decomposed().with_user_domain();
    cfg.deny_user_cycle = true;
    let mut sim = SimBuilder::new(cfg).boot(&prog, None);
    assert_eq!(sim.run_to_halt(STEPS).unwrap(), 0);
}

#[test]
fn signals_and_tasks_survive_user_domains() {
    let mut a = usr::program();
    a.la(isa_asm::Reg::T0, "handler");
    a.mv(isa_asm::Reg::A0, isa_asm::Reg::T0);
    usr::syscall(&mut a, sys::SIGACTION);
    a.li(isa_asm::Reg::S5, 1);
    usr::syscall(&mut a, sys::RAISE);
    a.addi(isa_asm::Reg::S5, isa_asm::Reg::S5, 100);
    usr::syscall(&mut a, sys::YIELD);
    usr::exit_with(&mut a, isa_asm::Reg::S5);
    a.label("handler");
    a.addi(isa_asm::Reg::S5, isa_asm::Reg::S5, 10);
    usr::syscall(&mut a, sys::SIGRETURN);
    a.label("t1");
    a.label("t1loop");
    usr::syscall(&mut a, sys::YIELD);
    a.j("t1loop");
    let prog = a.assemble().unwrap();
    let mut sim =
        SimBuilder::new(KernelConfig::decomposed().with_user_domain()).boot(&prog, Some("t1"));
    assert_eq!(sim.run_to_halt(STEPS).unwrap(), 111);
}

#[test]
fn user_domain_composes_with_preemption() {
    let counter = usr::heap_base() + 0x100;
    let mut a = usr::program();
    a.li(isa_asm::Reg::S5, 20_000);
    a.label("spin0");
    a.addi(isa_asm::Reg::S5, isa_asm::Reg::S5, -1);
    a.bnez(isa_asm::Reg::S5, "spin0");
    a.li(isa_asm::Reg::T0, counter);
    a.ld(isa_asm::Reg::A0, isa_asm::Reg::T0, 0);
    usr::syscall(&mut a, sys::EXIT);
    a.label("task1");
    a.li(isa_asm::Reg::T0, counter);
    a.label("spin1");
    a.ld(isa_asm::Reg::T1, isa_asm::Reg::T0, 0);
    a.addi(isa_asm::Reg::T1, isa_asm::Reg::T1, 1);
    a.sd(isa_asm::Reg::T1, isa_asm::Reg::T0, 0);
    a.j("spin1");
    let prog = a.assemble().unwrap();
    let mut sim = SimBuilder::new(KernelConfig::decomposed().with_user_domain().with_preempt())
        .timer_every(1500)
        .boot(&prog, Some("task1"));
    let progress = sim.run_to_halt(STEPS).unwrap();
    assert!(progress > 500, "task 1 starved: {progress}");
    assert_eq!(sim.machine.ext.stats.faults, 0);
}

#[test]
fn native_kernel_ignores_the_user_domain_flag() {
    // Without ISA-Grid there are no domains to separate; the flag is
    // inert rather than an error.
    let mut a = usr::program();
    usr::syscall(&mut a, sys::GETPID);
    usr::exit_code(&mut a, 9);
    let prog = a.assemble().unwrap();
    let mut sim = SimBuilder::new(KernelConfig::native().with_user_domain()).boot(&prog, None);
    assert_eq!(sim.run_to_halt(STEPS).unwrap(), 9);
}
