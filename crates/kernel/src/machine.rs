//! Host-side boot: build the kernel, the page tables and the ISA-Grid
//! configuration, and return a ready-to-run machine.
//!
//! The host code in this module plays the role the paper assigns to
//! domain-0 software at system boot (§5.2): it writes the HPT/SGT into
//! trusted memory and registers the kernel's domains and gates before the
//! first instruction runs.

use isa_asm::Program;
use isa_fault::FaultPlan;
use isa_grid::{DomainId, DomainSpec, GateSpec, GridLayout, Pcu, PcuConfig};
use isa_sim::csr::{addr, mstatus};
use isa_sim::mmu::{pte, PageTableBuilder};
use isa_sim::{Kind, Machine, RunError};
use isa_timing::{PipelineModel, TimingConfig};

use crate::config::{KernelConfig, Mode, Role};
use crate::image::{build_kernel, KernelImage};
use crate::layout::{self, fd, params, task};

/// Which timing model drives the cycle counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Platform {
    /// 1 cycle per instruction (fast functional runs).
    #[default]
    Functional,
    /// The in-order Rocket-like platform (paper's RISC-V prototype).
    Rocket,
    /// The out-of-order Gem5-like platform (paper's x86 prototype).
    O3,
}

impl Platform {
    /// The timing configuration, if any.
    pub fn timing(self) -> Option<TimingConfig> {
        match self {
            Platform::Functional => None,
            Platform::Rocket => Some(TimingConfig::rocket()),
            Platform::O3 => Some(TimingConfig::o3()),
        }
    }
}

/// Builder for a booted simulation.
#[derive(Debug, Clone)]
pub struct SimBuilder {
    /// Kernel configuration.
    pub kernel: KernelConfig,
    /// PCU cache configuration.
    pub pcu: PcuConfig,
    /// Timing platform.
    pub platform: Platform,
    /// Raise the supervisor timer interrupt every `n` steps (requires a
    /// kernel built with `preempt`).
    pub timer_every: Option<u64>,
    /// Capacity of the trace-event ring; `None` disables tracing.
    pub trace_events: Option<usize>,
    /// Harts on the shared bus. The booted [`Sim`] is hart 0; extra
    /// harts are minted as workers by [`crate::smp::boot_smp`].
    pub harts: usize,
    /// Enable the predecoded basic-block cache (default true). Turned
    /// off by the bench binaries' `--no-bbcache` escape hatch and by
    /// differential tests that want the uncached reference interpreter.
    pub bbcache: bool,
    /// Enable the superblock JIT over the bbcache (default true; inert
    /// when `bbcache` is off). Turned off by the bench binaries'
    /// `--no-jit` escape hatch and by differential tests that want the
    /// per-instruction dispatch loop.
    pub jit: bool,
    /// Attach a cycle-attribution profiler to the machine (default
    /// false). Profiling observes committed steps only and never adds
    /// modeled cycles.
    pub profile: bool,
    /// Seed for the deterministic chaos harness; `None` (the default)
    /// injects nothing. Each hart derives an independent sub-stream
    /// from this one seed.
    pub fault_seed: Option<u64>,
    /// Fault rate in faults per million committed instructions
    /// (ignored unless a seed is set).
    pub fault_rate_ppm: u64,
}

/// Commit horizon for generated fault plans: injections are scheduled
/// over the first this-many commits of each hart (bench budgets sit
/// well under it; a longer run simply sees no further injections).
pub const FAULT_HORIZON: u64 = 10_000_000;

impl SimBuilder {
    /// A builder for the given kernel configuration (8-entry PCU caches,
    /// functional timing).
    pub fn new(kernel: KernelConfig) -> SimBuilder {
        SimBuilder {
            kernel,
            pcu: PcuConfig::eight_e(),
            platform: Platform::Functional,
            timer_every: None,
            trace_events: None,
            harts: 1,
            bbcache: true,
            jit: true,
            profile: false,
            fault_seed: None,
            fault_rate_ppm: 0,
        }
    }

    /// Put `n` harts on the shared bus (default 1).
    pub fn harts(mut self, n: usize) -> SimBuilder {
        self.harts = n;
        self
    }

    /// Enable or disable the predecoded basic-block cache.
    pub fn bbcache(mut self, on: bool) -> SimBuilder {
        self.bbcache = on;
        self
    }

    /// Enable or disable the superblock JIT (inert without the bbcache).
    pub fn jit(mut self, on: bool) -> SimBuilder {
        self.jit = on;
        self
    }

    /// Select the timing platform.
    pub fn platform(mut self, p: Platform) -> SimBuilder {
        self.platform = p;
        self
    }

    /// Select the PCU cache configuration.
    pub fn pcu(mut self, c: PcuConfig) -> SimBuilder {
        self.pcu = c;
        self
    }

    /// Fire the timer every `n` executed instructions.
    pub fn timer_every(mut self, n: u64) -> SimBuilder {
        self.timer_every = Some(n);
        self
    }

    /// Record structured trace events into a bounded ring of `cap`
    /// entries. The machine and the PCU share one sink, so retire,
    /// check, cache and gate events interleave in commit order.
    pub fn trace_events(mut self, cap: usize) -> SimBuilder {
        self.trace_events = Some(cap);
        self
    }

    /// Enable or disable the per-step profiler (cycle attribution by
    /// domain and privilege level, latency histograms, span timeline).
    pub fn profile(mut self, on: bool) -> SimBuilder {
        self.profile = on;
        self
    }

    /// Attach the deterministic chaos harness: inject faults from this
    /// seed at the configured [`SimBuilder::fault_rate`].
    pub fn fault_seed(mut self, seed: u64) -> SimBuilder {
        self.fault_seed = Some(seed);
        self
    }

    /// Fault rate in faults per million committed instructions.
    pub fn fault_rate(mut self, ppm: u64) -> SimBuilder {
        self.fault_rate_ppm = ppm;
        self
    }

    /// Enable or disable the PCU's fail-closed integrity layer
    /// (default on). Off demonstrates the unprotected stale-allow
    /// window the layer closes.
    pub fn integrity(mut self, on: bool) -> SimBuilder {
        self.pcu.integrity = on;
        self
    }

    /// Boot a machine running `user` as task 0; `entry2` names the label
    /// (in `user`) where a second task starts, if any.
    ///
    /// # Panics
    ///
    /// Panics on malformed user programs (must load inside the user
    /// region).
    pub fn boot(&self, user: &Program, entry2: Option<&str>) -> Sim {
        let img = build_kernel(&self.kernel);
        let bus = isa_sim::Bus::with_harts(
            isa_sim::DEFAULT_RAM_BASE,
            isa_sim::DEFAULT_RAM_SIZE,
            self.harts,
        );
        let mut m = Machine::on_bus(Pcu::new(self.pcu), bus);
        m.set_bbcache(self.bbcache);
        m.set_jit(self.jit);
        m.timer_every = self.timer_every;
        if let Some(cap) = self.trace_events {
            let sink = isa_obs::TraceSink::ring(cap);
            m.set_tracer(sink.clone());
            m.ext.set_tracer(sink);
        }
        if self.profile {
            m.set_profiler(isa_obs::ProfSink::enabled(0));
        }
        if let Some(t) = self.platform.timing() {
            m = m.with_timing(Box::new(PipelineModel::new(t)));
        }
        m.load_program(&img.prog);
        assert!(
            img.prog.end() <= layout::KSTACK_TOP,
            "kernel image overflows its region"
        );
        assert!(
            user.base >= layout::USER_BASE && user.end() <= layout::USER_BASE + 0x80_0000,
            "user program must live in the user region"
        );
        m.bus.write_bytes(user.base, &user.bytes);

        // ---- page tables (identity-mapped; three address spaces) ----
        let satps = build_page_tables(&mut m);

        // ---- boot parameters ----
        let p = layout::BOOT_PARAMS;
        let entry0 = user.symbols.get("main").copied().unwrap_or(user.base);
        let entry1 = entry2.map(|l| user.symbol(l)).unwrap_or(0);
        let usp0 = layout::USER_HEAP + layout::USER_HEAP_SIZE - 0x100;
        let usp1 = layout::USER_HEAP + layout::USER_HEAP_SIZE - 0x1_0000;
        m.bus.write_u64(p + params::SATP_KERNEL, satps.kernel);
        m.bus.write_u64(p + params::SATP_USER0, satps.user0);
        m.bus.write_u64(p + params::SATP_USER1, satps.user1);
        m.bus.write_u64(p + params::ENTRY0, entry0);
        m.bus.write_u64(p + params::ENTRY1, entry1);
        m.bus
            .write_u64(p + params::SCRATCH_LEAF, satps.scratch_leaf);
        m.bus.write_u64(p + params::USP0, usp0);
        m.bus.write_u64(p + params::USP1, usp1);

        // ---- task control blocks ----
        m.bus.write_u64(layout::TASK0 + task::TID, 0);
        m.bus.write_u64(layout::TASK0 + task::SATP, satps.user0);
        m.bus.write_u64(layout::TASK1 + task::TID, 1);
        m.bus.write_u64(layout::TASK1 + task::SATP, satps.user1);
        m.bus.write_u64(layout::TASK1 + task::SEPC, entry1);
        m.bus.write_u64(layout::TASK1 + task::reg(2) as u64, usp1);

        // ---- file descriptors 0..2: console ----
        for i in 0..3 {
            let e = layout::FDTABLE + i * fd::STRIDE;
            m.bus.write_u64(e + fd::KIND, fd::KIND_CONSOLE);
        }

        // ---- platform identification CSRs the services read ----
        m.cpu.csrs.write_raw(addr::CPUINFO0, 0x5256_3634_2d49_5341); // "RV64-ISA"
        m.cpu.csrs.write_raw(addr::CPUINFO1, 0x4752_4944_0001_0008);
        for (i, c) in [addr::MTRR0, addr::MTRR1, addr::MTRR2, addr::MTRR3]
            .into_iter()
            .enumerate()
        {
            m.cpu
                .csrs
                .write_raw(c, 0x0600_0000_0000_0000 | (i as u64) << 32);
        }

        // ---- ISA-Grid configuration (domain-0 boot-time registration) ----
        let layout_grid = GridLayout::new(layout::TMEM_BASE, layout::TMEM_SIZE);
        m.ext.install(&mut m.bus, layout_grid);
        if self.kernel.mode.uses_grid() {
            let roles = register_domains(&mut m, &self.kernel);
            m.ext.set_trusted_stack(
                layout_grid.tstack_base(),
                layout_grid.tstack_base() + 0x1_0000,
            );
            for (id, slot) in img.gates.iter().enumerate() {
                let spec = match slot {
                    Some(g) => GateSpec {
                        gate_addr: img.prog.symbol(&g.site),
                        dest_addr: img.prog.symbol(&g.dest),
                        dest_domain: roles.of(g.role),
                    },
                    // Reserved id: keep numbering stable with an entry
                    // that can never match a real gate address.
                    None => GateSpec {
                        gate_addr: 0,
                        dest_addr: 0,
                        dest_domain: roles.kernel,
                    },
                };
                let got = m.ext.add_gate(&mut m.bus, spec);
                assert_eq!(got.0, id as u64, "gate id drift");
            }
        }

        // ---- nested-kernel write protection over the page tables ----
        if matches!(self.kernel.mode, Mode::Nested { .. }) {
            m.cpu.csrs.write_raw(addr::WPBASE, layout::PT_POOL);
            m.cpu
                .csrs
                .write_raw(addr::WPLIMIT, layout::PT_POOL + layout::PT_POOL_SIZE);
            m.cpu.csrs.write_raw(addr::WPCTL, 1);
        }

        if let Some(seed) = self.fault_seed {
            m.ext.attach_faults(FaultPlan::for_hart(
                seed,
                self.fault_rate_ppm,
                FAULT_HORIZON,
                0,
            ));
        }

        Sim {
            machine: m,
            kernel: img,
            fault_seed: self.fault_seed,
            fault_rate_ppm: self.fault_rate_ppm,
        }
    }
}

struct Satps {
    kernel: u64,
    user0: u64,
    user1: u64,
    scratch_leaf: u64,
}

fn build_page_tables(m: &mut Machine<Pcu>) -> Satps {
    let pool = layout::PT_POOL_SIZE / 4;
    let mut tables = Vec::new();
    let mut scratch_leaf = 0;
    for t in 0..3u64 {
        let mut ptb = PageTableBuilder::new(&mut m.bus, layout::PT_POOL + t * pool, pool);
        // Kernel image, stacks, TCBs, fd/pipe/file data, boot params.
        ptb.map_range(
            &mut m.bus,
            layout::KERNEL_BASE,
            layout::KERNEL_BASE,
            layout::SCRATCH_PAGES - layout::KERNEL_BASE,
            pte::R | pte::W | pte::X,
        );
        // Scratch pages: user-visible data whose mappings mapctl edits.
        ptb.map_range(
            &mut m.bus,
            layout::SCRATCH_PAGES,
            layout::SCRATCH_PAGES,
            layout::SCRATCH_COUNT * 4096,
            pte::R | pte::W | pte::U,
        );
        // Boot params page (kernel-only).
        ptb.map_range(
            &mut m.bus,
            layout::BOOT_PARAMS,
            layout::BOOT_PARAMS,
            4096,
            pte::R | pte::W,
        );
        // MMIO: console + halt/value-log, reachable from U for the
        // benchmark harness.
        ptb.map_range(
            &mut m.bus,
            0x1000_0000,
            0x1000_0000,
            0x2000,
            pte::R | pte::W | pte::U,
        );
        // User image and heap.
        ptb.map_range(
            &mut m.bus,
            layout::USER_BASE,
            layout::USER_BASE,
            0x80_0000,
            pte::R | pte::W | pte::X | pte::U,
        );
        ptb.map_range(
            &mut m.bus,
            layout::USER_HEAP,
            layout::USER_HEAP,
            layout::USER_HEAP_SIZE,
            pte::R | pte::W | pte::U,
        );
        // The page-table pool itself (kernel/monitor writes PTEs).
        ptb.map_range(
            &mut m.bus,
            layout::PT_POOL,
            layout::PT_POOL,
            layout::PT_POOL_SIZE,
            pte::R | pte::W,
        );
        if t == 1 {
            scratch_leaf = ptb
                .leaf_pte_addr(&m.bus, layout::SCRATCH_PAGES)
                .expect("scratch pages mapped");
        }
        tables.push(ptb.satp());
    }
    Satps {
        kernel: tables[0],
        user0: tables[1],
        user1: tables[2],
        scratch_leaf,
    }
}

struct RoleMap {
    kernel: DomainId,
    mm: DomainId,
    srv: [DomainId; 4],
    monitor: DomainId,
    user: DomainId,
}

impl RoleMap {
    fn of(&self, r: Role) -> DomainId {
        match r {
            Role::Kernel => self.kernel,
            Role::Mm => self.mm,
            Role::Srv(i) => self.srv[i],
            Role::Monitor => self.monitor,
            Role::User => self.user,
        }
    }
}

/// Build the §6.1 domain split and register it with the PCU.
fn register_domains(m: &mut Machine<Pcu>, cfg: &KernelConfig) -> RoleMap {
    let csr_classes = [
        Kind::Csrrw,
        Kind::Csrrs,
        Kind::Csrrc,
        Kind::Csrrwi,
        Kind::Csrrsi,
        Kind::Csrrci,
    ];

    // The basic kernel domain: computing instructions, CSR instruction
    // classes, trap return — but register rights only for what the
    // syscall path needs. stvec and satp are frozen/withheld (§6.1).
    let mut kern = DomainSpec::compute_only();
    kern.allow_insts(csr_classes);
    kern.allow_inst(Kind::Sret);
    for c in [
        addr::SEPC,
        addr::SCAUSE,
        addr::STVAL,
        addr::SSCRATCH,
        addr::SATP,
        addr::SSTATUS,
        addr::SIP,
        addr::TIME,
        addr::INSTRET,
    ] {
        kern.allow_csr_read(c);
    }
    // Acknowledging a timer interrupt clears the pending bit.
    kern.allow_csr_write(addr::SIP);
    if !cfg.deny_cycle {
        kern.allow_csr_read(addr::CYCLE);
    }
    kern.allow_csr_write(addr::SEPC);
    kern.allow_csr_write(addr::SSCRATCH);
    kern.allow_csr_write_masked(addr::SSTATUS, mstatus::SPP | mstatus::SPIE | mstatus::SIE);

    // Memory management: the only domain that may point satp anywhere
    // and run TLB maintenance.
    let mut mm = DomainSpec::compute_only();
    mm.allow_insts(csr_classes);
    mm.allow_inst(Kind::SfenceVma);
    mm.allow_csr_rw(addr::SATP);

    // Ioctl services: each sees exactly its own registers (Table 5).
    let mut srv_specs = Vec::new();
    for i in 0..4usize {
        let mut s = DomainSpec::compute_only();
        s.allow_insts(csr_classes);
        match i {
            0 => {
                s.allow_csr_read(addr::CPUINFO0);
                s.allow_csr_read(addr::CPUINFO1);
            }
            1 => {
                for c in [addr::MTRR0, addr::MTRR1, addr::MTRR2, addr::MTRR3] {
                    s.allow_csr_read(c);
                }
            }
            2 => {
                s.allow_csr_read(addr::HPMCOUNTER3);
            }
            _ => {
                s.allow_csr_read(addr::HPMCOUNTER4);
            }
        }
        srv_specs.push(s);
    }

    // Nested monitor: MM rights plus the CR0.WP analogue, bit 0 only
    // (read-modify-write instructions need the read right too).
    let mut mon = mm.clone();
    mon.allow_csr_read(addr::WPCTL);
    mon.allow_csr_write_masked(addr::WPCTL, 1);

    // User domain (§8 extension): compute + the trap-entry touchpoints.
    // The entry path up to the U2K gate swaps sscratch and reads sepc;
    // the exit path after K2U only restores registers and srets (sret
    // from U-mode is blocked architecturally).
    let mut user = DomainSpec::compute_only();
    user.allow_insts(csr_classes);
    user.allow_inst(Kind::Sret);
    user.allow_csr_rw(addr::SSCRATCH);
    user.allow_csr_read(addr::SEPC);
    user.allow_csr_read(addr::TIME);
    user.allow_csr_read(addr::INSTRET);
    if !cfg.deny_user_cycle {
        user.allow_csr_read(addr::CYCLE);
    }

    let kernel = m.ext.add_domain(&mut m.bus, &kern);
    let mm = m.ext.add_domain(&mut m.bus, &mm);
    let srv = [
        m.ext.add_domain(&mut m.bus, &srv_specs[0]),
        m.ext.add_domain(&mut m.bus, &srv_specs[1]),
        m.ext.add_domain(&mut m.bus, &srv_specs[2]),
        m.ext.add_domain(&mut m.bus, &srv_specs[3]),
    ];
    let monitor = m.ext.add_domain(&mut m.bus, &mon);
    let user = m.ext.add_domain(&mut m.bus, &user);
    RoleMap {
        kernel,
        mm,
        srv,
        monitor,
        user,
    }
}

/// A booted simulation: the machine plus the kernel image metadata.
pub struct Sim {
    /// The machine, ready to run from reset.
    pub machine: Machine<Pcu>,
    /// The kernel image (symbols, gates, config).
    pub kernel: KernelImage,
    /// Chaos-harness seed the builder used (workers minted from this
    /// sim derive their per-hart plans from it).
    pub fault_seed: Option<u64>,
    /// Chaos-harness rate the builder used.
    pub fault_rate_ppm: u64,
}

impl Sim {
    /// Run until the guest halts; returns the exit code, or a
    /// structured [`RunError::Watchdog`] when the step budget is
    /// exhausted first — a hung guest is an error value, never a host
    /// panic.
    pub fn run_to_halt(&mut self, max_steps: u64) -> Result<u64, RunError> {
        self.machine.run_to_halt(max_steps)
    }

    /// Modeled cycles elapsed so far.
    pub fn cycles(&self) -> u64 {
        self.machine.cpu.csrs.read_raw(addr::CYCLE)
    }

    /// Values the guest reported through the VALUE_LOG MMIO register
    /// (a snapshot: on a multi-hart bus all harts append to one log).
    pub fn values(&self) -> Vec<u64> {
        self.machine.bus.value_log()
    }

    /// Console output so far.
    pub fn console(&self) -> String {
        self.machine.bus.console_string()
    }

    /// Snapshot the unified counter registry: PCU cache/check/gate
    /// tallies, timing-model cycle attribution, and run bookkeeping —
    /// one [`isa_obs::Counters`] value for reports and assertions.
    pub fn counters(&self) -> isa_obs::Counters {
        let mut c = self.machine.ext.counters();
        if let Some(pm) = self
            .machine
            .timing
            .as_any()
            .and_then(|a| a.downcast_ref::<PipelineModel>())
        {
            c.timing = pm.counters();
        } else {
            // Functional platform: the cycle CSR is the only timing.
            c.timing.cycles = self.cycles();
        }
        c.run.steps = self.machine.steps;
        c.run.traps = self.machine.trap_counts.values().sum();
        if let Some(bb) = &self.machine.bbcache {
            c.bbcache = bb.stats.counters();
        }
        if let Some(jit) = &self.machine.jit {
            c.jit = jit.stats.counters();
        }
        c
    }

    /// The trace events recorded so far (empty unless the builder
    /// enabled [`SimBuilder::trace_events`]).
    pub fn trace_events(&self) -> Vec<isa_obs::TimedEvent> {
        self.machine.trace.snapshot()
    }

    /// Drain the machine's profile, closing any open span. `None`
    /// unless the builder enabled [`SimBuilder::profile`].
    pub fn take_profile(&mut self) -> Option<isa_obs::Profile> {
        self.machine.prof.take()
    }

    /// The PCU's audit log of denied checks.
    pub fn audit_log(&self) -> &isa_obs::AuditLog {
        self.machine.ext.audit()
    }

    /// Drain the PCU's audit log.
    pub fn take_audit(&mut self) -> Vec<isa_obs::AuditRecord> {
        self.machine.ext.take_audit()
    }
}
