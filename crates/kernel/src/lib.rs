//! # simkernel — the guest kernel for the ISA-Grid evaluation
//!
//! A minimal operating-system kernel emitted as RV64 machine code by the
//! `isa-asm` builder and executed on the `isa-sim` emulator. It stands in
//! for the Linux kernels of the paper's evaluation (§7 "Software Setup")
//! and implements the paths those benchmarks exercise:
//!
//! * M-mode boot (domain-0 firmware) with trap delegation;
//! * an S-mode trap/syscall path with optional page-table isolation;
//! * in-memory files, pipes, signals, and a two-task scheduler;
//! * four ioctl services (Table 5: CPUID-, MTRR-, PMC-like);
//! * a page-mapping syscall that the §6.2 nested monitor mediates;
//! * optional timer-driven preemptive scheduling (with the preemption
//!   path's `satp` switch behind MM-domain gates when decomposed); and
//! * a deliberately vulnerable syscall whose gadgets model the Table 1
//!   ISA-abuse attacks.
//!
//! Three [`KernelConfig`] modes select the paper's systems: `Native`
//! (baseline), `Decomposed` (§6.1 Linux decomposition), `Nested` (§6.2
//! Nested-Kernel with optional logging).
//!
//! ## Example
//!
//! ```
//! use isa_asm::{Asm, Reg::*};
//! use simkernel::{layout, KernelConfig, SimBuilder};
//!
//! // A user program: getpid, then exit with the result + 40.
//! let mut a = Asm::new(layout::USER_BASE);
//! a.label("main");
//! a.li(A7, layout::sys::GETPID);
//! a.ecall();
//! a.addi(A0, A0, 42);
//! a.li(A7, layout::sys::EXIT);
//! a.ecall();
//! let user = a.assemble()?;
//!
//! let mut sim = SimBuilder::new(KernelConfig::decomposed()).boot(&user, None);
//! assert_eq!(sim.run_to_halt(1_000_000).unwrap(), 42); // pid 0 + 42
//! # Ok::<(), isa_asm::AsmError>(())
//! ```

#![warn(missing_docs)]

mod config;
mod image;
pub mod layout;
mod machine;
pub mod session;
pub mod smp;
pub mod usr;

pub use config::{GateTarget, KernelConfig, Mode, Role};
pub use image::{build_kernel, KernelImage};
pub use machine::{Platform, Sim, SimBuilder};
pub use session::{Completion, Session, SessionState, SmpSession};
pub use smp::{boot_smp, start_worker, SmpSim};
