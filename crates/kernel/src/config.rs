//! Kernel build configurations.

/// How the kernel is hardened with ISA-Grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unmodified kernel: everything runs in domain-0, no gates — the
    /// paper's baseline.
    Native,
    /// §6.1 Linux-decomposition analogue: the kernel body runs in a
    /// de-privileged basic domain; `satp` writers, TLB maintenance and
    /// the four ioctl services live in their own ISA domains behind
    /// gates.
    Decomposed,
    /// §6.2 Nested-Kernel analogue: page-table writes are mediated by a
    /// monitor domain that alone may toggle the write-protect control
    /// (`wpctl` ≈ CR0.WP); optionally logs every mapping change
    /// (`Nest.Mon.Log`).
    Nested {
        /// Log recent page-table modifications to a circular buffer.
        log: bool,
    },
}

impl Mode {
    /// Whether this mode registers ISA domains and gates at all.
    pub fn uses_grid(self) -> bool {
        !matches!(self, Mode::Native)
    }
}

/// Compile-time configuration of the generated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Hardening mode.
    pub mode: Mode,
    /// Page-table isolation: switch `satp` on every kernel entry/exit
    /// (the "w/ PTI" rows of Table 4).
    pub pti: bool,
    /// Deny `cycle`-counter reads to the basic domain (the rdtsc
    /// restriction used by the attack-mitigation evaluation; leave off
    /// for benchmarks, which measure with `rdcycle`).
    pub deny_cycle: bool,
    /// Busy-work iterations inside each ioctl service (Table 5 services
    /// contain real logic; this models it).
    pub service_work: u32,
    /// Scheduler-accounting iterations inside `yield` (real kernels do
    /// runqueue/statistics work on every context switch; this models it).
    pub sched_work: u32,
    /// Handle supervisor timer interrupts by preempting the current task
    /// (round-robin). Pair with `SimBuilder::timer_every`.
    pub preempt: bool,
    /// §8 "Extending to User Space": run user code in its own ISA domain
    /// (gates on the trap entry/exit paths switch between it and the
    /// kernel basic domain).
    pub user_domain: bool,
    /// With [`KernelConfig::user_domain`]: deny the user domain the cycle
    /// counter — the per-process rdtsc restriction of §2.2. Benchmarks
    /// need this off (they measure with `rdcycle`).
    pub deny_user_cycle: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            mode: Mode::Native,
            pti: false,
            deny_cycle: false,
            service_work: 1500,
            sched_work: 96,
            preempt: false,
            user_domain: false,
            deny_user_cycle: false,
        }
    }
}

impl KernelConfig {
    /// The unmodified baseline kernel.
    pub fn native() -> KernelConfig {
        KernelConfig::default()
    }

    /// The §6.1 decomposed kernel.
    pub fn decomposed() -> KernelConfig {
        KernelConfig {
            mode: Mode::Decomposed,
            ..KernelConfig::default()
        }
    }

    /// The §6.2 nested-monitor kernel.
    pub fn nested(log: bool) -> KernelConfig {
        KernelConfig {
            mode: Mode::Nested { log },
            ..KernelConfig::default()
        }
    }

    /// Enable page-table isolation.
    pub fn with_pti(mut self) -> KernelConfig {
        self.pti = true;
        self
    }

    /// Enable preemptive (timer-driven) scheduling.
    pub fn with_preempt(mut self) -> KernelConfig {
        self.preempt = true;
        self
    }

    /// Give user code its own ISA domain (§8 "Extending to User Space").
    pub fn with_user_domain(mut self) -> KernelConfig {
        self.user_domain = true;
        self
    }
}

/// Which ISA domain a gate destination lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The kernel basic domain.
    Kernel,
    /// The memory-management domain (`satp`, `sfence.vma`).
    Mm,
    /// Ioctl service `i`'s domain.
    Srv(usize),
    /// The nested-kernel monitor domain.
    Monitor,
    /// The user-code domain (§8 extension).
    User,
}

/// A gate the host must register: the `site` label is where the
/// `hccall`/`hccalls` instruction sits, `dest` is where control lands,
/// `role` selects the destination domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateTarget {
    /// Label of the gate instruction.
    pub site: String,
    /// Label of the destination.
    pub dest: String,
    /// Destination domain.
    pub role: Role,
}
