//! Physical memory map, syscall ABI and kernel data-structure layout.
//!
//! Everything here is shared between the host-side image builder and the
//! generated guest code, so both sides agree byte-for-byte.

/// Kernel image load address (RAM base).
pub const KERNEL_BASE: u64 = 0x8000_0000;
/// Top of the global kernel stack (grows down; syscalls do not nest).
pub const KSTACK_TOP: u64 = 0x8020_0000;
/// Task control blocks (one page each).
pub const TASK0: u64 = 0x8021_0000;
/// Second task control block.
pub const TASK1: u64 = 0x8021_1000;
/// Global file-descriptor table.
pub const FDTABLE: u64 = 0x8021_2000;
/// Pipe A (task1 -> task2).
pub const PIPE_A: u64 = 0x8021_3000;
/// Pipe B (task2 -> task1).
pub const PIPE_B: u64 = 0x8021_5000;
/// Nested-monitor circular log buffer (`Nest.Mon.Log`).
pub const MONLOG: u64 = 0x8021_7000;
/// In-memory file data (4 files × 64 KiB).
pub const FILE_DATA: u64 = 0x8030_0000;
/// Per-file data stride.
pub const FILE_STRIDE: u64 = 0x1_0000;
/// Pages whose mappings the `mapctl` syscall manipulates.
pub const SCRATCH_PAGES: u64 = 0x8040_0000;
/// Number of scratch pages.
pub const SCRATCH_COUNT: u64 = 16;
/// Boot-parameter block, written by the host after page tables exist.
pub const BOOT_PARAMS: u64 = 0x8041_0000;
/// User program image base.
pub const USER_BASE: u64 = 0x8100_0000;
/// User scratch/heap area (mapped U+RW).
pub const USER_HEAP: u64 = 0x8180_0000;
/// User heap size.
pub const USER_HEAP_SIZE: u64 = 8 << 20;
/// Page-table pool (kernel root + per-task user roots).
pub const PT_POOL: u64 = 0x8200_0000;
/// Page-table pool size.
pub const PT_POOL_SIZE: u64 = 0x40_0000;
/// Trusted memory region for ISA-Grid structures.
pub const TMEM_BASE: u64 = 0x8380_0000;
/// Trusted memory size (power of two).
pub const TMEM_SIZE: u64 = 1 << 20;

/// Boot-parameter block offsets (all 8-byte fields).
pub mod params {
    /// Kernel-view `satp`.
    pub const SATP_KERNEL: u64 = 0x00;
    /// Task-0 user-view `satp` (differs from kernel view under PTI).
    pub const SATP_USER0: u64 = 0x08;
    /// Task-1 user-view `satp`.
    pub const SATP_USER1: u64 = 0x10;
    /// Task-0 user entry point.
    pub const ENTRY0: u64 = 0x18;
    /// Task-1 user entry point (0 = single-task).
    pub const ENTRY1: u64 = 0x20;
    /// Physical address of the leaf page-table page covering the scratch
    /// pages (the nested monitor writes PTEs there).
    pub const SCRATCH_LEAF: u64 = 0x28;
    /// Task-0 user stack pointer.
    pub const USP0: u64 = 0x30;
    /// Task-1 user stack pointer.
    pub const USP1: u64 = 0x38;
}

/// Task control block offsets.
pub mod task {
    /// Saved registers x1..x31 (31 × 8 bytes).
    pub const REGS: u64 = 0x000;
    /// Saved user PC.
    pub const SEPC: u64 = 0x0F8;
    /// The task's user-view `satp`.
    pub const SATP: u64 = 0x100;
    /// Registered signal handler (0 = none).
    pub const SIG_HANDLER: u64 = 0x108;
    /// PC saved while a signal handler runs.
    pub const SIG_SAVED_EPC: u64 = 0x110;
    /// Signal pending flag.
    pub const SIG_PENDING: u64 = 0x118;
    /// Task id.
    pub const TID: u64 = 0x120;

    /// Offset of saved register `x{n}` (n in 1..=31).
    pub fn reg(n: u8) -> i32 {
        assert!((1..=31).contains(&n));
        (REGS + (n as u64 - 1) * 8) as i32
    }
}

/// File-descriptor table: 16 entries × 32 bytes
/// (`kind`, `inode`, `offset`, reserved).
pub mod fd {
    /// Entries in the table.
    pub const COUNT: u64 = 16;
    /// Bytes per entry.
    pub const STRIDE: u64 = 32;
    /// Offset of the kind field.
    pub const KIND: u64 = 0;
    /// Offset of the inode/index field.
    pub const INODE: u64 = 8;
    /// Offset of the read/write offset field.
    pub const OFFSET: u64 = 16;

    /// Entry is unused.
    pub const KIND_FREE: u64 = 0;
    /// Console (fds 0–2).
    pub const KIND_CONSOLE: u64 = 1;
    /// Zero device (infinite zeroes, /dev/zero analogue).
    pub const KIND_ZERO: u64 = 2;
    /// Null device (writes discarded).
    pub const KIND_NULL: u64 = 3;
    /// Regular in-memory file.
    pub const KIND_FILE: u64 = 4;
    /// Pipe read end.
    pub const KIND_PIPE_R: u64 = 5;
    /// Pipe write end.
    pub const KIND_PIPE_W: u64 = 6;
}

/// Pipe object layout: header + 4 KiB ring buffer.
pub mod pipe {
    /// Read cursor.
    pub const RD: u64 = 0;
    /// Write cursor.
    pub const WR: u64 = 8;
    /// Ring data start.
    pub const BUF: u64 = 16;
    /// Ring capacity (power of two; `CAP - 1` must fit an `andi`
    /// immediate).
    pub const CAP: u64 = 2048;
}

/// Nested-monitor log layout: one cursor + 8-byte entries.
pub mod monlog {
    /// Write cursor (entry index).
    pub const CURSOR: u64 = 0;
    /// Entries start.
    pub const ENTRIES: u64 = 8;
    /// Entry count (circular; power of two so `cursor & (CAP-1)` indexes).
    pub const CAP: u64 = 256;
}

/// Syscall numbers (`a7`).
pub mod sys {
    /// getpid() -> tid
    pub const GETPID: u64 = 0;
    /// read(fd, buf, len) -> n
    pub const READ: u64 = 1;
    /// write(fd, buf, len) -> n
    pub const WRITE: u64 = 2;
    /// open(path_id) -> fd
    pub const OPEN: u64 = 3;
    /// close(fd) -> 0
    pub const CLOSE: u64 = 4;
    /// stat(path_id, buf) -> 0
    pub const STAT: u64 = 5;
    /// fstat(fd, buf) -> 0
    pub const FSTAT: u64 = 6;
    /// pipe(which) -> (rd_fd << 32) | wr_fd
    pub const PIPE: u64 = 7;
    /// sigaction(handler) -> 0
    pub const SIGACTION: u64 = 8;
    /// raise() -> 0 (delivers the signal on return to user)
    pub const RAISE: u64 = 9;
    /// sigreturn() -> resumes the interrupted PC
    pub const SIGRETURN: u64 = 10;
    /// yield() -> 0 (switch to the other runnable task)
    pub const YIELD: u64 = 11;
    /// exit(code) -> halts the machine
    pub const EXIT: u64 = 12;
    /// ioctl(service, arg) -> service result (Table 5 services)
    pub const IOCTL: u64 = 13;
    /// mapctl(page_idx, pte_value) -> 0 (page-mapping update; mediated by
    /// the nested monitor when configured)
    pub const MAPCTL: u64 = 14;
    /// vuln(op) -> 0: a deliberately vulnerable kernel entry that performs
    /// an attacker-chosen privileged operation (the ISA-abuse gadget used
    /// by the attack-mitigation evaluation, Table 1)
    pub const VULN: u64 = 15;
    /// Number of syscalls.
    pub const COUNT: u64 = 16;
}

/// Attack gadget operation codes for the `vuln` syscall: each mirrors a
/// Table 1 prerequisite on our register analogues.
pub mod vuln_op {
    /// Write `stvec` — Controlled-Channel Attack analogue (IDTR).
    pub const WRITE_STVEC: u64 = 0;
    /// Write `satp` — page-table-base abuse (CR3).
    pub const WRITE_SATP: u64 = 1;
    /// Write `vfctl` — voltage/frequency attack (MSR 0x150, V0LTpwn).
    pub const WRITE_VFCTL: u64 = 2;
    /// Read `dbg0` — TRESOR-HUNT / FORESHADOW debug-register abuse (DR0-7).
    pub const READ_DBG: u64 = 3;
    /// Write `btbctl` — SgxPectre BTB configuration (MSR 0x48/0x49).
    pub const WRITE_BTBCTL: u64 = 4;
    /// Read `cycle` in a kernel gadget — timing side channels (rdtsc).
    pub const READ_CYCLE: u64 = 5;
    /// Read PMU counter — NAILGUN analogue (ARM PMU).
    pub const READ_PMU: u64 = 6;
    /// Write `wpctl` — Stealthy Page-Table attack analogue (CR0.CD/WP).
    pub const WRITE_WPCTL: u64 = 7;
    /// Number of gadgets.
    pub const COUNT: u64 = 8;
}

/// Fixed gate-id assignment. The host registers gates in exactly this
/// order so generated kernel code can use immediates.
pub mod gates {
    /// Boot: domain-0 -> kernel basic domain (`hccall`).
    pub const BOOT: u64 = 0;
    /// Yield-time `satp` switch: extended gate into the MM domain.
    pub const MM_YIELD: u64 = 1;
    /// mapctl PTE write: extended gate into the MM domain (decomposed).
    pub const MM_MAPCTL: u64 = 2;
    /// PTI entry: switch to the kernel page table (`hccall` pair).
    pub const PTI_K_IN: u64 = 3;
    /// PTI entry return.
    pub const PTI_K_OUT: u64 = 4;
    /// PTI exit: switch to the user page table.
    pub const PTI_U_IN: u64 = 5;
    /// PTI exit return.
    pub const PTI_U_OUT: u64 = 6;
    /// Enter service `i` (i in 0..4): `SRV_IN + 2*i`.
    pub const SRV_IN: u64 = 7;
    /// Leave service `i`: `SRV_OUT + 2*i`.
    pub const SRV_OUT: u64 = 8;
    /// mapctl PTE write: extended gate into the nested monitor.
    pub const MON_MAPCTL: u64 = 15;
    /// Yield-time `satp` switch, return gate (`hccall` pair with
    /// [`MM_YIELD`]).
    pub const MM_YIELD_OUT: u64 = 16;
    /// Preemption-time `satp` switch (`hccall` pair, timer interrupt).
    pub const PREEMPT_IN: u64 = 17;
    /// Preemption-time `satp` switch, return gate.
    pub const PREEMPT_OUT: u64 = 18;
    /// User-to-kernel domain switch on trap entry (in-place gate).
    pub const U2K: u64 = 19;
    /// Kernel-to-user domain switch before `sret` (in-place gate).
    pub const K2U: u64 = 20;
    /// Total gates a fully-configured kernel registers.
    pub const COUNT: u64 = 21;
}

/// Exit codes the kernel halts with.
pub mod exit {
    /// Marker bit pattern for a machine-mode (ISA-Grid) fault:
    /// `GRID_FAULT | mcause`.
    pub const GRID_FAULT: u64 = 0x6000;
    /// Unexpected supervisor trap: `PANIC | scause`.
    pub const PANIC: u64 = 0x7000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // (start, size) pairs in increasing order.
        let regions = [
            (KERNEL_BASE, 0x20_0000),
            (TASK0, 0x1000),
            (TASK1, 0x1000),
            (FDTABLE, 0x1000),
            (PIPE_A, 0x2000),
            (PIPE_B, 0x2000),
            (MONLOG, 0x1000),
            (FILE_DATA, 4 * FILE_STRIDE),
            (SCRATCH_PAGES, SCRATCH_COUNT * 4096),
            (BOOT_PARAMS, 0x1000),
            (USER_BASE, 0x80_0000),
            (USER_HEAP, USER_HEAP_SIZE),
            (PT_POOL, PT_POOL_SIZE),
            (TMEM_BASE, TMEM_SIZE),
        ];
        for w in regions.windows(2) {
            let (a, asz) = w[0];
            let (b, _) = w[1];
            assert!(a + asz <= b, "{a:#x}+{asz:#x} overlaps {b:#x}");
        }
        // Everything fits in 64 MiB of RAM.
        let (last, sz) = regions[regions.len() - 1];
        assert!(last + sz <= KERNEL_BASE + (64 << 20));
    }

    #[test]
    fn task_reg_offsets() {
        assert_eq!(task::reg(1), 0); // x1 is the first saved slot
        assert_eq!(task::reg(31), 240);
        assert!(task::reg(31) + 8 <= task::SEPC as i32);
    }

    #[test]
    #[should_panic]
    fn task_reg_zero_is_invalid() {
        task::reg(0);
    }

    #[test]
    fn gate_ids_are_dense_and_distinct() {
        let mut ids = vec![
            gates::BOOT,
            gates::MM_YIELD,
            gates::MM_MAPCTL,
            gates::PTI_K_IN,
            gates::PTI_K_OUT,
            gates::PTI_U_IN,
            gates::PTI_U_OUT,
            gates::MON_MAPCTL,
            gates::MM_YIELD_OUT,
            gates::PREEMPT_IN,
            gates::PREEMPT_OUT,
            gates::U2K,
            gates::K2U,
        ];
        for i in 0..4 {
            ids.push(gates::SRV_IN + 2 * i);
            ids.push(gates::SRV_OUT + 2 * i);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, gates::COUNT);
        assert_eq!(*ids.last().unwrap(), gates::COUNT - 1);
    }

    #[test]
    fn pipe_capacity_is_power_of_two() {
        assert!(pipe::CAP.is_power_of_two());
    }

    #[test]
    fn monlog_capacity_is_power_of_two_and_fits_its_page() {
        assert!(monlog::CAP.is_power_of_two());
        const {
            assert!(
                monlog::ENTRIES + monlog::CAP * 8 <= 0x1000,
                "log fits one page"
            )
        };
    }
}
