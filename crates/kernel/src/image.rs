//! The kernel image builder: emits the guest kernel as RV64 machine code.
//!
//! The kernel is intentionally minimal but structurally faithful to what
//! the paper's evaluation exercises: an M-mode boot/firmware layer
//! (domain-0), an S-mode trap/syscall path with optional PTI, in-memory
//! files and pipes, signals, a two-task scheduler, four ioctl services,
//! and a page-mapping path that the nested monitor mediates.

use isa_asm::{Asm, Reg, Reg::*};
use isa_sim::csr::{addr, mstatus};
use isa_sim::mmio;

use crate::config::{GateTarget, KernelConfig, Mode, Role};
use crate::layout::{self, exit, fd, gates, monlog, params, pipe, sys, task, vuln_op};

/// The built kernel: program image plus the gates the host must register.
#[derive(Debug, Clone)]
pub struct KernelImage {
    /// The assembled kernel.
    pub prog: isa_asm::Program,
    /// Gate registrations indexed by gate id (None = reserve a dummy slot
    /// so later ids stay stable).
    pub gates: Vec<Option<GateTarget>>,
    /// The configuration the image was built for.
    pub config: KernelConfig,
}

/// Build the kernel for `cfg`.
///
/// # Panics
///
/// Panics only on internal label errors — the builder is total over all
/// configurations.
pub fn build_kernel(cfg: &KernelConfig) -> KernelImage {
    Builder::new(*cfg).build()
}

struct Builder {
    cfg: KernelConfig,
    a: Asm,
    gates: Vec<Option<GateTarget>>,
}

impl Builder {
    fn new(cfg: KernelConfig) -> Builder {
        Builder {
            cfg,
            a: Asm::new(layout::KERNEL_BASE),
            gates: vec![None; gates::COUNT as usize],
        }
    }

    fn grid(&self) -> bool {
        self.cfg.mode.uses_grid()
    }

    fn register_gate(&mut self, id: u64, site: &str, dest: &str, role: Role) {
        self.gates[id as usize] = Some(GateTarget {
            site: site.into(),
            dest: dest.into(),
            role,
        });
    }

    fn build(mut self) -> KernelImage {
        self.emit_boot();
        self.emit_m_trap();
        self.emit_s_entry();
        self.emit_s_trap();
        self.emit_ret_to_user();
        self.emit_syscall_table();
        self.emit_syscalls();
        self.emit_cross_domain_targets();
        let prog = self.a.assemble().expect("kernel assembles");
        KernelImage {
            prog,
            gates: self.gates,
            config: self.cfg,
        }
    }

    // ---- M-mode boot: the domain-0 firmware ----

    fn emit_boot(&mut self) {
        let preempt = self.cfg.preempt;
        let a = &mut self.a;
        a.label("boot");
        a.la(T0, "m_trap");
        a.csrw(addr::MTVEC as u32, T0);
        // Delegate the standard exceptions to S; ISA-Grid faults (24–27)
        // stay in M — domain-0's handler.
        let deleg: u64 = 0xffff & !(1 << 9) & !(1 << 11);
        a.li(T0, deleg);
        a.csrw(addr::MEDELEG as u32, T0);
        // Let S access user pages (copyin/copyout).
        a.li(T0, mstatus::SUM);
        a.csrrs(Zero, addr::MSTATUS as u32, T0);
        if preempt {
            // Route and enable the supervisor timer interrupt.
            a.li(T0, 1 << 5);
            a.csrw(addr::MIDELEG as u32, T0);
            a.li(T0, 1 << 5);
            a.csrrs(Zero, addr::MIE as u32, T0);
        }
        // Current task pointer for the trap path.
        a.li(T0, layout::TASK0);
        a.csrw(addr::SSCRATCH as u32, T0);
        // Drop to S-mode at s_entry.
        a.li(T0, mstatus::MPP_MASK);
        a.csrrc(Zero, addr::MSTATUS as u32, T0);
        a.li(T0, 1 << mstatus::MPP_SHIFT);
        a.csrrs(Zero, addr::MSTATUS as u32, T0);
        a.la(T0, "s_entry");
        a.csrw(addr::MEPC as u32, T0);
        a.mret();
    }

    /// Domain-0's exception handler: an ISA-Grid fault (or any
    /// non-delegated trap) halts the machine with `GRID_FAULT | mcause` —
    /// the "attack detected, panic" policy of the decomposed kernel.
    fn emit_m_trap(&mut self) {
        let a = &mut self.a;
        a.label("m_trap");
        a.csrr(T0, addr::MCAUSE as u32);
        a.li(T1, exit::GRID_FAULT);
        a.or(T0, T0, T1);
        a.li(T6, mmio::HALT);
        a.sd(T0, T6, 0);
        a.label("m_trap_hang");
        a.j("m_trap_hang");
    }

    // ---- S-mode entry: finish init in domain-0, gate into the kernel ----

    fn emit_s_entry(&mut self) {
        let grid = self.grid();
        let user_domain = self.cfg.user_domain;
        let a = &mut self.a;
        a.label("s_entry");
        // Trap vector is frozen here, before leaving domain-0 (the
        // "registers only used for system initialization" of §6.1).
        a.la(T0, "s_trap");
        a.csrw(addr::STVEC as u32, T0);
        // First task context: entry point, user stack, address space.
        a.li(T0, layout::BOOT_PARAMS);
        a.ld(T1, T0, params::ENTRY0 as i32);
        a.csrw(addr::SEPC as u32, T1);
        a.ld(T2, T0, params::SATP_USER0 as i32);
        a.csrw(addr::SATP as u32, T2);
        a.sfence_vma(Zero, Zero);
        a.ld(Sp, T0, params::USP0 as i32);
        // Return to U-mode.
        a.li(T1, mstatus::SPP);
        a.csrrc(Zero, addr::SSTATUS as u32, T1);
        if grid {
            a.li(T4, gates::BOOT);
            a.label("boot_gate_site");
            a.hccall(T4);
        }
        a.label("s_entry2");
        a.sret();
        if grid {
            // With a user domain, the first sret already runs user-side.
            let dest = if user_domain {
                Role::User
            } else {
                Role::Kernel
            };
            self.register_gate(gates::BOOT, "boot_gate_site", "s_entry2", dest);
        }
    }

    // ---- S-mode trap entry ----

    fn emit_s_trap(&mut self) {
        let pti = self.cfg.pti;
        let grid = self.grid();
        let preempt = self.cfg.preempt;
        let user_domain = self.cfg.user_domain && grid;
        let a = &mut self.a;
        a.label("s_trap");
        // sscratch holds &TASK[current]; swap it with sp.
        a.csrrw(Sp, addr::SSCRATCH as u32, Sp);
        for i in 1..32u8 {
            if i != 2 {
                a.sd(Reg::from_num(i as u32), Sp, task::reg(i));
            }
        }
        a.csrr(T0, addr::SSCRATCH as u32); // the interrupted sp
        a.sd(T0, Sp, task::reg(2));
        a.csrw(addr::SSCRATCH as u32, Sp);
        a.mv(S0, Sp);
        a.csrr(T0, addr::SEPC as u32);
        a.sd(T0, S0, task::SEPC as i32);
        a.li(Sp, layout::KSTACK_TOP);
        if user_domain {
            // Leave the user domain for the kernel basic domain — an
            // in-place gate (dest = next instruction).
            a.li(T4, gates::U2K);
            a.label("u2k_site");
            a.hccall(T4);
            a.label("u2k_cont");
        }
        if pti {
            // Enter the kernel address space. Under decomposition the
            // satp write lives in the MM domain behind an hccall pair.
            a.li(T0, layout::BOOT_PARAMS);
            a.ld(T5, T0, params::SATP_KERNEL as i32);
            if grid {
                a.li(T4, gates::PTI_K_IN);
                a.label("pti_k_site");
                a.hccall(T4);
                a.label("pti_k_back");
            } else {
                a.csrw(addr::SATP as u32, T5);
                a.sfence_vma(Zero, Zero);
            }
        }
        a.csrr(T0, addr::SCAUSE as u32);
        if preempt {
            a.srli(T2, T0, 63);
            a.bnez(T2, "s_intr");
        }
        a.li(T1, 8); // environment call from U
        a.bne(T0, T1, "s_trap_panic");
        // Syscall: number in a7, args in a0..a2 (all from the frame).
        a.ld(T2, S0, task::reg(17));
        a.li(T3, sys::COUNT);
        a.bgeu(T2, T3, "s_trap_panic");
        // Resume after the ecall.
        a.ld(T0, S0, task::SEPC as i32);
        a.addi(T0, T0, 4);
        a.sd(T0, S0, task::SEPC as i32);
        a.slli(T2, T2, 3);
        a.la(T3, "sys_table");
        a.add(T3, T3, T2);
        a.ld(T3, T3, 0);
        a.ld(A0, S0, task::reg(10));
        a.ld(A1, S0, task::reg(11));
        a.ld(A2, S0, task::reg(12));
        a.jalr(Ra, T3, 0);
        a.sd(A0, S0, task::reg(10));
        a.j("ret_to_user");

        a.label("s_trap_panic");
        a.csrr(T0, addr::SCAUSE as u32);
        a.li(T1, exit::PANIC);
        a.or(T0, T0, T1);
        a.li(T6, mmio::HALT);
        a.sd(T0, T6, 0);
        a.label("s_trap_hang");
        a.j("s_trap_hang");

        if preempt {
            // Timer interrupt: acknowledge and preempt (round-robin).
            a.label("s_intr");
            a.andi(T1, T0, 0xff);
            a.li(T2, 5); // supervisor timer
            a.bne(T1, T2, "s_trap_panic");
            a.li(T1, 1 << 5);
            a.csrrc(Zero, addr::SIP as u32, T1);
            // Nothing else runnable? Resume the interrupted task.
            a.li(T0, layout::TASK1);
            a.ld(T1, T0, task::SEPC as i32);
            a.beqz(T1, "ret_to_user");
            // Involuntary switch: sepc is NOT advanced, a0 untouched.
            a.li(T0, layout::TASK0 ^ layout::TASK1);
            a.xor(S0, S0, T0);
            if !pti {
                a.ld(T5, S0, task::SATP as i32);
                if grid {
                    a.li(T4, gates::PREEMPT_IN);
                    a.label("preempt_mm_site");
                    a.hccall(T4);
                    a.label("preempt_mm_back");
                } else {
                    a.csrw(addr::SATP as u32, T5);
                    a.sfence_vma(Zero, Zero);
                }
            }
            a.j("ret_to_user");
        }

        if pti && grid {
            self.register_gate(gates::PTI_K_IN, "pti_k_site", "pti_k_entry", Role::Mm);
            // The entry/out-site are emitted with the other MM targets.
        }
        if preempt && grid && !pti {
            self.register_gate(
                gates::PREEMPT_IN,
                "preempt_mm_site",
                "preempt_mm_entry",
                Role::Mm,
            );
            self.register_gate(
                gates::PREEMPT_OUT,
                "preempt_mm_outsite",
                "preempt_mm_back",
                Role::Kernel,
            );
        }
        if user_domain {
            self.register_gate(gates::U2K, "u2k_site", "u2k_cont", Role::Kernel);
        }
    }

    // ---- return-to-user path (also the scheduler's landing point) ----

    fn emit_ret_to_user(&mut self) {
        let pti = self.cfg.pti;
        let grid = self.grid();
        let user_domain = self.cfg.user_domain && grid;
        let a = &mut self.a;
        a.label("ret_to_user");
        // Signal delivery.
        a.ld(T0, S0, task::SIG_PENDING as i32);
        a.beqz(T0, "rtu_no_sig");
        a.ld(T1, S0, task::SIG_HANDLER as i32);
        a.beqz(T1, "rtu_no_sig");
        a.sd(Zero, S0, task::SIG_PENDING as i32);
        a.ld(T2, S0, task::SEPC as i32);
        a.sd(T2, S0, task::SIG_SAVED_EPC as i32);
        a.sd(T1, S0, task::SEPC as i32);
        a.label("rtu_no_sig");
        a.ld(T0, S0, task::SEPC as i32);
        a.csrw(addr::SEPC as u32, T0);
        if pti {
            // Leave the kernel address space for the task's user view.
            a.ld(T5, S0, task::SATP as i32);
            if grid {
                a.li(T4, gates::PTI_U_IN);
                a.label("pti_u_site");
                a.hccall(T4);
                a.label("pti_u_back");
            } else {
                a.csrw(addr::SATP as u32, T5);
                a.sfence_vma(Zero, Zero);
            }
        }
        a.li(T0, mstatus::SPP);
        a.csrrc(Zero, addr::SSTATUS as u32, T0);
        a.csrw(addr::SSCRATCH as u32, S0);
        if user_domain {
            // Enter the user domain; t4 is restored below, the remaining
            // loads and the sret execute user-side.
            a.li(T4, gates::K2U);
            a.label("k2u_site");
            a.hccall(T4);
            a.label("k2u_cont");
        }
        // Restore everything; s0 (x8) is the base, so it goes last.
        for i in 1..32u8 {
            if i != 2 && i != 8 {
                a.ld(Reg::from_num(i as u32), S0, task::reg(i));
            }
        }
        a.ld(Sp, S0, task::reg(2));
        a.ld(S0, S0, task::reg(8));
        a.sret();
        if pti && grid {
            self.register_gate(gates::PTI_U_IN, "pti_u_site", "pti_u_entry", Role::Mm);
        }
        if user_domain {
            self.register_gate(gates::K2U, "k2u_site", "k2u_cont", Role::User);
        }
    }

    // ---- syscall dispatch table ----

    fn emit_syscall_table(&mut self) {
        let a = &mut self.a;
        a.align(8);
        a.label("sys_table");
        for name in [
            "sys_getpid",
            "sys_read",
            "sys_write",
            "sys_open",
            "sys_close",
            "sys_stat",
            "sys_fstat",
            "sys_pipe",
            "sys_sigaction",
            "sys_raise",
            "sys_sigreturn",
            "sys_yield",
            "sys_exit",
            "sys_ioctl",
            "sys_mapctl",
            "sys_vuln",
        ] {
            a.d64_label(name);
        }
    }

    // ---- syscall handlers ----
    //
    // Convention: args in a0..a2, result in a0, s0 = &TASK[current],
    // sp = kernel stack, ra = return to dispatch. Handlers may clobber
    // t0..t6 and a0..a5.

    fn emit_syscalls(&mut self) {
        self.emit_sys_simple();
        self.emit_sys_files();
        self.emit_sys_pipe();
        self.emit_sys_signals();
        self.emit_sys_yield();
        self.emit_sys_ioctl();
        self.emit_sys_mapctl();
        self.emit_sys_vuln();
    }

    fn emit_sys_simple(&mut self) {
        let a = &mut self.a;
        a.label("sys_getpid");
        a.ld(A0, S0, task::TID as i32);
        a.ret();

        a.label("sys_exit");
        a.li(T6, mmio::HALT);
        a.sd(A0, T6, 0);
        a.label("sys_exit_hang");
        a.j("sys_exit_hang");
    }

    /// Emit `t0 = &FDTABLE[a0]`, branching to `bad` on out-of-range fds.
    fn emit_fd_lookup(a: &mut Asm, bad: &str) {
        a.li(T0, fd::COUNT);
        a.bgeu(A0, T0, bad);
        a.slli(T0, A0, 5); // × fd::STRIDE
        a.li(T1, layout::FDTABLE);
        a.add(T0, T0, T1);
    }

    /// Copy `a2` bytes from `src_reg` to `dst_reg` (byte loop, clobbers
    /// t5/t6 and the address registers). `a2` must be >= 0.
    fn emit_copy(a: &mut Asm, dst: Reg, src: Reg, len: Reg, uniq: &str) {
        let head = format!("copy_head_{uniq}");
        let done = format!("copy_done_{uniq}");
        a.mv(T5, len);
        a.label(&head);
        a.beqz(T5, &done);
        a.lbu(T6, src, 0);
        a.sb(T6, dst, 0);
        a.addi(src, src, 1);
        a.addi(dst, dst, 1);
        a.addi(T5, T5, -1);
        a.j(&head);
        a.label(&done);
    }

    fn emit_sys_files(&mut self) {
        let a = &mut self.a;

        // open(path_id) -> fd = 3 + path_id
        a.label("sys_open");
        a.li(T0, 4);
        a.bgeu(A0, T0, "open_bad");
        a.addi(A1, A0, 3); // fd
        a.slli(T0, A1, 5);
        a.li(T1, layout::FDTABLE);
        a.add(T0, T0, T1); // entry
                           // kind: path 0 -> zero dev, 1 -> null dev, else regular file.
        a.li(T2, fd::KIND_FILE);
        a.li(T3, 1);
        a.bne(A0, Zero, "open_not_zero");
        a.li(T2, fd::KIND_ZERO);
        a.label("open_not_zero");
        a.bne(A0, T3, "open_not_null");
        a.li(T2, fd::KIND_NULL);
        a.label("open_not_null");
        a.sd(T2, T0, fd::KIND as i32);
        a.sd(A0, T0, fd::INODE as i32);
        a.sd(Zero, T0, fd::OFFSET as i32);
        a.mv(A0, A1);
        a.ret();
        a.label("open_bad");
        a.li(A0, -1i64 as u64);
        a.ret();

        // close(fd)
        a.label("sys_close");
        Self::emit_fd_lookup(a, "close_bad");
        a.sd(Zero, T0, fd::KIND as i32);
        a.li(A0, 0);
        a.ret();
        a.label("close_bad");
        a.li(A0, -1i64 as u64);
        a.ret();

        // read(fd, buf, len)
        a.label("sys_read");
        Self::emit_fd_lookup(a, "read_bad");
        a.ld(T1, T0, fd::KIND as i32);
        a.li(T2, fd::KIND_ZERO);
        a.beq(T1, T2, "read_zero");
        a.li(T2, fd::KIND_FILE);
        a.beq(T1, T2, "read_file");
        a.li(T2, fd::KIND_PIPE_R);
        a.beq(T1, T2, "read_pipe");
        a.label("read_bad");
        a.li(A0, -1i64 as u64);
        a.ret();

        // /dev/zero: fill the buffer.
        a.label("read_zero");
        a.mv(T5, A2);
        a.mv(T4, A1);
        a.label("read_zero_loop");
        a.beqz(T5, "read_zero_done");
        a.sb(Zero, T4, 0);
        a.addi(T4, T4, 1);
        a.addi(T5, T5, -1);
        a.j("read_zero_loop");
        a.label("read_zero_done");
        a.mv(A0, A2);
        a.ret();

        // Regular file: copy out, advance (and wrap) the offset.
        a.label("read_file");
        a.ld(T1, T0, fd::INODE as i32);
        a.ld(T2, T0, fd::OFFSET as i32);
        // remaining = FILE_STRIDE - offset; clamp len.
        a.li(T3, layout::FILE_STRIDE);
        a.sub(T3, T3, T2);
        a.bltu(A2, T3, "read_file_noclamp");
        a.mv(A2, T3);
        a.label("read_file_noclamp");
        a.li(T3, layout::FILE_DATA);
        a.slli(T4, T1, 16); // × FILE_STRIDE
        a.add(T3, T3, T4);
        a.add(T3, T3, T2); // src
                           // Advance offset (wraps at FILE_STRIDE so loops never hit EOF).
        a.add(T2, T2, A2);
        a.andi_mask_offset(T2);
        a.sd(T2, T0, fd::OFFSET as i32);
        a.mv(T4, A1); // dst
        a.mv(A0, A2); // return n
        Self::emit_copy(a, T4, T3, A2, "read_file");
        a.ret();

        // write(fd, buf, len)
        a.label("sys_write");
        Self::emit_fd_lookup(a, "write_bad");
        a.ld(T1, T0, fd::KIND as i32);
        a.li(T2, fd::KIND_CONSOLE);
        a.beq(T1, T2, "write_console");
        a.li(T2, fd::KIND_NULL);
        a.beq(T1, T2, "write_null");
        a.li(T2, fd::KIND_FILE);
        a.beq(T1, T2, "write_file");
        a.li(T2, fd::KIND_PIPE_W);
        a.beq(T1, T2, "write_pipe");
        a.label("write_bad");
        a.li(A0, -1i64 as u64);
        a.ret();

        a.label("write_null");
        a.mv(A0, A2);
        a.ret();

        a.label("write_console");
        a.mv(T5, A2);
        a.mv(T4, A1);
        a.li(T3, mmio::CONSOLE_TX);
        a.label("write_console_loop");
        a.beqz(T5, "write_console_done");
        a.lbu(T6, T4, 0);
        a.sb(T6, T3, 0);
        a.addi(T4, T4, 1);
        a.addi(T5, T5, -1);
        a.j("write_console_loop");
        a.label("write_console_done");
        a.mv(A0, A2);
        a.ret();

        a.label("write_file");
        a.ld(T1, T0, fd::INODE as i32);
        a.ld(T2, T0, fd::OFFSET as i32);
        a.li(T3, layout::FILE_STRIDE);
        a.sub(T3, T3, T2);
        a.bltu(A2, T3, "write_file_noclamp");
        a.mv(A2, T3);
        a.label("write_file_noclamp");
        a.li(T3, layout::FILE_DATA);
        a.slli(T4, T1, 16);
        a.add(T3, T3, T4);
        a.add(T3, T3, T2); // dst in file
        a.add(T2, T2, A2);
        a.andi_mask_offset(T2);
        a.sd(T2, T0, fd::OFFSET as i32);
        a.mv(T4, A1); // src = user buf
        a.mv(A0, A2);
        Self::emit_copy(a, T3, T4, A2, "write_file");
        a.ret();

        // stat(path_id, buf) / fstat(fd, buf): fill {size, kind, id, 0}.
        a.label("sys_stat");
        a.li(T0, 4);
        a.bgeu(A0, T0, "stat_bad");
        a.li(T0, layout::FILE_STRIDE);
        a.sd(T0, A1, 0);
        a.li(T0, fd::KIND_FILE);
        a.sd(T0, A1, 8);
        a.sd(A0, A1, 16);
        a.sd(Zero, A1, 24);
        a.li(A0, 0);
        a.ret();
        a.label("stat_bad");
        a.li(A0, -1i64 as u64);
        a.ret();

        a.label("sys_fstat");
        Self::emit_fd_lookup(a, "fstat_bad");
        a.ld(T1, T0, fd::KIND as i32);
        a.beqz(T1, "fstat_bad");
        a.li(T2, layout::FILE_STRIDE);
        a.sd(T2, A1, 0);
        a.sd(T1, A1, 8);
        a.ld(T2, T0, fd::INODE as i32);
        a.sd(T2, A1, 16);
        a.sd(Zero, A1, 24);
        a.li(A0, 0);
        a.ret();
        a.label("fstat_bad");
        a.li(A0, -1i64 as u64);
        a.ret();
    }

    fn emit_sys_pipe(&mut self) {
        let a = &mut self.a;
        // pipe(which): which 0 -> PIPE_A (fds 8/9), 1 -> PIPE_B (10/11).
        a.label("sys_pipe");
        a.li(T0, 2);
        a.bgeu(A0, T0, "pipe_bad");
        // base = PIPE_A + which * (PIPE_B - PIPE_A)
        a.li(T1, layout::PIPE_B - layout::PIPE_A);
        a.mul(T1, T1, A0);
        a.li(T0, layout::PIPE_A);
        a.add(T0, T0, T1); // pipe object
                           // rd fd = 8 + 2*which, wr fd = 9 + 2*which
        a.slli(T2, A0, 1);
        a.addi(T2, T2, 8); // rd fd
        a.slli(T3, T2, 5);
        a.li(T4, layout::FDTABLE);
        a.add(T3, T3, T4); // rd entry
        a.li(T5, fd::KIND_PIPE_R);
        a.sd(T5, T3, fd::KIND as i32);
        a.sd(T0, T3, fd::INODE as i32);
        a.sd(Zero, T3, fd::OFFSET as i32);
        a.addi(T3, T3, fd::STRIDE as i32); // wr entry
        a.li(T5, fd::KIND_PIPE_W);
        a.sd(T5, T3, fd::KIND as i32);
        a.sd(T0, T3, fd::INODE as i32);
        a.sd(Zero, T3, fd::OFFSET as i32);
        // Reset cursors.
        a.sd(Zero, T0, pipe::RD as i32);
        a.sd(Zero, T0, pipe::WR as i32);
        // Return (rd << 8) | wr.
        a.slli(A0, T2, 8);
        a.addi(T2, T2, 1);
        a.or(A0, A0, T2);
        a.ret();
        a.label("pipe_bad");
        a.li(A0, -1i64 as u64);
        a.ret();

        // Pipe read: t0 = fd entry (set by sys_read).
        a.label("read_pipe");
        a.ld(T1, T0, fd::INODE as i32); // pipe base
        a.ld(T2, T1, pipe::RD as i32);
        a.ld(T3, T1, pipe::WR as i32);
        a.sub(T3, T3, T2); // available
        a.bltu(A2, T3, "read_pipe_noclamp");
        a.mv(A2, T3);
        a.label("read_pipe_noclamp");
        a.mv(A0, A2); // return n (0 when empty: non-blocking)
        a.mv(T4, A1); // dst
        a.label("read_pipe_loop");
        a.beqz(A2, "read_pipe_done");
        // src byte = buf[rd & (CAP-1)]
        a.andi(T5, T2, (pipe::CAP - 1) as i32);
        a.add(T5, T5, T1);
        a.lbu(T6, T5, pipe::BUF as i32);
        a.sb(T6, T4, 0);
        a.addi(T4, T4, 1);
        a.addi(T2, T2, 1);
        a.addi(A2, A2, -1);
        a.j("read_pipe_loop");
        a.label("read_pipe_done");
        a.sd(T2, T1, pipe::RD as i32);
        a.ret();

        // Pipe write: t0 = fd entry (set by sys_write).
        a.label("write_pipe");
        a.ld(T1, T0, fd::INODE as i32);
        a.ld(T2, T1, pipe::RD as i32);
        a.ld(T3, T1, pipe::WR as i32);
        // space = CAP - (wr - rd)
        a.sub(T2, T3, T2);
        a.li(T5, pipe::CAP);
        a.sub(T2, T5, T2);
        a.bltu(A2, T2, "write_pipe_noclamp");
        a.mv(A2, T2);
        a.label("write_pipe_noclamp");
        a.mv(A0, A2);
        a.mv(T4, A1); // src
        a.label("write_pipe_loop");
        a.beqz(A2, "write_pipe_done");
        a.andi(T5, T3, (pipe::CAP - 1) as i32);
        a.add(T5, T5, T1);
        a.lbu(T6, T4, 0);
        a.sb(T6, T5, pipe::BUF as i32);
        a.addi(T4, T4, 1);
        a.addi(T3, T3, 1);
        a.addi(A2, A2, -1);
        a.j("write_pipe_loop");
        a.label("write_pipe_done");
        a.sd(T3, T1, pipe::WR as i32);
        a.ret();
    }

    fn emit_sys_signals(&mut self) {
        let a = &mut self.a;
        a.label("sys_sigaction");
        a.sd(A0, S0, task::SIG_HANDLER as i32);
        a.li(A0, 0);
        a.ret();

        a.label("sys_raise");
        a.li(T0, 1);
        a.sd(T0, S0, task::SIG_PENDING as i32);
        a.li(A0, 0);
        a.ret();

        a.label("sys_sigreturn");
        a.ld(T0, S0, task::SIG_SAVED_EPC as i32);
        a.sd(T0, S0, task::SEPC as i32);
        a.li(A0, 0);
        a.ret();
    }

    fn emit_sys_yield(&mut self) {
        let pti = self.cfg.pti;
        let grid = self.grid();
        let sched_work = self.cfg.sched_work;
        let a = &mut self.a;
        a.label("sys_yield");
        // Single-task setups have no second context to run.
        a.li(T0, layout::TASK1);
        a.ld(T1, T0, task::SEPC as i32);
        a.beqz(T1, "yield_ret");
        // Scheduler accounting (runqueue bookkeeping, time slices) — the
        // part of a real context switch that dwarfs the register swap.
        a.li(T1, sched_work as u64);
        a.li(T2, 0x9e37_79b9_7f4a_7c15);
        a.mv(T3, S0);
        a.label("yield_acct");
        a.xor(T3, T3, T2);
        a.slli(T4, T3, 13);
        a.xor(T3, T3, T4);
        a.srli(T4, T3, 7);
        a.xor(T3, T3, T4);
        a.addi(T1, T1, -1);
        a.bnez(T1, "yield_acct");
        // The current task resumes with 0 in a0 once rescheduled.
        a.sd(Zero, S0, task::reg(10));
        // Flip to the other TCB (they differ in exactly one address bit).
        a.li(T0, layout::TASK0 ^ layout::TASK1);
        a.xor(S0, S0, T0);
        if !pti {
            // Address-space switch happens here; under PTI the exit path
            // loads the new task's satp anyway.
            a.ld(T5, S0, task::SATP as i32);
            if grid {
                // Hot path: a single call site, so the cheap hccall pair
                // suffices (Table 4: 5 cycles each vs 12 for hccalls).
                a.li(T4, gates::MM_YIELD);
                a.label("mm_yield_site");
                a.hccall(T4);
                a.label("mm_yield_back");
            } else {
                a.csrw(addr::SATP as u32, T5);
                a.sfence_vma(Zero, Zero);
            }
        }
        a.j("ret_to_user");
        a.label("yield_ret");
        a.li(A0, 0);
        a.ret();
        if !pti && grid {
            self.register_gate(gates::MM_YIELD, "mm_yield_site", "mm_yield_entry", Role::Mm);
            self.register_gate(
                gates::MM_YIELD_OUT,
                "mm_yield_outsite",
                "mm_yield_back",
                Role::Kernel,
            );
        }
    }

    /// The body of ioctl service `i`: CSR reads plus representative work
    /// (Table 5's services contain real formatting/lookup logic).
    /// Clobbers t0..t3; result in a0.
    fn emit_service_body(a: &mut Asm, i: usize, work: u32, uniq: &str) {
        let csrs: &[u16] = match i {
            0 => &[addr::CPUINFO0, addr::CPUINFO1],
            1 => &[addr::MTRR0, addr::MTRR1, addr::MTRR2, addr::MTRR3],
            2 => &[addr::HPMCOUNTER3],
            _ => &[addr::HPMCOUNTER4],
        };
        a.li(A0, 0);
        for c in csrs {
            a.csrr(T0, *c as u32);
            a.xor(A0, A0, T0);
        }
        // Representative service logic: mix the result for `work` rounds.
        let head = format!("srv_work_{uniq}");
        a.li(T1, work as u64);
        a.li(T2, 0x9e37_79b9_7f4a_7c15);
        a.label(&head);
        a.xor(A0, A0, T2);
        a.slli(T3, A0, 13);
        a.xor(A0, A0, T3);
        a.srli(T3, A0, 7);
        a.xor(A0, A0, T3);
        a.addi(T1, T1, -1);
        a.bnez(T1, &head);
    }

    fn emit_sys_ioctl(&mut self) {
        let grid = self.grid();
        let work = self.cfg.service_work;
        let a = &mut self.a;
        a.label("sys_ioctl");
        a.li(T0, 4);
        a.bgeu(A0, T0, "ioctl_bad");
        // Branch chain to the per-service stub.
        for i in 0..4u64 {
            a.li(T0, i);
            a.beq(A0, T0, &format!("ioctl_s{i}"));
        }
        a.label("ioctl_bad");
        a.li(A0, -1i64 as u64);
        a.ret();
        for i in 0..4usize {
            a.label(&format!("ioctl_s{i}"));
            if grid {
                a.li(T4, gates::SRV_IN + 2 * i as u64);
                a.label(&format!("srv{i}_site"));
                a.hccall(T4);
                a.label(&format!("srv{i}_back"));
                a.ret();
            } else {
                Self::emit_service_body(a, i, work, &format!("native{i}"));
                a.ret();
            }
        }
        if grid {
            for i in 0..4usize {
                self.register_gate(
                    gates::SRV_IN + 2 * i as u64,
                    &format!("srv{i}_site"),
                    &format!("srv{i}_entry"),
                    Role::Srv(i),
                );
                self.register_gate(
                    gates::SRV_OUT + 2 * i as u64,
                    &format!("srv{i}_outsite"),
                    &format!("srv{i}_back"),
                    Role::Kernel,
                );
            }
        }
    }

    fn emit_sys_mapctl(&mut self) {
        let mode = self.cfg.mode;
        let a = &mut self.a;
        // mapctl(page_idx, pte_value): update a scratch-page PTE.
        a.label("sys_mapctl");
        a.li(T0, layout::SCRATCH_COUNT);
        a.bgeu(A0, T0, "mapctl_bad");
        a.li(T0, layout::BOOT_PARAMS);
        a.ld(T0, T0, params::SCRATCH_LEAF as i32);
        a.slli(T1, A0, 3);
        a.add(T5, T0, T1); // t5 = &pte, a1 = new value
        match mode {
            Mode::Native => {
                a.sd(A1, T5, 0);
                a.sfence_vma(Zero, Zero);
            }
            Mode::Decomposed => {
                a.li(T4, gates::MM_MAPCTL);
                a.label("mm_mapctl_site");
                a.hccalls(T4);
            }
            Mode::Nested { .. } => {
                a.li(T4, gates::MON_MAPCTL);
                a.label("mon_mapctl_site");
                a.hccalls(T4);
            }
        }
        a.li(A0, 0);
        a.ret();
        a.label("mapctl_bad");
        a.li(A0, -1i64 as u64);
        a.ret();
        match mode {
            Mode::Native => {}
            Mode::Decomposed => {
                self.register_gate(gates::MM_MAPCTL, "mm_mapctl_site", "mm_map_entry", Role::Mm);
            }
            Mode::Nested { .. } => {
                self.register_gate(
                    gates::MON_MAPCTL,
                    "mon_mapctl_site",
                    "mon_map_entry",
                    Role::Monitor,
                );
            }
        }
    }

    fn emit_sys_vuln(&mut self) {
        let a = &mut self.a;
        // vuln(op): the "exploited kernel component" gadget. In the
        // decomposed kernel every op hits an ISA-Grid fault; natively
        // they all succeed — exactly Table 1's mitigation story.
        a.label("sys_vuln");
        a.li(T0, vuln_op::COUNT);
        a.bgeu(A0, T0, "vuln_bad");
        a.slli(T0, A0, 3);
        a.la(T1, "vuln_table");
        a.add(T1, T1, T0);
        a.ld(T1, T1, 0);
        a.jalr(Zero, T1, 0);
        a.label("vuln_bad");
        a.li(A0, -1i64 as u64);
        a.ret();

        a.label("vuln_write_stvec");
        a.csrr(T0, addr::STVEC as u32);
        a.csrw(addr::STVEC as u32, T0);
        a.j("vuln_ok");
        a.label("vuln_write_satp");
        a.csrr(T0, addr::SATP as u32);
        a.csrw(addr::SATP as u32, T0);
        a.j("vuln_ok");
        a.label("vuln_write_vfctl");
        a.li(T0, 0xdead);
        a.csrw(addr::VFCTL as u32, T0);
        a.j("vuln_ok");
        a.label("vuln_read_dbg");
        a.csrr(T0, addr::DBG0 as u32);
        a.j("vuln_ok");
        a.label("vuln_write_btbctl");
        a.li(T0, 1);
        a.csrw(addr::BTBCTL as u32, T0);
        a.j("vuln_ok");
        a.label("vuln_read_cycle");
        a.csrr(T0, addr::CYCLE as u32);
        a.j("vuln_ok");
        a.label("vuln_read_pmu");
        a.csrr(T0, addr::HPMCOUNTER3 as u32);
        a.j("vuln_ok");
        a.label("vuln_write_wpctl");
        a.csrrsi(Zero, addr::WPCTL as u32, 1);
        a.j("vuln_ok");
        a.label("vuln_ok");
        a.li(A0, 0);
        a.ret();

        a.align(8);
        a.label("vuln_table");
        for name in [
            "vuln_write_stvec",
            "vuln_write_satp",
            "vuln_write_vfctl",
            "vuln_read_dbg",
            "vuln_write_btbctl",
            "vuln_read_cycle",
            "vuln_read_pmu",
            "vuln_write_wpctl",
        ] {
            a.d64_label(name);
        }
    }

    // ---- cross-domain targets (MM domain, services, monitor) ----

    fn emit_cross_domain_targets(&mut self) {
        if !self.grid() {
            return;
        }
        let pti = self.cfg.pti;
        let work = self.cfg.service_work;
        let preempt = self.cfg.preempt;
        let log = matches!(self.cfg.mode, Mode::Nested { log: true });
        let a = &mut self.a;

        // Yield's satp writer: hccall pair, fixed return (argument in t5).
        if !pti {
            a.label("mm_yield_entry");
            a.csrw(addr::SATP as u32, T5);
            a.sfence_vma(Zero, Zero);
            a.li(T4, gates::MM_YIELD_OUT);
            a.label("mm_yield_outsite");
            a.hccall(T4);
        }
        // Preemption's satp writer (same shape, its own fixed return).
        if !pti && preempt {
            a.label("preempt_mm_entry");
            a.csrw(addr::SATP as u32, T5);
            a.sfence_vma(Zero, Zero);
            a.li(T4, gates::PREEMPT_OUT);
            a.label("preempt_mm_outsite");
            a.hccall(T4);
        }

        // Page-table writer for mapctl (decomposed; no write-protect).
        a.label("mm_map_entry");
        a.sd(A1, T5, 0);
        a.sfence_vma(Zero, Zero);
        a.hcrets();

        // Nested monitor: toggle WP around the PTE write, optionally log.
        // First the developer-defined caller check of §5.2: `pdomain`
        // must be the kernel basic domain (id 1) — a request arriving
        // from any other domain is refused without touching WP.
        a.label("mon_map_entry");
        a.csrr(T0, addr::GRID_PDOMAIN as u32);
        a.li(T1, 1);
        a.beq(T0, T1, "mon_map_ok");
        a.li(A0, -1i64 as u64);
        a.hcrets();
        a.label("mon_map_ok");
        a.csrrci(Zero, addr::WPCTL as u32, 1);
        a.sd(A1, T5, 0);
        if log {
            a.li(T0, layout::MONLOG);
            a.ld(T1, T0, monlog::CURSOR as i32);
            a.andi(T2, T1, (monlog::CAP - 1) as i32);
            a.slli(T2, T2, 3);
            a.add(T2, T2, T0);
            a.sd(A1, T2, monlog::ENTRIES as i32);
            a.addi(T1, T1, 1);
            a.sd(T1, T0, monlog::CURSOR as i32);
        }
        a.csrrsi(Zero, addr::WPCTL as u32, 1);
        a.sfence_vma(Zero, Zero);
        a.hcrets();

        // PTI fast paths (hccall pairs; single call sites).
        if pti {
            a.label("pti_k_entry");
            a.csrw(addr::SATP as u32, T5);
            a.sfence_vma(Zero, Zero);
            a.li(T4, gates::PTI_K_OUT);
            a.label("pti_k_outsite");
            a.hccall(T4);
            a.label("pti_u_entry");
            a.csrw(addr::SATP as u32, T5);
            a.sfence_vma(Zero, Zero);
            a.li(T4, gates::PTI_U_OUT);
            a.label("pti_u_outsite");
            a.hccall(T4);
        }

        // Service bodies in their own domains.
        for i in 0..4usize {
            a.label(&format!("srv{i}_entry"));
            Self::emit_service_body(a, i, work, &format!("dom{i}"));
            a.li(T4, gates::SRV_OUT + 2 * i as u64);
            a.label(&format!("srv{i}_outsite"));
            a.hccall(T4);
        }

        if pti {
            self.register_gate(
                gates::PTI_K_OUT,
                "pti_k_outsite",
                "pti_k_back",
                Role::Kernel,
            );
            self.register_gate(
                gates::PTI_U_OUT,
                "pti_u_outsite",
                "pti_u_back",
                Role::Kernel,
            );
        }
    }
}

/// Small extension so the builder can mask file offsets without spelling
/// out the two-instruction idiom everywhere.
trait OffsetMask {
    /// `reg &= FILE_STRIDE - 1`.
    fn andi_mask_offset(&mut self, reg: Reg) -> &mut Self;
}

impl OffsetMask for Asm {
    fn andi_mask_offset(&mut self, reg: Reg) -> &mut Self {
        // FILE_STRIDE = 0x10000 doesn't fit an andi immediate: shift out
        // the high bits instead.
        self.slli(reg, reg, 48);
        self.srli(reg, reg, 48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_assemble() {
        for cfg in [
            KernelConfig::native(),
            KernelConfig::native().with_pti(),
            KernelConfig::decomposed(),
            KernelConfig::decomposed().with_pti(),
            KernelConfig::nested(false),
            KernelConfig::nested(true),
        ] {
            let img = build_kernel(&cfg);
            assert!(img.prog.bytes.len() > 512, "{cfg:?} suspiciously small");
            assert!(img.prog.symbols.contains_key("s_trap"));
        }
    }

    #[test]
    fn native_kernel_registers_no_gates() {
        let img = build_kernel(&KernelConfig::native());
        assert!(img.gates.iter().all(|g| g.is_none()));
    }

    #[test]
    fn decomposed_kernel_registers_expected_gates() {
        let img = build_kernel(&KernelConfig::decomposed());
        let ids: Vec<usize> = img
            .gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_some())
            .map(|(i, _)| i)
            .collect();
        // boot, mm_yield, mm_mapctl, 4 × (srv in/out).
        assert!(ids.contains(&(gates::BOOT as usize)));
        assert!(ids.contains(&(gates::MM_YIELD as usize)));
        assert!(ids.contains(&(gates::MM_MAPCTL as usize)));
        for i in 0..4 {
            assert!(ids.contains(&((gates::SRV_IN + 2 * i) as usize)));
            assert!(ids.contains(&((gates::SRV_OUT + 2 * i) as usize)));
        }
        assert!(!ids.contains(&(gates::MON_MAPCTL as usize)));
        // Gate sites resolve to real symbols.
        for g in img.gates.iter().flatten() {
            assert!(img.prog.symbols.contains_key(&g.site), "{}", g.site);
            assert!(img.prog.symbols.contains_key(&g.dest), "{}", g.dest);
        }
    }

    #[test]
    fn pti_kernel_adds_trap_path_gates() {
        let img = build_kernel(&KernelConfig::decomposed().with_pti());
        assert!(img.gates[gates::PTI_K_IN as usize].is_some());
        assert!(img.gates[gates::PTI_U_OUT as usize].is_some());
        // PTI replaces the yield-time satp switch.
        assert!(img.gates[gates::MM_YIELD as usize].is_none());
    }

    #[test]
    fn nested_kernel_routes_mapctl_to_monitor() {
        let img = build_kernel(&KernelConfig::nested(true));
        let mon = img.gates[gates::MON_MAPCTL as usize].as_ref().unwrap();
        assert_eq!(mon.role, Role::Monitor);
        assert_eq!(mon.dest, "mon_map_entry");
        assert!(img.gates[gates::MM_MAPCTL as usize].is_none());
    }
}
