//! SMP boot: hart 0 runs the kernel, the other harts run workers.
//!
//! The guest kernel is single-threaded (two tasks on one hart), so the
//! multi-hart story mirrors early SMP firmware: hart 0 boots the full
//! kernel via [`SimBuilder::boot`], and each secondary hart is *minted*
//! as a bare worker that executes a routine from the user image against
//! the same shared memory. Every worker gets
//!
//! * a [`Pcu::mirror`] of hart 0's PCU — same trusted-memory tables and
//!   Table 2 registers, cold private caches;
//! * its own trusted-stack carve (stacks are per-hart state, §4.2);
//! * a per-hart call stack carved from the top of the user heap; and
//! * a starting ISA domain, bound with [`Pcu::force_domain`]
//!   (workers typically run in a restricted compute domain).
//!
//! The assembled [`isa_smp::Smp`] attaches all PCUs — hart 0's
//! included — to one shootdown cell, so a table mutation by the kernel
//! flushes worker privilege caches before their next commit.

use isa_asm::Program;
use isa_grid::{DomainId, Pcu};
use isa_sim::Machine;
use isa_smp::Smp;

use crate::layout;
use crate::machine::{Sim, SimBuilder, FAULT_HORIZON};
use crate::KernelImage;

/// Bytes of trusted stack carved per hart (hart 0's kernel carve and
/// each worker's carve are this size).
pub const TSTACK_STRIDE: u64 = 0x1_0000;

/// Bytes of user-heap call stack carved per worker hart.
pub const WORKER_STACK_STRIDE: u64 = 0x1_0000;

/// An SMP simulation: hart 0 runs the booted kernel, harts 1.. run
/// `worker` bodies; all share one memory image and shootdown cell.
pub struct SmpSim {
    /// The interleavable multi-hart machine.
    pub smp: Smp,
    /// The kernel image metadata (symbols, gates, config).
    pub kernel: KernelImage,
}

/// Mint a worker machine for `hart` of `sim`'s bus: mirror PCU, own
/// trusted stack, own call stack, PC at `entry`, starting in `domain`.
///
/// # Panics
///
/// Panics if `hart` is 0 (that's the kernel), outside the bus, or the
/// trusted-memory region cannot fit the hart's stack carve.
pub fn start_worker(sim: &Sim, hart: usize, entry: u64, domain: DomainId) -> Machine<Pcu> {
    assert!(hart >= 1, "hart 0 is the kernel");
    let bus = sim.machine.bus.for_hart(hart);
    let grid = sim.machine.ext.layout();
    let mut pcu = sim.machine.ext.mirror();
    let base = grid.tstack_base() + hart as u64 * TSTACK_STRIDE;
    assert!(
        base + TSTACK_STRIDE <= grid.tmem_end(),
        "trusted memory too small for hart {hart}'s stack"
    );
    pcu.set_trusted_stack(base, base + TSTACK_STRIDE);
    pcu.force_domain(domain);
    if let Some(seed) = sim.fault_seed {
        // Same base seed, per-hart sub-stream: the whole SMP fault
        // schedule stays a pure function of one seed.
        pcu.attach_faults(isa_fault::FaultPlan::for_hart(
            seed,
            sim.fault_rate_ppm,
            FAULT_HORIZON,
            hart,
        ));
    }
    let mut m = Machine::on_bus(pcu, bus);
    // Workers inherit hart 0's basic-block cache and JIT settings so a
    // `--no-bbcache` / `--no-jit` run is uniform on every hart.
    m.set_bbcache(sim.machine.bbcache.is_some());
    m.set_jit(sim.machine.jit_enabled());
    m.cpu.pc = entry;
    // Stacks grow down from the heap top: worker h owns slot h.
    let sp = layout::USER_HEAP + layout::USER_HEAP_SIZE - hart as u64 * WORKER_STACK_STRIDE - 0x100;
    m.cpu.set_reg(2, sp);
    m
}

/// Boot an SMP simulation: hart 0 boots the kernel with `user` as task
/// 0, and every other hart of the builder's bus starts at the `worker`
/// label of `user` in `worker_domain`.
///
/// Workers execute in M-mode at physical addresses (the user image is
/// identity-mapped), so `worker_domain` only bites once the worker
/// drops privilege; pass [`DomainId::INIT`] for unrestricted compute.
///
/// # Panics
///
/// Panics if the builder has fewer than 2 harts or `worker` is not a
/// symbol of `user`.
pub fn boot_smp(
    builder: &SimBuilder,
    user: &Program,
    worker: &str,
    worker_domain: DomainId,
) -> SmpSim {
    assert!(builder.harts >= 2, "boot_smp needs secondary harts");
    let sim = builder.boot(user, None);
    let entry = user.symbol(worker);
    let n = sim.machine.bus.harts();
    let mut machines = Vec::with_capacity(n);
    for h in 1..n {
        machines.push(start_worker(&sim, h, entry, worker_domain));
    }
    let Sim {
        machine, kernel, ..
    } = sim;
    machines.insert(0, machine);
    SmpSim {
        smp: Smp::from_machines(machines),
        kernel,
    }
}
