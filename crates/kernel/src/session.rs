//! The session-driver run API: step a booted machine in bounded
//! quanta and harvest structured [`Completion`]s, instead of the old
//! one-shot "boot → `run_to_halt` → read five accessors → exit" shape.
//!
//! Two drivers share the vocabulary:
//!
//! * [`Session`] wraps a single-hart [`Sim`]. It subsumes the
//!   boot/drain/harvest boilerplate the workload harnesses used to
//!   carry ([`Session::drain`] is the whole old pattern in one call),
//!   and it can also run *incrementally* ([`Session::step`]) so a host
//!   can interleave guest execution with its own bookkeeping.
//! * [`SmpSession`] wraps an [`isa_smp::Smp`] and **is** the
//!   interleaver: the host steps every runnable hart one bounded
//!   quantum per round, giving a deterministic virtual clock
//!   (`rounds × quantum`) against which open-loop load generators can
//!   schedule arrivals and measure latency. Between rounds the host
//!   owns the machine — it may inspect shared memory, inject requests
//!   (write a mailbox, flip a doorbell word) and harvest results; the
//!   serve harness in `isa-grid-bench` is built on exactly this.
//!
//! ## Quantum semantics
//!
//! A quantum is a *budget*, not a promise: a hart stops early when it
//! halts. Within a round harts are stepped in ascending hart order;
//! architectural state after round `r` is a pure function of (program,
//! quantum, the host writes performed at round boundaries `< r`).
//! Anything that perturbs that function — stepping a hart outside
//! [`SmpSession::round`], changing the quantum mid-run — invalidates a
//! session's determinism contract (see DESIGN.md).

use isa_obs::{AuditRecord, Counters, Profile};
use isa_sim::RunError;
use isa_smp::Smp;

use crate::machine::Sim;

/// Everything one completed run (or one drained session) produces:
/// the structured replacement for the old "call `run_to_halt`, then
/// `values()`, `cycles()`, `counters()`, `take_audit()`,
/// `take_profile()`, and time it yourself" call pattern.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Exit code the guest halted with.
    pub exit_code: u64,
    /// Values the guest reported through the value log.
    pub reported: Vec<u64>,
    /// Modeled cycles for the whole run.
    pub cycles: u64,
    /// Instructions executed.
    pub steps: u64,
    /// The unified counter snapshot (PCU, timing, run bookkeeping).
    pub counters: Counters,
    /// The PCU's audit log of denied checks, drained.
    pub audit: Vec<AuditRecord>,
    /// Cycle-attribution profile, when the builder enabled profiling.
    pub profile: Option<Profile>,
    /// Host wall-clock seconds spent stepping the machine.
    pub host_secs: f64,
}

/// A drivable single-hart simulation: a booted [`Sim`] plus the
/// bookkeeping to harvest a [`Completion`] whenever the guest halts.
pub struct Session {
    sim: Sim,
    host_secs: f64,
    /// Completion harvested when the guest halted. Harvesting *drains*
    /// the audit log and profile, so it must happen exactly once; later
    /// `step`/`drain`/`completion` calls replay this cached value
    /// instead of re-harvesting (or re-stepping a finished machine).
    done: Option<Completion>,
    /// Terminal error from a failed `drain`. A watchdogged guest is
    /// still hung — re-running it would just burn another full budget
    /// and fail again, so later drains surface this immediately.
    failed: Option<RunError>,
}

/// What a bounded-quantum step observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// The guest is still running (the quantum was exhausted).
    Running,
    /// The guest halted with this exit code.
    Halted(u64),
}

impl Session {
    /// Adopt a booted simulation.
    pub fn new(sim: Sim) -> Session {
        Session {
            sim,
            host_secs: 0.0,
            done: None,
            failed: None,
        }
    }

    /// The underlying simulation (shared-memory inspection, console).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The underlying simulation, mutably (request injection: host
    /// writes into guest memory between quanta).
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// Step the guest for at most `quantum` instructions, stopping
    /// early on halt. Host wall-clock spent stepping is accumulated
    /// into the eventual [`Completion::host_secs`].
    pub fn step(&mut self, quantum: u64) -> SessionState {
        if let Some(c) = &self.done {
            return SessionState::Halted(c.exit_code);
        }
        let t0 = std::time::Instant::now();
        let state = {
            // `run_steps` routes the quantum through the superblock JIT
            // when one is attached; blocks never cross the budget, so
            // the virtual clock advances exactly as if stepped.
            if self.sim.machine.bus.halted().is_none() {
                self.sim.machine.run_steps(quantum);
            }
            match self.sim.machine.bus.halted() {
                Some(code) => SessionState::Halted(code),
                None => SessionState::Running,
            }
        };
        self.host_secs += t0.elapsed().as_secs_f64();
        state
    }

    /// Run the guest to halt and harvest the [`Completion`] — the
    /// whole legacy `run_to_halt` + accessor-scrape pattern in one
    /// call. A hung guest surfaces as a structured [`RunError`], never
    /// a host panic, and the error carries the failure class: a hart
    /// stalled after a cause-28 `GridIntegrityFault` reports
    /// [`RunError::IntegrityFault`], everything else
    /// [`RunError::Watchdog`] — callers no longer re-derive the cause
    /// from the audit log. Idempotent after the session resolves: a
    /// second drain replays the cached completion (or the cached error
    /// — a hung guest stays hung) instead of re-stepping.
    pub fn drain(&mut self, max_steps: u64) -> Result<Completion, RunError> {
        if let Some(c) = &self.done {
            return Ok(c.clone());
        }
        if let Some(e) = self.failed {
            return Err(e);
        }
        let t0 = std::time::Instant::now();
        let exit_code = self.sim.run_to_halt(max_steps);
        self.host_secs += t0.elapsed().as_secs_f64();
        match exit_code {
            Ok(code) => Ok(self.harvest(code)),
            Err(e) => {
                self.failed = Some(e);
                Err(e)
            }
        }
    }

    /// Harvest the completion for an already-halted guest (used by
    /// [`Session::step`] drivers once they observe
    /// [`SessionState::Halted`]). Idempotent: harvesting drains the
    /// audit log and profile, so repeated calls replay the first
    /// harvest rather than returning an emptied one.
    pub fn completion(&mut self) -> Completion {
        if let Some(c) = &self.done {
            return c.clone();
        }
        let code = self
            .sim
            .machine
            .bus
            .halted()
            .expect("completion() on a running session");
        self.harvest(code)
    }

    fn harvest(&mut self, exit_code: u64) -> Completion {
        let counters = self.sim.counters();
        let c = Completion {
            exit_code,
            reported: self.sim.values(),
            cycles: self.sim.cycles(),
            steps: counters.run.steps,
            audit: self.sim.take_audit(),
            profile: self.sim.take_profile(),
            host_secs: self.host_secs,
            counters,
        };
        self.done = Some(c.clone());
        c
    }
}

/// A host-driven multi-hart session: the deterministic interleaver for
/// long-running load harnesses. Unlike [`Smp::run`] (which drives every
/// hart to halt in one call), the host advances the machine one
/// *round* at a time and owns it in between — that boundary is where
/// requests are injected and completions harvested.
pub struct SmpSession {
    smp: Smp,
    quantum: u64,
    rounds: u64,
    host_secs: f64,
}

impl SmpSession {
    /// Adopt an assembled [`Smp`], stepping each hart `quantum`
    /// instructions per round (clamped to at least 1).
    pub fn new(smp: Smp, quantum: u64) -> SmpSession {
        SmpSession {
            smp,
            quantum: quantum.max(1),
            rounds: 0,
            host_secs: 0.0,
        }
    }

    /// The underlying multi-hart machine.
    pub fn smp(&self) -> &Smp {
        &self.smp
    }

    /// The underlying multi-hart machine, mutably (setup, injection).
    pub fn smp_mut(&mut self) -> &mut Smp {
        &mut self.smp
    }

    /// The per-round step budget.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Overwrite the round counter (snapshot seam). A restored machine
    /// resumes at the round its snapshot was taken at, so the virtual
    /// clock — and everything scheduled against it — lines up with the
    /// unbroken run.
    pub fn set_rounds(&mut self, rounds: u64) {
        self.rounds = rounds;
    }

    /// The session's virtual clock: an upper bound on any hart's
    /// executed steps, in step-units. Deterministic — it advances with
    /// [`SmpSession::round`], never with host wall-clock.
    pub fn vclock(&self) -> u64 {
        self.rounds * self.quantum
    }

    /// Host wall-clock seconds spent stepping harts so far.
    pub fn host_secs(&self) -> f64 {
        self.host_secs
    }

    /// Whether hart `h` has halted (and with what code).
    pub fn halted(&self, h: usize) -> Option<u64> {
        self.smp.machine(h).bus.halted()
    }

    /// Hart `h`'s architectural cycle counter (CSR `cycle`). The serve
    /// driver samples this at round boundaries to translate hart-local
    /// event timestamps into the session's virtual clock.
    pub fn hart_cycles(&self, h: usize) -> u64 {
        self.smp
            .machine(h)
            .cpu
            .csrs
            .read_raw(isa_sim::csr::addr::CYCLE)
    }

    /// Install one enabled request tracer per hart and return the
    /// handles, in hart order. The driver tags each handle with the
    /// request in flight and drains it at round boundaries; tracers
    /// are observe-only (they never change modeled cycles, the
    /// interleaver, or digests).
    pub fn install_req_tracers(&mut self) -> Vec<isa_obs::ReqTracer> {
        self.smp.install_req_tracers()
    }

    /// Advance every hart selected by `runnable` one quantum, in
    /// ascending hart order, then bump the virtual clock. Harts that
    /// have halted are skipped regardless of `runnable`; a hart that
    /// halts mid-quantum stops early. Returns how many harts actually
    /// stepped.
    ///
    /// `runnable` lets the driver skip harts it knows are idle (e.g.
    /// a dispatcher whose doorbell is clear): determinism holds as
    /// long as the predicate is itself a pure function of
    /// host-visible machine state, because an idle hart's
    /// architectural state is unchanged by not stepping it.
    pub fn round(&mut self, mut runnable: impl FnMut(usize) -> bool) -> usize {
        let t0 = std::time::Instant::now();
        let mut stepped = 0;
        for h in 0..self.smp.harts() {
            if !runnable(h) {
                continue;
            }
            let m = self.smp.machine_mut(h);
            if m.bus.halted().is_some() {
                continue;
            }
            // JIT-accelerated quantum: identical step counts, halts
            // observed at the causing store (MMIO stores deoptimize).
            m.run_steps(self.quantum);
            stepped += 1;
        }
        self.rounds += 1;
        self.host_secs += t0.elapsed().as_secs_f64();
        stepped
    }

    /// Advance every non-halted hart one quantum.
    pub fn round_all(&mut self) -> usize {
        self.round(|_| true)
    }

    /// Harvest hart `h`'s completion-shaped snapshot: its exit code
    /// (0 when still running — SMP service harts often never halt),
    /// counters, audit log and profile. The audit log and profile are
    /// drained; counters are cumulative.
    pub fn harvest(&mut self, h: usize) -> Completion {
        let host_secs = self.host_secs;
        let m = self.smp.machine_mut(h);
        let mut counters = m.ext.counters();
        if let Some(bb) = &m.bbcache {
            counters.bbcache = bb.stats.counters();
        }
        if let Some(jit) = &m.jit {
            counters.jit = jit.stats.counters();
        }
        counters.run.steps = m.steps;
        let cycles = m.cpu.csrs.read_raw(isa_sim::csr::addr::CYCLE);
        Completion {
            exit_code: m.bus.halted().unwrap_or(0),
            reported: m.bus.value_log(),
            cycles,
            steps: m.steps,
            audit: m.ext.take_audit(),
            profile: m.prof.take(),
            host_secs,
            counters,
        }
    }

    /// Merged whole-machine counters (every hart + the `smp.*` block).
    pub fn counters(&self) -> Counters {
        self.smp.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelConfig, SimBuilder};

    fn exit7() -> isa_asm::Program {
        let mut a = crate::usr::program();
        crate::usr::exit_code(&mut a, 7);
        a.assemble().unwrap()
    }

    #[test]
    fn drain_matches_run_to_halt() {
        let prog = exit7();
        let mut old = SimBuilder::new(KernelConfig::decomposed()).boot(&prog, None);
        let want = old.run_to_halt(1_000_000).unwrap();

        let sim = SimBuilder::new(KernelConfig::decomposed()).boot(&prog, None);
        let c = Session::new(sim).drain(1_000_000).unwrap();
        assert_eq!(c.exit_code, want);
        assert_eq!(c.cycles, old.cycles());
        assert_eq!(c.counters.gates.calls, old.counters().gates.calls);
        assert!(c.audit.is_empty());
        assert!(c.steps > 0);
    }

    #[test]
    fn bounded_stepping_reaches_the_same_halt() {
        let prog = exit7();
        let sim = SimBuilder::new(KernelConfig::decomposed()).boot(&prog, None);
        let mut s = Session::new(sim);
        let mut quanta = 0;
        let code = loop {
            match s.step(16) {
                SessionState::Running => quanta += 1,
                SessionState::Halted(code) => break code,
            }
            assert!(quanta < 1_000_000, "guest never halted");
        };
        assert_eq!(code, 7);
        let c = s.completion();
        assert_eq!(c.exit_code, 7);
        assert!(quanta > 1, "boot takes more than one 16-step quantum");
    }

    #[test]
    fn watchdog_is_an_error_value() {
        let mut a = crate::usr::program();
        a.label("hang");
        a.j("hang");
        let prog = a.assemble().unwrap();
        let sim = SimBuilder::new(KernelConfig::native()).boot(&prog, None);
        let err = Session::new(sim).drain(10_000).unwrap_err();
        assert!(matches!(err, RunError::Watchdog { .. }));
    }

    #[test]
    fn resolved_session_replays_cached_completion() {
        let prog = exit7();
        let sim = SimBuilder::new(KernelConfig::decomposed()).boot(&prog, None);
        let mut s = Session::new(sim);
        let first = s.drain(1_000_000).unwrap();
        // Harvesting drained the audit log and profile; every later
        // call must replay the cached completion, not an emptied one.
        let again = s.drain(1_000_000).unwrap();
        assert_eq!(again.exit_code, first.exit_code);
        assert_eq!(again.cycles, first.cycles);
        assert_eq!(again.reported, first.reported);
        let c = s.completion();
        assert_eq!(c.cycles, first.cycles);
        // Stepping a finished session is a no-op reporting the halt.
        assert_eq!(s.step(100), SessionState::Halted(first.exit_code));
        assert_eq!(s.completion().steps, first.steps);
    }

    #[test]
    fn drain_after_watchdog_replays_the_error() {
        let mut a = crate::usr::program();
        a.label("hang");
        a.j("hang");
        let prog = a.assemble().unwrap();
        let sim = SimBuilder::new(KernelConfig::native()).boot(&prog, None);
        let mut s = Session::new(sim);
        let err = s.drain(10_000).unwrap_err();
        assert!(matches!(err, RunError::Watchdog { .. }));
        // The guest is still hung: a second drain must surface the
        // same structured error immediately, not spin another budget.
        let before = s.sim().machine.steps;
        let again = s.drain(10_000).unwrap_err();
        assert_eq!(again, err);
        assert_eq!(s.sim().machine.steps, before, "no re-stepping");
    }

    #[test]
    fn smp_session_rounds_are_restorable() {
        let bus = isa_sim::Bus::with_harts(isa_sim::DEFAULT_RAM_BASE, 1 << 20, 1);
        let smp = isa_smp::Smp::new(&bus, |_h, hb| {
            isa_sim::Machine::on_bus(isa_grid::Pcu::new(isa_grid::PcuConfig::eight_e()), hb)
        });
        let mut s = SmpSession::new(smp, 8);
        assert_eq!(s.vclock(), 0);
        s.set_rounds(42);
        assert_eq!(s.rounds(), 42);
        assert_eq!(s.vclock(), 42 * 8);
    }
}
