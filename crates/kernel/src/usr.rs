//! Helpers for emitting user-mode guest programs against the kernel's
//! syscall ABI (used by tests and by the `workloads` crate).

use isa_asm::{Asm, Reg, Reg::*};
use isa_sim::mmio;

use crate::layout::{sys, USER_BASE, USER_HEAP};

/// Start a user program: returns an assembler positioned at
/// [`USER_BASE`] with the `main` label defined.
pub fn program() -> Asm {
    let mut a = Asm::new(USER_BASE);
    a.label("main");
    a
}

/// Emit a syscall with up to three arguments already in a0..a2.
pub fn syscall(a: &mut Asm, nr: u64) {
    a.li(A7, nr);
    a.ecall();
}

/// Exit with the value currently in `reg`.
pub fn exit_with(a: &mut Asm, reg: Reg) {
    if reg != A0 {
        a.mv(A0, reg);
    }
    syscall(a, sys::EXIT);
}

/// Exit with a constant code.
pub fn exit_code(a: &mut Asm, code: u64) {
    a.li(A0, code);
    syscall(a, sys::EXIT);
}

/// Report the value in `reg` to the host through the VALUE_LOG MMIO
/// register (does not trap; usable from U mode).
pub fn report(a: &mut Asm, reg: Reg) {
    a.li(T6, mmio::VALUE_LOG);
    a.sd(reg, T6, 0);
}

/// Read the cycle counter into `reg`.
pub fn rdcycle(a: &mut Asm, reg: Reg) {
    a.rdcycle(reg);
}

/// Begin a measured region: cycle counter into s2.
pub fn measure_start(a: &mut Asm) {
    a.rdcycle(S2);
}

/// End a measured region: report `(cycles now) - s2` to the host.
pub fn measure_end_report(a: &mut Asm) {
    a.rdcycle(S3);
    a.sub(S3, S3, S2);
    report(a, S3);
}

/// Emit a counted loop: `body` runs `n` times with s4 as the (live)
/// down-counter. The label prefix must be unique within the program.
pub fn repeat(a: &mut Asm, n: u64, prefix: &str, body: impl FnOnce(&mut Asm)) {
    let head = format!("{prefix}_head");
    let done = format!("{prefix}_done");
    a.li(S4, n);
    a.label(&head);
    a.beqz(S4, &done);
    body(a);
    a.addi(S4, S4, -1);
    a.j(&head);
    a.label(&done);
}

/// The first address of the user heap (buffers live here; the top of the
/// region holds the user stacks).
pub fn heap_base() -> u64 {
    USER_HEAP
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelConfig, SimBuilder};

    #[test]
    fn repeat_runs_exact_count() {
        let mut a = program();
        a.li(S5, 0);
        repeat(&mut a, 17, "r", |a| {
            a.addi(S5, S5, 1);
        });
        exit_with(&mut a, S5);
        let user = a.assemble().unwrap();
        let mut sim = SimBuilder::new(KernelConfig::native()).boot(&user, None);
        assert_eq!(sim.run_to_halt(100_000).unwrap(), 17);
    }

    #[test]
    fn report_reaches_value_log() {
        let mut a = program();
        a.li(S5, 123);
        report(&mut a, S5);
        exit_code(&mut a, 0);
        let user = a.assemble().unwrap();
        let mut sim = SimBuilder::new(KernelConfig::native()).boot(&user, None);
        sim.run_to_halt(100_000).unwrap();
        assert_eq!(sim.values(), &[123]);
    }

    #[test]
    fn measurement_brackets_are_positive() {
        let mut a = program();
        measure_start(&mut a);
        repeat(&mut a, 100, "w", |a| {
            a.nop();
        });
        measure_end_report(&mut a);
        exit_code(&mut a, 0);
        let user = a.assemble().unwrap();
        let mut sim = SimBuilder::new(KernelConfig::native()).boot(&user, None);
        sim.run_to_halt(1_000_000).unwrap();
        assert!(sim.values()[0] >= 100);
    }
}
