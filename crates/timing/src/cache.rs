//! Set-associative cache timing models (tag arrays only — data values
//! live in the functional emulator).

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total size in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity.
    pub ways: usize,
    /// Access latency in cycles (charged on a hit at this level).
    pub latency: u64,
}

impl CacheParams {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size / (self.line * self.ways as u64)
    }
}

/// Hit/miss counters for a cache level.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

/// An LRU set-associative cache (tags only).
///
/// Runs once per retired instruction (and again per memory access), so
/// the tag store is a flat `[set × way]` array indexed by shift/mask —
/// the power-of-two geometry is asserted at construction.
#[derive(Debug, Clone)]
pub struct CacheModel {
    params: CacheParams,
    line_shift: u32,
    set_bits: u32,
    set_mask: u64,
    // slots[set * ways + way] = (tag, stamp, valid).
    slots: Vec<(u64, u64, bool)>,
    // Line and flat slot index of the most recent hit or fill. A repeat
    // access to the same line skips the set scan: nothing ran in
    // between, so that slot still holds the line and a full scan would
    // hit it. `u64::MAX` = invalid (initial state and after flush).
    last_line: u64,
    last_slot: usize,
    tick: u64,
    /// Access statistics.
    pub stats: CacheLevelStats,
}

impl CacheModel {
    /// Build a cache with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two geometry.
    pub fn new(params: CacheParams) -> CacheModel {
        assert!(
            params.line.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = params.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two"
        );
        CacheModel {
            params,
            line_shift: params.line.trailing_zeros(),
            set_bits: sets.trailing_zeros(),
            set_mask: sets - 1,
            slots: vec![(0, 0, false); (sets as usize) * params.ways],
            last_line: u64::MAX,
            last_slot: 0,
            tick: 0,
            stats: CacheLevelStats::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Access `paddr`; returns `true` on hit. A miss fills the line
    /// (evicting LRU; ties break toward the lowest way, matching the
    /// first-minimum scan this replaced).
    pub fn access(&mut self, paddr: u64) -> bool {
        self.tick += 1;
        let line = paddr >> self.line_shift;
        if line == self.last_line {
            self.slots[self.last_slot].1 = self.tick;
            self.stats.hits += 1;
            return true;
        }
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_bits;
        let base = set * self.params.ways;
        let ways = &mut self.slots[base..base + self.params.ways];
        let mut victim = 0;
        let mut victim_key = (true, u64::MAX);
        for (i, w) in ways.iter_mut().enumerate() {
            if w.2 && w.0 == tag {
                w.1 = self.tick;
                self.stats.hits += 1;
                self.last_line = line;
                self.last_slot = base + i;
                return true;
            }
            let key = (w.2, w.1);
            if key < victim_key {
                victim_key = key;
                victim = i;
            }
        }
        self.stats.misses += 1;
        ways[victim] = (tag, self.tick, true);
        self.last_line = line;
        self.last_slot = base + victim;
        false
    }

    /// Drop all lines.
    pub fn flush(&mut self) {
        for slot in &mut self.slots {
            slot.2 = false;
        }
        self.last_line = u64::MAX;
    }
}

/// A tiny fully-associative TLB model (the functional walker translates
/// every access; the TLB decides whether to *charge* for the walk).
#[derive(Debug, Clone)]
pub struct TlbModel {
    entries: Vec<(u64, u64)>, // (vpn, stamp)
    capacity: usize,
    tick: u64,
    /// Hit/miss statistics.
    pub stats: CacheLevelStats,
}

impl TlbModel {
    /// A TLB with `capacity` entries.
    pub fn new(capacity: usize) -> TlbModel {
        TlbModel {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: CacheLevelStats::default(),
        }
    }

    /// Access the page of `vaddr`; returns `true` on hit and fills on
    /// miss. Hits swap to the front of the scan order — eviction is by
    /// stamp, so this only shortens future scans for hot pages.
    pub fn access(&mut self, vaddr: u64) -> bool {
        self.tick += 1;
        let vpn = vaddr >> 12;
        if let Some(i) = self.entries.iter().position(|&(v, _)| v == vpn) {
            self.entries[i].1 = self.tick;
            self.entries.swap(0, i);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.tick));
        false
    }

    /// Flush all translations (satp write / sfence.vma).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

/// A gshare branch direction predictor plus a direct-mapped BTB — a
/// stand-in for the Gem5 tournament predictor of Table 3.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    history: u64,
    counters: Vec<u8>,
    btb: Vec<(u64, bool)>, // (pc, valid) — predicts "taken target known"
    /// Prediction statistics: hits = correct, misses = mispredictions.
    pub stats: CacheLevelStats,
}

impl BranchPredictor {
    /// A predictor with 2^`bits` two-bit counters.
    pub fn new(bits: u32) -> BranchPredictor {
        BranchPredictor {
            history: 0,
            counters: vec![1; 1 << bits],
            btb: vec![(0, false); 1024],
            stats: CacheLevelStats::default(),
        }
    }

    /// Record the outcome of a conditional branch at `pc`; returns `true`
    /// if the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let mask = self.counters.len() as u64 - 1;
        let idx = (((pc >> 2) ^ self.history) & mask) as usize;
        let predict_taken = self.counters[idx] >= 2;
        let ctr = &mut self.counters[idx];
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & mask;
        let correct = predict_taken == taken;
        if correct {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        correct
    }

    /// Record an indirect/unconditional jump at `pc`; returns `true` if
    /// the BTB already knew it (no redirect bubble).
    pub fn btb_lookup_update(&mut self, pc: u64) -> bool {
        let idx = ((pc >> 2) as usize) & (self.btb.len() - 1);
        let hit = self.btb[idx] == (pc, true);
        self.btb[idx] = (pc, true);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }
}

// ---- snapshot/restore ----
//
// The timing models are host-side but their state is guest-visible
// through `rdcycle`, so snapshots must carry it. Everything serializes
// to plain `u64` words: the owning `PipelineModel` concatenates the
// component streams in a fixed order and the geometry (slot counts,
// capacities) is implied by the config the restored model was built
// with.

/// Cursor over a flat word stream produced by the `save_words` methods.
pub(crate) struct WordReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> WordReader<'a> {
    pub(crate) fn new(words: &'a [u64]) -> WordReader<'a> {
        WordReader { words, pos: 0 }
    }

    /// Next word; a truncated stream is a host harness bug (the stream
    /// is length-checked by the snapshot container before it gets here),
    /// so running out reads as zero rather than panicking mid-restore.
    pub(crate) fn next(&mut self) -> u64 {
        let v = self.words.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        v
    }
}

impl CacheModel {
    pub(crate) fn save_words(&self, out: &mut Vec<u64>) {
        out.push(self.tick);
        out.push(self.last_line);
        out.push(self.last_slot as u64);
        out.push(self.stats.hits);
        out.push(self.stats.misses);
        for &(tag, stamp, valid) in &self.slots {
            out.push(tag);
            out.push(stamp);
            out.push(valid as u64);
        }
    }

    pub(crate) fn load_words(&mut self, r: &mut WordReader<'_>) {
        self.tick = r.next();
        self.last_line = r.next();
        self.last_slot = (r.next() as usize).min(self.slots.len().saturating_sub(1));
        self.stats.hits = r.next();
        self.stats.misses = r.next();
        for slot in &mut self.slots {
            *slot = (r.next(), r.next(), r.next() != 0);
        }
    }
}

impl TlbModel {
    pub(crate) fn save_words(&self, out: &mut Vec<u64>) {
        out.push(self.tick);
        out.push(self.stats.hits);
        out.push(self.stats.misses);
        out.push(self.entries.len() as u64);
        // Entry order is the scan order (hits swap to the front), so it
        // is part of the state, not an implementation detail.
        for &(vpn, stamp) in &self.entries {
            out.push(vpn);
            out.push(stamp);
        }
    }

    pub(crate) fn load_words(&mut self, r: &mut WordReader<'_>) {
        self.tick = r.next();
        self.stats.hits = r.next();
        self.stats.misses = r.next();
        let n = (r.next() as usize).min(self.capacity);
        self.entries.clear();
        for _ in 0..n {
            let vpn = r.next();
            let stamp = r.next();
            self.entries.push((vpn, stamp));
        }
    }
}

impl BranchPredictor {
    pub(crate) fn save_words(&self, out: &mut Vec<u64>) {
        out.push(self.history);
        out.push(self.stats.hits);
        out.push(self.stats.misses);
        for &c in &self.counters {
            out.push(c as u64);
        }
        for &(pc, valid) in &self.btb {
            out.push(pc);
            out.push(valid as u64);
        }
    }

    pub(crate) fn load_words(&mut self, r: &mut WordReader<'_>) {
        self.history = r.next();
        self.stats.hits = r.next();
        self.stats.misses = r.next();
        for c in &mut self.counters {
            *c = r.next() as u8 & 3;
        }
        for slot in &mut self.btb {
            *slot = (r.next(), r.next() != 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheModel {
        // 4 sets × 2 ways × 64B lines = 512 B.
        CacheModel::new(CacheParams {
            size: 512,
            line: 64,
            ways: 2,
            latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103f), "same line");
        assert!(!c.access(0x1040), "next line");
    }

    #[test]
    fn associativity_and_lru_eviction() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets*line = 256).
        c.access(0x0);
        c.access(0x100);
        c.access(0x0); // touch: 0x100 becomes LRU
        c.access(0x200); // evicts 0x100
        assert!(c.access(0x0));
        assert!(!c.access(0x100), "was evicted");
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        c.access(0x40);
        c.flush();
        assert!(!c.access(0x40));
    }

    #[test]
    fn sets_geometry() {
        let p = CacheParams {
            size: 32 << 10,
            line: 64,
            ways: 4,
            latency: 2,
        };
        assert_eq!(p.sets(), 128);
    }

    #[test]
    fn tlb_hits_within_page_misses_across() {
        let mut t = TlbModel::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn tlb_lru_and_flush() {
        let mut t = TlbModel::new(2);
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // 0x2000 is LRU
        t.access(0x3000); // evict 0x2000
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
        t.flush();
        assert!(!t.access(0x1000));
    }

    #[test]
    fn predictor_learns_a_loop() {
        let mut p = BranchPredictor::new(12);
        // A loop branch taken 100 times: after warmup it must predict well.
        for _ in 0..100 {
            p.predict_and_update(0x8000_0000, true);
        }
        assert!(p.stats.hits > 80, "hits={}", p.stats.hits);
    }

    #[test]
    fn btb_learns_jump_targets() {
        let mut p = BranchPredictor::new(12);
        assert!(!p.btb_lookup_update(0x1000));
        assert!(p.btb_lookup_update(0x1000));
    }
}
