//! # isa-timing — cycle-cost models for the ISA-Grid reproduction
//!
//! Converts the retired-instruction event stream of `isa-sim` into
//! cycles, standing in for the paper's two evaluation platforms:
//!
//! * [`TimingConfig::rocket`] — the in-order RISC-V Rocket core on an
//!   FPGA (100 MHz, blocking caches, DDR3 latencies);
//! * [`TimingConfig::o3`] — the 8-wide out-of-order x86 core simulated
//!   with Gem5 (Table 3: 192-entry ROB, 3-level cache hierarchy, 30 ns
//!   DRAM).
//!
//! The models are *event-driven approximations*, not microarchitectural
//! simulators: each retired instruction is charged a base issue slot plus
//! stalls (cache misses, TLB walks, branch mispredictions, serialization,
//! PCU privilege-cache misses, gate switches). Constants are calibrated
//! against the latency anchors the paper publishes in Table 4, so the
//! domain-switch and privilege-check costs carry the right magnitudes;
//! application-level overheads then emerge from the instruction streams.
//!
//! ## Example
//!
//! ```
//! use isa_asm::{Asm, Reg::*};
//! use isa_sim::{Machine, NullExtension, mmio};
//! use isa_timing::{PipelineModel, TimingConfig};
//!
//! let mut a = Asm::new(0x8000_0000);
//! a.li(T0, 1000);
//! a.label("loop");
//! a.addi(T0, T0, -1);
//! a.bnez(T0, "loop");
//! a.li(T6, mmio::HALT);
//! a.sd(Zero, T6, 0);
//! let prog = a.assemble()?;
//!
//! let mut m = Machine::new(NullExtension)
//!     .with_timing(Box::new(PipelineModel::new(TimingConfig::rocket())));
//! m.load_program(&prog);
//! m.run(100_000);
//! let cycles = m.cpu.csrs.read_raw(isa_sim::csr::addr::CYCLE);
//! assert!(cycles > 2000); // 2 insts/iteration on an in-order core
//! # Ok::<(), isa_asm::AsmError>(())
//! ```

#![warn(missing_docs)]

mod cache;
mod model;

pub use cache::{BranchPredictor, CacheLevelStats, CacheModel, CacheParams, TlbModel};
pub use model::{PipelineModel, TimingConfig, TimingStats};

/// Convenience: a machine timing sink for the given platform.
pub fn sink(cfg: TimingConfig) -> Box<PipelineModel> {
    Box::new(PipelineModel::new(cfg))
}
