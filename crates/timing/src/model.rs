//! The pipeline cycle-cost models.
//!
//! One [`PipelineModel`] implements both evaluation platforms of the
//! paper, selected by [`TimingConfig`] preset:
//!
//! * [`TimingConfig::rocket`] — the 5-stage in-order RISC-V Rocket core
//!   the paper runs on a VC707 FPGA at 100 MHz;
//! * [`TimingConfig::o3`] — the 8-wide out-of-order x86 core simulated
//!   with Gem5 (Table 3 parameters).
//!
//! The per-event constants are calibrated so that the *microbenchmark
//! anchors the paper publishes* come out right (Table 4: `hccall` ≈ 5
//! cycles on Rocket and ≈ 34 on the O3 core, `hccalls`/`hcrets` ≈ 12/12
//! and ≈ 52/44, cache-missing loads > 120 and > 200 cycles). Relative
//! application overheads then *emerge* from the instruction streams.

use isa_sim::{Kind, Retired, TimingSink};

use crate::cache::{BranchPredictor, CacheModel, CacheParams, TlbModel, WordReader};

/// All knobs of the cycle model.
#[derive(Debug, Clone, Copy)]
pub struct TimingConfig {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Sustained issue width (1 = in-order scalar).
    pub issue_width: u64,
    /// Whether the core is out-of-order (partially hides data-miss
    /// latency behind independent work).
    pub out_of_order: bool,
    /// L1 instruction cache.
    pub l1i: CacheParams,
    /// L1 data cache.
    pub l1d: CacheParams,
    /// Unified L2, if present.
    pub l2: Option<CacheParams>,
    /// Shared L3, if present.
    pub l3: Option<CacheParams>,
    /// DRAM latency in cycles after the last cache level misses.
    pub mem_latency: u64,
    /// Pipeline refill after a branch misprediction.
    pub mispredict_penalty: u64,
    /// Redirect bubble for a BTB-missing jump.
    pub jump_bubble: u64,
    /// Full-pipeline serialization (CSR access, fences, xRET, gates).
    pub serialize_penalty: u64,
    /// Extra cycles for a multiply.
    pub mul_latency: u64,
    /// Extra cycles for a divide.
    pub div_latency: u64,
    /// Trap/exception redirect cost.
    pub trap_penalty: u64,
    /// Page-table-walk charge per TLB miss.
    pub walk_penalty: u64,
    /// Instruction/data TLB entries.
    pub tlb_entries: usize,
    /// Branch-predictor index bits.
    pub predictor_bits: u32,
    /// Gate redirect cost beyond serialization (the SGT lookup + domain
    /// switch datapath).
    pub gate_redirect: u64,
    /// Cost per trusted-stack push word (`hccalls`).
    pub tstack_push: u64,
    /// Cost per trusted-stack pop word (`hcrets` — cheaper than pushes on
    /// the O3 core thanks to store-to-load forwarding, §7.1).
    pub tstack_pop: u64,
    /// Extra bookkeeping on extended gates (stack-pointer update).
    pub extended_extra: u64,
    /// Memory latency of a PCU privilege-cache miss (HPT/SGT read).
    pub pcu_miss_latency: u64,
    /// Cycles charged per privilege-cache entry discarded by a
    /// cross-hart shootdown (invalidate + tag rewrite; the refill
    /// itself is paid later as an ordinary PCU miss).
    pub shootdown_flush_penalty: u64,
}

impl TimingConfig {
    /// The RISC-V Rocket-like in-order platform (§7 "RISC-V Prototype").
    pub fn rocket() -> TimingConfig {
        TimingConfig {
            name: "rocket-inorder",
            issue_width: 1,
            out_of_order: false,
            l1i: CacheParams {
                size: 16 << 10,
                line: 64,
                ways: 4,
                latency: 1,
            },
            l1d: CacheParams {
                size: 16 << 10,
                line: 64,
                ways: 4,
                latency: 1,
            },
            l2: None,
            l3: None,
            // Table 4: cache-missing load/store > 120 cycles at 100 MHz
            // against DDR3.
            mem_latency: 120,
            mispredict_penalty: 3,
            jump_bubble: 2,
            serialize_penalty: 4,
            mul_latency: 4,
            div_latency: 33,
            trap_penalty: 4,
            walk_penalty: 6,
            tlb_entries: 32,
            predictor_bits: 9,
            // Calibrated to Table 4: hccall = 5, hccalls/hcrets = 12/12.
            gate_redirect: 0,
            tstack_push: 3,
            tstack_pop: 3,
            extended_extra: 1,
            pcu_miss_latency: 120,
            shootdown_flush_penalty: 2,
        }
    }

    /// The Gem5-x86-like out-of-order platform (Table 3).
    pub fn o3() -> TimingConfig {
        TimingConfig {
            name: "gem5-o3",
            issue_width: 8,
            out_of_order: true,
            l1i: CacheParams {
                size: 32 << 10,
                line: 64,
                ways: 4,
                latency: 2,
            },
            l1d: CacheParams {
                size: 32 << 10,
                line: 64,
                ways: 4,
                latency: 2,
            },
            l2: Some(CacheParams {
                size: 256 << 10,
                line: 64,
                ways: 16,
                latency: 20,
            }),
            l3: Some(CacheParams {
                size: 2 << 20,
                line: 64,
                ways: 16,
                latency: 32,
            }),
            // 30 ns after cache miss (Table 3); > 200 cycles end to end
            // with the L2/L3 lookups in front (Table 4).
            mem_latency: 160,
            mispredict_penalty: 14,
            jump_bubble: 4,
            // ROB drain + frontend refill; calibrated to hccall = 34.
            serialize_penalty: 33,
            mul_latency: 0, // pipelined and hidden by the OoO window
            div_latency: 20,
            trap_penalty: 40,
            walk_penalty: 20,
            tlb_entries: 64,
            predictor_bits: 12,
            gate_redirect: 0,
            // Calibrated to Table 4: hccalls = 52, hcrets = 44.
            tstack_push: 9,
            tstack_pop: 5,
            extended_extra: 0,
            pcu_miss_latency: 160,
            shootdown_flush_penalty: 2,
        }
    }
}

/// Aggregate cycle accounting, split by cause.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TimingStats {
    /// Events processed (instructions + trapped attempts).
    pub events: u64,
    /// Total cycles charged.
    pub cycles: u64,
    /// Cycles stalled on instruction fetch.
    pub fetch_stall: u64,
    /// Cycles stalled on data access.
    pub data_stall: u64,
    /// Cycles lost to branch mispredictions and jump bubbles.
    pub branch_stall: u64,
    /// Cycles lost to serialization (CSRs, fences, xRET).
    pub serialize_stall: u64,
    /// Cycles lost to traps.
    pub trap_stall: u64,
    /// Cycles lost to TLB walks.
    pub walk_stall: u64,
    /// Cycles spent in PCU privilege-cache misses.
    pub pcu_stall: u64,
    /// Cycles spent in gate switches (redirect + trusted stack).
    pub gate_cycles: u64,
    /// Cycles spent flushing privilege caches on cross-hart shootdowns.
    pub shootdown_stall: u64,
}

/// The cycle-cost model. Implements [`TimingSink`]; plug into a
/// [`isa_sim::Machine`] via `with_timing`.
#[derive(Debug)]
pub struct PipelineModel {
    cfg: TimingConfig,
    l1i: CacheModel,
    l1d: CacheModel,
    l2: Option<CacheModel>,
    l3: Option<CacheModel>,
    itlb: TlbModel,
    dtlb: TlbModel,
    bp: BranchPredictor,
    frac: u64,
    /// Issue-slot increment in eighths of a cycle (`8 / issue_width`),
    /// precomputed so `retire` avoids a per-instruction division.
    frac_inc: u64,
    /// Aggregate statistics.
    pub stats: TimingStats,
}

impl PipelineModel {
    /// Build a model from a configuration.
    pub fn new(cfg: TimingConfig) -> PipelineModel {
        PipelineModel {
            cfg,
            l1i: CacheModel::new(cfg.l1i),
            l1d: CacheModel::new(cfg.l1d),
            l2: cfg.l2.map(CacheModel::new),
            l3: cfg.l3.map(CacheModel::new),
            itlb: TlbModel::new(cfg.tlb_entries),
            dtlb: TlbModel::new(cfg.tlb_entries),
            bp: BranchPredictor::new(cfg.predictor_bits),
            frac: 0,
            frac_inc: 8 / cfg.issue_width,
            stats: TimingStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TimingConfig {
        &self.cfg
    }

    /// Snapshot the cycle attribution into the observability layer's
    /// [`isa_obs::TimingCounters`] (the `timing.*` section of the
    /// unified counter registry).
    pub fn counters(&self) -> isa_obs::TimingCounters {
        let s = &self.stats;
        isa_obs::TimingCounters {
            events: s.events,
            cycles: s.cycles,
            fetch_stall: s.fetch_stall,
            data_stall: s.data_stall,
            branch_stall: s.branch_stall,
            serialize_stall: s.serialize_stall,
            trap_stall: s.trap_stall,
            walk_stall: s.walk_stall,
            pcu_stall: s.pcu_stall,
            gate_cycles: s.gate_cycles,
            shootdown_stall: s.shootdown_stall,
        }
    }

    /// Walk the hierarchy below L1; returns the extra stall cycles.
    fn below_l1(&mut self, paddr: u64) -> u64 {
        let mut stall = 0;
        if let Some(l2) = &mut self.l2 {
            stall += l2.params().latency;
            if l2.access(paddr) {
                return stall;
            }
        }
        if let Some(l3) = &mut self.l3 {
            stall += l3.params().latency;
            if l3.access(paddr) {
                return stall;
            }
        }
        stall + self.cfg.mem_latency
    }

    fn fetch_stall(&mut self, paddr: u64) -> u64 {
        if self.l1i.access(paddr) {
            0
        } else {
            self.below_l1(paddr)
        }
    }

    fn data_stall(&mut self, paddr: u64) -> u64 {
        if self.l1d.access(paddr) {
            0
        } else {
            let raw = self.below_l1(paddr);
            if self.cfg.out_of_order && raw < self.cfg.mem_latency {
                // The OoO window hides part of an L2/L3 hit behind
                // independent work; DRAM latency is too long to hide.
                raw / 4
            } else {
                raw
            }
        }
    }

    /// Fetch-side charge for one instruction.
    fn charge_fetch(&mut self, ev: &Retired) -> u64 {
        let mut c = 0;
        if ev.walk_reads > 0 && !self.itlb.access(ev.pc) {
            c += self.cfg.walk_penalty;
            self.stats.walk_stall += self.cfg.walk_penalty;
        }
        let f = self.fetch_stall(ev.fetch_paddr);
        self.stats.fetch_stall += f;
        c + f
    }
}

impl TimingSink for PipelineModel {
    fn retire(&mut self, ev: &Retired) -> u64 {
        self.stats.events += 1;
        // Base issue slot: 1 cycle in-order, 1/width on the wide core.
        // Serializing instructions drain the window and always occupy a
        // full slot.
        let mut cycles;
        if ev.kind.is_some_and(|k| k.is_serializing()) {
            cycles = 1;
            self.frac = 0;
        } else {
            self.frac += self.frac_inc;
            cycles = self.frac / 8;
            self.frac %= 8;
        }

        cycles += self.charge_fetch(ev);

        let Some(kind) = ev.kind else {
            // Fetch/decode fault: only the trap redirect applies.
            let t = self.cfg.trap_penalty;
            self.stats.trap_stall += t;
            self.stats.cycles += cycles + t;
            return cycles + t;
        };

        // Data side.
        if let Some(m) = ev.mem {
            if ev.walk_reads > 0 && !self.dtlb.access(m.vaddr) {
                cycles += self.cfg.walk_penalty;
                self.stats.walk_stall += self.cfg.walk_penalty;
            }
            let d = self.data_stall(m.paddr);
            self.stats.data_stall += d;
            cycles += d;
        }

        // Control flow.
        if kind.is_branch() {
            if !self.bp.predict_and_update(ev.pc, ev.branch_taken) {
                cycles += self.cfg.mispredict_penalty;
                self.stats.branch_stall += self.cfg.mispredict_penalty;
            }
        } else if matches!(kind, Kind::Jal | Kind::Jalr) && !self.bp.btb_lookup_update(ev.pc) {
            cycles += self.cfg.jump_bubble;
            self.stats.branch_stall += self.cfg.jump_bubble;
        }

        // Long-latency functional units.
        if kind.is_muldiv() {
            let extra = if matches!(
                kind,
                Kind::Div
                    | Kind::Divu
                    | Kind::Rem
                    | Kind::Remu
                    | Kind::Divw
                    | Kind::Divuw
                    | Kind::Remw
                    | Kind::Remuw
            ) {
                self.cfg.div_latency
            } else {
                self.cfg.mul_latency
            };
            cycles += extra;
        }

        // Serialization. Gates are priced separately below; the TLB is
        // flushed on translation-control updates.
        if kind.is_serializing() && !kind.is_grid_custom() {
            cycles += self.cfg.serialize_penalty;
            self.stats.serialize_stall += self.cfg.serialize_penalty;
            let csr = (ev.raw >> 20) as u16 & 0xfff;
            if kind == Kind::SfenceVma || (kind.is_csr_access() && csr == 0x180) {
                self.itlb.flush();
                self.dtlb.flush();
            }
        }

        // ISA-Grid costs.
        let e = &ev.ext;
        if e.gate_switch || kind.is_grid_custom() {
            let mut g = 0;
            if e.gate_switch {
                g += self.cfg.serialize_penalty + self.cfg.gate_redirect;
            }
            if e.tstack_ops > 0 {
                let per = if kind == Kind::Hcrets {
                    self.cfg.tstack_pop
                } else {
                    self.cfg.tstack_push
                };
                g += e.tstack_ops as u64 * per + self.cfg.extended_extra;
            }
            // pfch issues low-priority fills: one issue slot each.
            g += e.prefetch_reads as u64;
            self.stats.gate_cycles += g;
            cycles += g;
        }
        let pcu_misses = (e.hpt_inst_miss + e.hpt_reg_miss + e.hpt_mask_miss + e.sgt_miss) as u64;
        if pcu_misses > 0 {
            let p = pcu_misses * self.cfg.pcu_miss_latency;
            self.stats.pcu_stall += p;
            cycles += p;
        }
        if e.shootdown_flushed > 0 {
            let s = e.shootdown_flushed as u64 * self.cfg.shootdown_flush_penalty;
            self.stats.shootdown_stall += s;
            cycles += s;
        }

        if ev.trap_cause.is_some() {
            cycles += self.cfg.trap_penalty;
            self.stats.trap_stall += self.cfg.trap_penalty;
        }

        self.stats.cycles += cycles;
        cycles
    }

    fn interrupt(&mut self) -> u64 {
        let c = self.cfg.trap_penalty;
        self.stats.trap_stall += c;
        self.stats.cycles += c;
        c
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    /// Serialize all mutable model state. Guest code observes modeled
    /// cycles through `rdcycle`, so a restored machine must resume with
    /// exactly the warmth (cache tags, TLB order, predictor counters)
    /// the snapshotted one had, or cycle counts diverge.
    fn save_state(&self) -> Vec<u64> {
        let mut out = Vec::new();
        out.push(self.frac);
        let s = &self.stats;
        out.extend_from_slice(&[
            s.events,
            s.cycles,
            s.fetch_stall,
            s.data_stall,
            s.branch_stall,
            s.serialize_stall,
            s.trap_stall,
            s.walk_stall,
            s.pcu_stall,
            s.gate_cycles,
            s.shootdown_stall,
        ]);
        self.l1i.save_words(&mut out);
        self.l1d.save_words(&mut out);
        if let Some(l2) = &self.l2 {
            l2.save_words(&mut out);
        }
        if let Some(l3) = &self.l3 {
            l3.save_words(&mut out);
        }
        self.itlb.save_words(&mut out);
        self.dtlb.save_words(&mut out);
        self.bp.save_words(&mut out);
        out
    }

    /// Restore state saved by [`TimingSink::save_state`] on a model built
    /// with the *same* [`TimingConfig`] (geometry is implied, not stored).
    fn load_state(&mut self, words: &[u64]) {
        let mut r = WordReader::new(words);
        self.frac = r.next();
        let s = &mut self.stats;
        s.events = r.next();
        s.cycles = r.next();
        s.fetch_stall = r.next();
        s.data_stall = r.next();
        s.branch_stall = r.next();
        s.serialize_stall = r.next();
        s.trap_stall = r.next();
        s.walk_stall = r.next();
        s.pcu_stall = r.next();
        s.gate_cycles = r.next();
        s.shootdown_stall = r.next();
        self.l1i.load_words(&mut r);
        self.l1d.load_words(&mut r);
        if let Some(l2) = &mut self.l2 {
            l2.load_words(&mut r);
        }
        if let Some(l3) = &mut self.l3 {
            l3.load_words(&mut r);
        }
        self.itlb.load_words(&mut r);
        self.dtlb.load_words(&mut r);
        self.bp.load_words(&mut r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa_sim::{ExtEvents, MemAccess, Priv};

    fn ev(pc: u64) -> Retired {
        Retired {
            pc,
            fetch_paddr: pc,
            next_pc: pc + 4,
            kind: Some(Kind::Addi),
            raw: 0x13,
            priv_level: Priv::M,
            mem: None,
            branch_taken: false,
            trap_cause: None,
            walk_reads: 0,
            ext: ExtEvents::default(),
        }
    }

    #[test]
    fn straight_line_code_is_about_one_ipc_inorder() {
        let mut m = PipelineModel::new(TimingConfig::rocket());
        // Same line: first fetch misses, then all hit.
        let mut total = 0;
        for i in 0..1000 {
            let mut e = ev(0x8000_0000 + (i % 16) * 4);
            e.kind = Some(Kind::Addi);
            total += m.retire(&e);
        }
        assert!(total < 1300, "expected ~1 IPC, got {total} cycles");
        assert!(total >= 1000);
    }

    #[test]
    fn wide_core_exceeds_one_ipc() {
        let mut m = PipelineModel::new(TimingConfig::o3());
        let mut total = 0;
        for i in 0..1000 {
            total += m.retire(&ev(0x8000_0000 + (i % 16) * 4));
        }
        assert!(
            total < 400,
            "8-wide core should be far below 1 CPI: {total}"
        );
    }

    #[test]
    fn cache_missing_load_exceeds_table4_floor() {
        // Table 4: > 120 cycles on Rocket, > 200 on the O3 core.
        for (cfg, floor) in [(TimingConfig::rocket(), 120), (TimingConfig::o3(), 200)] {
            let mut m = PipelineModel::new(cfg);
            let mut e = ev(0x8000_0000);
            e.kind = Some(Kind::Ld);
            // A fresh line far away: L1/L2/L3 all miss.
            e.mem = Some(MemAccess {
                vaddr: 0x9999_0000,
                paddr: 0x9999_0000,
                len: 8,
                write: false,
            });
            let c = m.retire(&e);
            assert!(c > floor, "{}: {c} <= {floor}", cfg.name);
        }
    }

    #[test]
    fn hccall_matches_table4_anchors() {
        // Warm gate (no SGT miss): 5 cycles on Rocket, 34 on O3.
        for (cfg, want) in [(TimingConfig::rocket(), 5), (TimingConfig::o3(), 34)] {
            let mut m = PipelineModel::new(cfg);
            m.retire(&ev(0x8000_0000)); // warm the fetch line
            let mut e = ev(0x8000_0004);
            e.kind = Some(Kind::Hccall);
            e.ext.gate_switch = true;
            let c = m.retire(&e);
            assert_eq!(c, want, "{}", cfg.name);
        }
    }

    #[test]
    fn extended_gates_match_table4_anchors() {
        for (cfg, call, ret) in [
            (TimingConfig::rocket(), 12, 12),
            (TimingConfig::o3(), 52, 44),
        ] {
            let mut m = PipelineModel::new(cfg);
            m.retire(&ev(0x8000_0000));
            let mut e = ev(0x8000_0004);
            e.kind = Some(Kind::Hccalls);
            e.ext.gate_switch = true;
            e.ext.tstack_ops = 2;
            assert_eq!(m.retire(&e), call, "{} hccalls", cfg.name);
            let mut e = ev(0x8000_0008);
            e.kind = Some(Kind::Hcrets);
            e.ext.gate_switch = true;
            e.ext.tstack_ops = 2;
            assert_eq!(m.retire(&e), ret, "{} hcrets", cfg.name);
        }
    }

    #[test]
    fn pcu_cache_miss_costs_memory_latency() {
        let mut m = PipelineModel::new(TimingConfig::rocket());
        m.retire(&ev(0x8000_0000));
        let mut e = ev(0x8000_0004);
        e.ext.hpt_inst_miss = 1;
        let c = m.retire(&e);
        assert!(c >= 120, "HPT miss must stall like memory: {c}");
        assert_eq!(m.stats.pcu_stall, 120);
    }

    #[test]
    fn shootdown_flush_charges_per_entry() {
        let mut m = PipelineModel::new(TimingConfig::rocket());
        m.retire(&ev(0x8000_0000));
        let mut e = ev(0x8000_0004);
        e.ext.shootdown_flushed = 5;
        let c = m.retire(&e);
        let want = 5 * m.cfg.shootdown_flush_penalty;
        assert!(c >= want, "flush must stall: {c} < {want}");
        assert_eq!(m.stats.shootdown_stall, want);
        assert_eq!(m.counters().shootdown_stall, want);
    }

    #[test]
    fn mispredicted_branch_costs_refill() {
        let mut m = PipelineModel::new(TimingConfig::rocket());
        m.retire(&ev(0x8000_0000));
        // Pseudo-random outcomes: no predictor can learn these well.
        let mut lcg: u64 = 12345;
        for _ in 0..200 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut e = ev(0x8000_0004);
            e.kind = Some(Kind::Beq);
            e.branch_taken = (lcg >> 33) & 1 == 1;
            m.retire(&e);
        }
        assert!(m.bp.stats.misses > 20, "random pattern must mispredict");
        assert!(m.stats.branch_stall > 0);
    }

    #[test]
    fn serializing_instructions_flush() {
        let mut m = PipelineModel::new(TimingConfig::rocket());
        m.retire(&ev(0x8000_0000));
        let mut e = ev(0x8000_0004);
        e.kind = Some(Kind::Csrrw);
        e.raw = 0x1805_1073; // csrrw x0, satp, a0
        let c = m.retire(&e);
        assert!(c > m.cfg.serialize_penalty);
        assert!(m.stats.serialize_stall > 0);
    }

    #[test]
    fn trap_penalty_applied() {
        let mut m = PipelineModel::new(TimingConfig::rocket());
        let mut e = ev(0x8000_0000);
        e.kind = Some(Kind::Ecall);
        e.trap_cause = Some(8);
        let c = m.retire(&e);
        assert!(c >= m.cfg.trap_penalty);
    }

    #[test]
    fn satp_write_flushes_the_tlbs() {
        let mut m = PipelineModel::new(TimingConfig::rocket());
        // Warm the dTLB with a paged access.
        let mut e = ev(0x8000_0000);
        e.kind = Some(Kind::Ld);
        e.walk_reads = 3;
        e.mem = Some(MemAccess {
            vaddr: 0x5000,
            paddr: 0x8000_5000,
            len: 8,
            write: false,
        });
        m.retire(&e);
        let warm = m.stats.walk_stall;
        // Re-access: TLB hit, no new walk charge.
        let mut e2 = e;
        e2.pc = 0x8000_0000; // same page: iTLB hit too
        m.retire(&e2);
        assert_eq!(m.stats.walk_stall, warm, "warm access must not pay a walk");
        // Write satp (csrrw x0, satp, a0) -> both TLBs flushed.
        let mut s = ev(0x8000_0004);
        s.kind = Some(Kind::Csrrw);
        s.raw = 0x1805_1073;
        m.retire(&s);
        let mut e3 = e;
        e3.pc = 0x8000_0008;
        m.retire(&e3);
        assert!(m.stats.walk_stall > warm, "post-flush access must re-walk");
    }

    #[test]
    fn saved_state_resumes_cycle_identical() {
        // Warm a model with a mixed stream, save, load into a fresh
        // model, then feed both the same continuation: every retire must
        // return the same cycle count (rdcycle-visible determinism).
        fn step(m: &mut PipelineModel, i: u64, lcg: &mut u64) -> u64 {
            *lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut e = ev(0x8000_0000 + (i % 64) * 4);
            match (*lcg >> 33) % 4 {
                0 => {
                    e.kind = Some(Kind::Ld);
                    e.walk_reads = 2;
                    e.mem = Some(MemAccess {
                        vaddr: 0x4000 + (*lcg >> 40) % 0x8000,
                        paddr: 0x8100_0000 + (*lcg >> 40) % 0x8000,
                        len: 8,
                        write: false,
                    });
                }
                1 => {
                    e.kind = Some(Kind::Beq);
                    e.branch_taken = (*lcg >> 13) & 1 == 1;
                }
                2 => e.kind = Some(Kind::Jal),
                _ => {}
            }
            m.retire(&e)
        }
        for cfg in [TimingConfig::rocket(), TimingConfig::o3()] {
            let mut warm = PipelineModel::new(cfg);
            let mut lcg: u64 = 99;
            for i in 0..400 {
                step(&mut warm, i, &mut lcg);
            }
            let words = warm.save_state();
            let mut restored = PipelineModel::new(cfg);
            restored.load_state(&words);
            assert_eq!(restored.stats, warm.stats, "{}", cfg.name);
            for i in 400..800 {
                let mut lcg_b = lcg;
                let a = step(&mut warm, i, &mut lcg);
                let b = step(&mut restored, i, &mut lcg_b);
                assert_eq!(a, b, "{}: cycle divergence at step {i}", cfg.name);
                assert_eq!(lcg, lcg_b);
            }
            assert_eq!(restored.stats, warm.stats, "{}", cfg.name);
        }
    }

    #[test]
    fn stats_totals_match_returned_cycles() {
        let mut m = PipelineModel::new(TimingConfig::o3());
        let mut total = 0;
        for i in 0..500 {
            let mut e = ev(0x8000_0000 + i * 4);
            if i % 7 == 0 {
                e.kind = Some(Kind::Ld);
                e.mem = Some(MemAccess {
                    vaddr: 0x8100_0000 + i * 64,
                    paddr: 0x8100_0000 + i * 64,
                    len: 8,
                    write: false,
                });
            }
            total += m.retire(&e);
        }
        assert_eq!(m.stats.cycles, total);
        assert_eq!(m.stats.events, 500);
    }
}
