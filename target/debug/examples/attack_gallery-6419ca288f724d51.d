/root/repo/target/debug/examples/attack_gallery-6419ca288f724d51.d: crates/bench/../../examples/attack_gallery.rs

/root/repo/target/debug/examples/attack_gallery-6419ca288f724d51: crates/bench/../../examples/attack_gallery.rs

crates/bench/../../examples/attack_gallery.rs:
