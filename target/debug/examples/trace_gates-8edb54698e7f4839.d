/root/repo/target/debug/examples/trace_gates-8edb54698e7f4839.d: crates/bench/../../examples/trace_gates.rs

/root/repo/target/debug/examples/trace_gates-8edb54698e7f4839: crates/bench/../../examples/trace_gates.rs

crates/bench/../../examples/trace_gates.rs:
