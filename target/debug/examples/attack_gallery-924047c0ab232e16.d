/root/repo/target/debug/examples/attack_gallery-924047c0ab232e16.d: crates/bench/../../examples/attack_gallery.rs Cargo.toml

/root/repo/target/debug/examples/libattack_gallery-924047c0ab232e16.rmeta: crates/bench/../../examples/attack_gallery.rs Cargo.toml

crates/bench/../../examples/attack_gallery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
