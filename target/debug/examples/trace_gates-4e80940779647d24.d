/root/repo/target/debug/examples/trace_gates-4e80940779647d24.d: crates/bench/../../examples/trace_gates.rs

/root/repo/target/debug/examples/trace_gates-4e80940779647d24: crates/bench/../../examples/trace_gates.rs

crates/bench/../../examples/trace_gates.rs:
