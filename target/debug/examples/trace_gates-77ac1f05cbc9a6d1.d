/root/repo/target/debug/examples/trace_gates-77ac1f05cbc9a6d1.d: crates/bench/../../examples/trace_gates.rs

/root/repo/target/debug/examples/trace_gates-77ac1f05cbc9a6d1: crates/bench/../../examples/trace_gates.rs

crates/bench/../../examples/trace_gates.rs:
