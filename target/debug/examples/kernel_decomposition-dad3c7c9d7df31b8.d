/root/repo/target/debug/examples/kernel_decomposition-dad3c7c9d7df31b8.d: crates/bench/../../examples/kernel_decomposition.rs Cargo.toml

/root/repo/target/debug/examples/libkernel_decomposition-dad3c7c9d7df31b8.rmeta: crates/bench/../../examples/kernel_decomposition.rs Cargo.toml

crates/bench/../../examples/kernel_decomposition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
