/root/repo/target/debug/examples/nested_monitor-069527803b24de33.d: crates/bench/../../examples/nested_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libnested_monitor-069527803b24de33.rmeta: crates/bench/../../examples/nested_monitor.rs Cargo.toml

crates/bench/../../examples/nested_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
