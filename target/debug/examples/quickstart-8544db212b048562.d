/root/repo/target/debug/examples/quickstart-8544db212b048562.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-8544db212b048562.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
