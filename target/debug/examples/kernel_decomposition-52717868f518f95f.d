/root/repo/target/debug/examples/kernel_decomposition-52717868f518f95f.d: crates/bench/../../examples/kernel_decomposition.rs

/root/repo/target/debug/examples/kernel_decomposition-52717868f518f95f: crates/bench/../../examples/kernel_decomposition.rs

crates/bench/../../examples/kernel_decomposition.rs:
