/root/repo/target/debug/examples/nested_monitor-a5d085cea3bb0c9b.d: crates/bench/../../examples/nested_monitor.rs

/root/repo/target/debug/examples/nested_monitor-a5d085cea3bb0c9b: crates/bench/../../examples/nested_monitor.rs

crates/bench/../../examples/nested_monitor.rs:
