/root/repo/target/debug/examples/kernel_decomposition-f3c587d87ab381ff.d: crates/bench/../../examples/kernel_decomposition.rs

/root/repo/target/debug/examples/kernel_decomposition-f3c587d87ab381ff: crates/bench/../../examples/kernel_decomposition.rs

crates/bench/../../examples/kernel_decomposition.rs:
