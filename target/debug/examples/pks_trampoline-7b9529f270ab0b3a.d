/root/repo/target/debug/examples/pks_trampoline-7b9529f270ab0b3a.d: crates/bench/../../examples/pks_trampoline.rs Cargo.toml

/root/repo/target/debug/examples/libpks_trampoline-7b9529f270ab0b3a.rmeta: crates/bench/../../examples/pks_trampoline.rs Cargo.toml

crates/bench/../../examples/pks_trampoline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
