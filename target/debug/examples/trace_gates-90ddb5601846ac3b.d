/root/repo/target/debug/examples/trace_gates-90ddb5601846ac3b.d: crates/bench/../../examples/trace_gates.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_gates-90ddb5601846ac3b.rmeta: crates/bench/../../examples/trace_gates.rs Cargo.toml

crates/bench/../../examples/trace_gates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
