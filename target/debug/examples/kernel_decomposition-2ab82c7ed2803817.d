/root/repo/target/debug/examples/kernel_decomposition-2ab82c7ed2803817.d: crates/bench/../../examples/kernel_decomposition.rs

/root/repo/target/debug/examples/kernel_decomposition-2ab82c7ed2803817: crates/bench/../../examples/kernel_decomposition.rs

crates/bench/../../examples/kernel_decomposition.rs:
