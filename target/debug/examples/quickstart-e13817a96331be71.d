/root/repo/target/debug/examples/quickstart-e13817a96331be71.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e13817a96331be71: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
