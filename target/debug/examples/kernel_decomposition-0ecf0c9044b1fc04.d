/root/repo/target/debug/examples/kernel_decomposition-0ecf0c9044b1fc04.d: crates/bench/../../examples/kernel_decomposition.rs Cargo.toml

/root/repo/target/debug/examples/libkernel_decomposition-0ecf0c9044b1fc04.rmeta: crates/bench/../../examples/kernel_decomposition.rs Cargo.toml

crates/bench/../../examples/kernel_decomposition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
