/root/repo/target/debug/examples/quickstart-8255bcc7a71eb8bd.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-8255bcc7a71eb8bd.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
