/root/repo/target/debug/examples/nested_monitor-0f366ca856886581.d: crates/bench/../../examples/nested_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libnested_monitor-0f366ca856886581.rmeta: crates/bench/../../examples/nested_monitor.rs Cargo.toml

crates/bench/../../examples/nested_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
