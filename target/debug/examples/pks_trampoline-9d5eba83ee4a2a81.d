/root/repo/target/debug/examples/pks_trampoline-9d5eba83ee4a2a81.d: crates/bench/../../examples/pks_trampoline.rs

/root/repo/target/debug/examples/pks_trampoline-9d5eba83ee4a2a81: crates/bench/../../examples/pks_trampoline.rs

crates/bench/../../examples/pks_trampoline.rs:
