/root/repo/target/debug/examples/nested_monitor-9c7ccf634d592efc.d: crates/bench/../../examples/nested_monitor.rs

/root/repo/target/debug/examples/nested_monitor-9c7ccf634d592efc: crates/bench/../../examples/nested_monitor.rs

crates/bench/../../examples/nested_monitor.rs:
