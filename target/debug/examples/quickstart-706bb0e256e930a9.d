/root/repo/target/debug/examples/quickstart-706bb0e256e930a9.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-706bb0e256e930a9: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
