/root/repo/target/debug/examples/nested_monitor-42a2f4f3cb8fc7ec.d: crates/bench/../../examples/nested_monitor.rs

/root/repo/target/debug/examples/nested_monitor-42a2f4f3cb8fc7ec: crates/bench/../../examples/nested_monitor.rs

crates/bench/../../examples/nested_monitor.rs:
