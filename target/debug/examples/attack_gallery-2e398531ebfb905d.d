/root/repo/target/debug/examples/attack_gallery-2e398531ebfb905d.d: crates/bench/../../examples/attack_gallery.rs

/root/repo/target/debug/examples/attack_gallery-2e398531ebfb905d: crates/bench/../../examples/attack_gallery.rs

crates/bench/../../examples/attack_gallery.rs:
