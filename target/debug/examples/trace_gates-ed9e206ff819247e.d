/root/repo/target/debug/examples/trace_gates-ed9e206ff819247e.d: crates/bench/../../examples/trace_gates.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_gates-ed9e206ff819247e.rmeta: crates/bench/../../examples/trace_gates.rs Cargo.toml

crates/bench/../../examples/trace_gates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
