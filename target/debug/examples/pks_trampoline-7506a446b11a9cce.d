/root/repo/target/debug/examples/pks_trampoline-7506a446b11a9cce.d: crates/bench/../../examples/pks_trampoline.rs Cargo.toml

/root/repo/target/debug/examples/libpks_trampoline-7506a446b11a9cce.rmeta: crates/bench/../../examples/pks_trampoline.rs Cargo.toml

crates/bench/../../examples/pks_trampoline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
