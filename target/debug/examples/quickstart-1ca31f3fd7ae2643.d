/root/repo/target/debug/examples/quickstart-1ca31f3fd7ae2643.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1ca31f3fd7ae2643: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
