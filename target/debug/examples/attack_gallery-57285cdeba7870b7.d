/root/repo/target/debug/examples/attack_gallery-57285cdeba7870b7.d: crates/bench/../../examples/attack_gallery.rs

/root/repo/target/debug/examples/attack_gallery-57285cdeba7870b7: crates/bench/../../examples/attack_gallery.rs

crates/bench/../../examples/attack_gallery.rs:
