/root/repo/target/debug/examples/pks_trampoline-a800853235c4e001.d: crates/bench/../../examples/pks_trampoline.rs

/root/repo/target/debug/examples/pks_trampoline-a800853235c4e001: crates/bench/../../examples/pks_trampoline.rs

crates/bench/../../examples/pks_trampoline.rs:
