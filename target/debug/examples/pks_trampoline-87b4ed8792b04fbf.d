/root/repo/target/debug/examples/pks_trampoline-87b4ed8792b04fbf.d: crates/bench/../../examples/pks_trampoline.rs

/root/repo/target/debug/examples/pks_trampoline-87b4ed8792b04fbf: crates/bench/../../examples/pks_trampoline.rs

crates/bench/../../examples/pks_trampoline.rs:
