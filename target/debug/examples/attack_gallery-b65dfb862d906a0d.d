/root/repo/target/debug/examples/attack_gallery-b65dfb862d906a0d.d: crates/bench/../../examples/attack_gallery.rs Cargo.toml

/root/repo/target/debug/examples/libattack_gallery-b65dfb862d906a0d.rmeta: crates/bench/../../examples/attack_gallery.rs Cargo.toml

crates/bench/../../examples/attack_gallery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
