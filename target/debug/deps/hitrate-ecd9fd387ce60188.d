/root/repo/target/debug/deps/hitrate-ecd9fd387ce60188.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/debug/deps/hitrate-ecd9fd387ce60188: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
