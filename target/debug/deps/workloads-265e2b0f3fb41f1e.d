/root/repo/target/debug/deps/workloads-265e2b0f3fb41f1e.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/workloads-265e2b0f3fb41f1e: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
