/root/repo/target/debug/deps/isa_grid-f7a8cf0fac298211.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs

/root/repo/target/debug/deps/isa_grid-f7a8cf0fac298211: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/domain.rs:
crates/core/src/layout.rs:
crates/core/src/pcu.rs:
crates/core/src/policy.rs:
crates/core/src/shootdown.rs:
