/root/repo/target/debug/deps/table6-d2e1f8d471560676.d: crates/bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-d2e1f8d471560676.rmeta: crates/bench/src/bin/table6.rs Cargo.toml

crates/bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
