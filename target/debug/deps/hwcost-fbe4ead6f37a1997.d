/root/repo/target/debug/deps/hwcost-fbe4ead6f37a1997.d: crates/hwcost/src/lib.rs

/root/repo/target/debug/deps/hwcost-fbe4ead6f37a1997: crates/hwcost/src/lib.rs

crates/hwcost/src/lib.rs:
