/root/repo/target/debug/deps/table4-92b2fba1a157e233.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-92b2fba1a157e233: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
