/root/repo/target/debug/deps/table6-ff6099fd47ff0506.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-ff6099fd47ff0506: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
