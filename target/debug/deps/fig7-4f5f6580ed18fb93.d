/root/repo/target/debug/deps/fig7-4f5f6580ed18fb93.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-4f5f6580ed18fb93: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
