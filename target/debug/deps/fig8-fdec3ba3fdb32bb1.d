/root/repo/target/debug/deps/fig8-fdec3ba3fdb32bb1.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-fdec3ba3fdb32bb1: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
