/root/repo/target/debug/deps/nested_monitor-9b06cd81ee3d8155.d: crates/bench/../../tests/nested_monitor.rs Cargo.toml

/root/repo/target/debug/deps/libnested_monitor-9b06cd81ee3d8155.rmeta: crates/bench/../../tests/nested_monitor.rs Cargo.toml

crates/bench/../../tests/nested_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
