/root/repo/target/debug/deps/fig5-8f4c58c260e9410c.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-8f4c58c260e9410c: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
