/root/repo/target/debug/deps/domain_switch-ca6d252da999682d.d: crates/bench/benches/domain_switch.rs Cargo.toml

/root/repo/target/debug/deps/libdomain_switch-ca6d252da999682d.rmeta: crates/bench/benches/domain_switch.rs Cargo.toml

crates/bench/benches/domain_switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
