/root/repo/target/debug/deps/isa_obs-c119235e2b1f8f64.d: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs

/root/repo/target/debug/deps/libisa_obs-c119235e2b1f8f64.rlib: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs

/root/repo/target/debug/deps/libisa_obs-c119235e2b1f8f64.rmeta: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs

crates/obs/src/lib.rs:
crates/obs/src/counters.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/ring.rs:
