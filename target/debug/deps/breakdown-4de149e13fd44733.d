/root/repo/target/debug/deps/breakdown-4de149e13fd44733.d: crates/bench/src/bin/breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libbreakdown-4de149e13fd44733.rmeta: crates/bench/src/bin/breakdown.rs Cargo.toml

crates/bench/src/bin/breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
