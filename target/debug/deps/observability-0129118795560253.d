/root/repo/target/debug/deps/observability-0129118795560253.d: crates/bench/../../tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-0129118795560253.rmeta: crates/bench/../../tests/observability.rs Cargo.toml

crates/bench/../../tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
