/root/repo/target/debug/deps/table5-bf924ae5399183fc.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-bf924ae5399183fc: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
