/root/repo/target/debug/deps/decomposition-e54a35d410e42a7f.d: crates/bench/../../tests/decomposition.rs

/root/repo/target/debug/deps/decomposition-e54a35d410e42a7f: crates/bench/../../tests/decomposition.rs

crates/bench/../../tests/decomposition.rs:
