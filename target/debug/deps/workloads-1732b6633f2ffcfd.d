/root/repo/target/debug/deps/workloads-1732b6633f2ffcfd.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/libworkloads-1732b6633f2ffcfd.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/libworkloads-1732b6633f2ffcfd.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
