/root/repo/target/debug/deps/fig8-17d1731ad5f70819.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-17d1731ad5f70819: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
