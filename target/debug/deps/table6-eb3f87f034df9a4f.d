/root/repo/target/debug/deps/table6-eb3f87f034df9a4f.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-eb3f87f034df9a4f: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
