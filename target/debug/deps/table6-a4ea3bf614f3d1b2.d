/root/repo/target/debug/deps/table6-a4ea3bf614f3d1b2.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-a4ea3bf614f3d1b2: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
