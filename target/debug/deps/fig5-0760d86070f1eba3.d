/root/repo/target/debug/deps/fig5-0760d86070f1eba3.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-0760d86070f1eba3: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
