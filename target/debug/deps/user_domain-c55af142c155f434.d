/root/repo/target/debug/deps/user_domain-c55af142c155f434.d: crates/kernel/tests/user_domain.rs

/root/repo/target/debug/deps/user_domain-c55af142c155f434: crates/kernel/tests/user_domain.rs

crates/kernel/tests/user_domain.rs:
