/root/repo/target/debug/deps/table6-14ad492a3fba5a9e.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-14ad492a3fba5a9e: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
