/root/repo/target/debug/deps/fig5-61f8553d11a922c8.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-61f8553d11a922c8: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
