/root/repo/target/debug/deps/machine-20f615ad9fad73e1.d: crates/sim/tests/machine.rs

/root/repo/target/debug/deps/machine-20f615ad9fad73e1: crates/sim/tests/machine.rs

crates/sim/tests/machine.rs:
