/root/repo/target/debug/deps/fig6-e9bd21cc8afe60b5.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-e9bd21cc8afe60b5: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
