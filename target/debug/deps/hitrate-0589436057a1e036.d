/root/repo/target/debug/deps/hitrate-0589436057a1e036.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/debug/deps/hitrate-0589436057a1e036: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
