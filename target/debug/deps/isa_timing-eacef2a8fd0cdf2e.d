/root/repo/target/debug/deps/isa_timing-eacef2a8fd0cdf2e.d: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

/root/repo/target/debug/deps/libisa_timing-eacef2a8fd0cdf2e.rlib: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

/root/repo/target/debug/deps/libisa_timing-eacef2a8fd0cdf2e.rmeta: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

crates/timing/src/lib.rs:
crates/timing/src/cache.rs:
crates/timing/src/model.rs:
