/root/repo/target/debug/deps/mask_prop-6a018c5767074bc1.d: crates/core/tests/mask_prop.rs Cargo.toml

/root/repo/target/debug/deps/libmask_prop-6a018c5767074bc1.rmeta: crates/core/tests/mask_prop.rs Cargo.toml

crates/core/tests/mask_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
