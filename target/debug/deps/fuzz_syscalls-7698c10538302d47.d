/root/repo/target/debug/deps/fuzz_syscalls-7698c10538302d47.d: crates/bench/../../tests/fuzz_syscalls.rs

/root/repo/target/debug/deps/fuzz_syscalls-7698c10538302d47: crates/bench/../../tests/fuzz_syscalls.rs

crates/bench/../../tests/fuzz_syscalls.rs:
