/root/repo/target/debug/deps/simkernel-577e9e29169e40bc.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs

/root/repo/target/debug/deps/libsimkernel-577e9e29169e40bc.rlib: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs

/root/repo/target/debug/deps/libsimkernel-577e9e29169e40bc.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/smp.rs:
crates/kernel/src/usr.rs:
