/root/repo/target/debug/deps/fig8-a10091ea872ec799.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-a10091ea872ec799: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
