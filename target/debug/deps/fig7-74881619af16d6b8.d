/root/repo/target/debug/deps/fig7-74881619af16d6b8.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-74881619af16d6b8: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
