/root/repo/target/debug/deps/hitrate-d8871b045eba28f9.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/debug/deps/hitrate-d8871b045eba28f9: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
