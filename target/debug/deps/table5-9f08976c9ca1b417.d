/root/repo/target/debug/deps/table5-9f08976c9ca1b417.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-9f08976c9ca1b417: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
