/root/repo/target/debug/deps/isa_asm-213b0b6cfa934fc6.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs

/root/repo/target/debug/deps/isa_asm-213b0b6cfa934fc6: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/encode.rs:
crates/asm/src/parse.rs:
crates/asm/src/reg.rs:
