/root/repo/target/debug/deps/disas_roundtrip-ada68274dd2fa09a.d: crates/sim/tests/disas_roundtrip.rs

/root/repo/target/debug/deps/disas_roundtrip-ada68274dd2fa09a: crates/sim/tests/disas_roundtrip.rs

crates/sim/tests/disas_roundtrip.rs:
