/root/repo/target/debug/deps/privilege_check-d7212da38adbda55.d: crates/bench/benches/privilege_check.rs Cargo.toml

/root/repo/target/debug/deps/libprivilege_check-d7212da38adbda55.rmeta: crates/bench/benches/privilege_check.rs Cargo.toml

crates/bench/benches/privilege_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
