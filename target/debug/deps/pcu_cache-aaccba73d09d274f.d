/root/repo/target/debug/deps/pcu_cache-aaccba73d09d274f.d: crates/bench/benches/pcu_cache.rs Cargo.toml

/root/repo/target/debug/deps/libpcu_cache-aaccba73d09d274f.rmeta: crates/bench/benches/pcu_cache.rs Cargo.toml

crates/bench/benches/pcu_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
