/root/repo/target/debug/deps/hwcost-d7486a9b936e2715.d: crates/hwcost/src/lib.rs

/root/repo/target/debug/deps/hwcost-d7486a9b936e2715: crates/hwcost/src/lib.rs

crates/hwcost/src/lib.rs:
