/root/repo/target/debug/deps/user_domain-6475e805366a7c28.d: crates/kernel/tests/user_domain.rs

/root/repo/target/debug/deps/user_domain-6475e805366a7c28: crates/kernel/tests/user_domain.rs

crates/kernel/tests/user_domain.rs:
