/root/repo/target/debug/deps/fuzz_syscalls-e151734c91debaff.d: crates/bench/../../tests/fuzz_syscalls.rs

/root/repo/target/debug/deps/fuzz_syscalls-e151734c91debaff: crates/bench/../../tests/fuzz_syscalls.rs

crates/bench/../../tests/fuzz_syscalls.rs:
