/root/repo/target/debug/deps/nested_monitor-dcfd8ab6f1ac5c82.d: crates/bench/../../tests/nested_monitor.rs

/root/repo/target/debug/deps/nested_monitor-dcfd8ab6f1ac5c82: crates/bench/../../tests/nested_monitor.rs

crates/bench/../../tests/nested_monitor.rs:
