/root/repo/target/debug/deps/smp-27d5f9205b78685f.d: crates/bench/src/bin/smp.rs Cargo.toml

/root/repo/target/debug/deps/libsmp-27d5f9205b78685f.rmeta: crates/bench/src/bin/smp.rs Cargo.toml

crates/bench/src/bin/smp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
