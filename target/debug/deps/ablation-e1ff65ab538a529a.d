/root/repo/target/debug/deps/ablation-e1ff65ab538a529a.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-e1ff65ab538a529a: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
