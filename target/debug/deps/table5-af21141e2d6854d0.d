/root/repo/target/debug/deps/table5-af21141e2d6854d0.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-af21141e2d6854d0: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
