/root/repo/target/debug/deps/ablation-66cf36e0fa3dae63.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-66cf36e0fa3dae63: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
