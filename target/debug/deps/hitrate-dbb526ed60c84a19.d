/root/repo/target/debug/deps/hitrate-dbb526ed60c84a19.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/debug/deps/hitrate-dbb526ed60c84a19: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
