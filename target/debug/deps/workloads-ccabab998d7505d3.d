/root/repo/target/debug/deps/workloads-ccabab998d7505d3.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/workloads-ccabab998d7505d3: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
