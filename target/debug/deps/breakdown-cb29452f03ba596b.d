/root/repo/target/debug/deps/breakdown-cb29452f03ba596b.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/debug/deps/breakdown-cb29452f03ba596b: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
