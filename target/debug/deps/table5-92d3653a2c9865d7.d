/root/repo/target/debug/deps/table5-92d3653a2c9865d7.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-92d3653a2c9865d7.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
