/root/repo/target/debug/deps/workloads-fa3366547b4ed11d.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-fa3366547b4ed11d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
