/root/repo/target/debug/deps/pcu-f83c7134fc0750ec.d: crates/core/tests/pcu.rs Cargo.toml

/root/repo/target/debug/deps/libpcu-f83c7134fc0750ec.rmeta: crates/core/tests/pcu.rs Cargo.toml

crates/core/tests/pcu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
