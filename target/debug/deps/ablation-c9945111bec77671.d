/root/repo/target/debug/deps/ablation-c9945111bec77671.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-c9945111bec77671: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
