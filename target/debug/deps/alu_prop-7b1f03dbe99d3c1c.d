/root/repo/target/debug/deps/alu_prop-7b1f03dbe99d3c1c.d: crates/sim/tests/alu_prop.rs

/root/repo/target/debug/deps/alu_prop-7b1f03dbe99d3c1c: crates/sim/tests/alu_prop.rs

crates/sim/tests/alu_prop.rs:
