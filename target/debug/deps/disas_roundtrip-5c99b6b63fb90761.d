/root/repo/target/debug/deps/disas_roundtrip-5c99b6b63fb90761.d: crates/sim/tests/disas_roundtrip.rs

/root/repo/target/debug/deps/disas_roundtrip-5c99b6b63fb90761: crates/sim/tests/disas_roundtrip.rs

crates/sim/tests/disas_roundtrip.rs:
