/root/repo/target/debug/deps/kernel_paths-5777d3ee0972b1cc.d: crates/bench/benches/kernel_paths.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_paths-5777d3ee0972b1cc.rmeta: crates/bench/benches/kernel_paths.rs Cargo.toml

crates/bench/benches/kernel_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
