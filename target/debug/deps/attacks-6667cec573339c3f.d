/root/repo/target/debug/deps/attacks-6667cec573339c3f.d: crates/bench/../../tests/attacks.rs

/root/repo/target/debug/deps/attacks-6667cec573339c3f: crates/bench/../../tests/attacks.rs

crates/bench/../../tests/attacks.rs:
