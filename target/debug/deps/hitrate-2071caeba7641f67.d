/root/repo/target/debug/deps/hitrate-2071caeba7641f67.d: crates/bench/src/bin/hitrate.rs Cargo.toml

/root/repo/target/debug/deps/libhitrate-2071caeba7641f67.rmeta: crates/bench/src/bin/hitrate.rs Cargo.toml

crates/bench/src/bin/hitrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
