/root/repo/target/debug/deps/table5-ed8b35de36bf8d42.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-ed8b35de36bf8d42: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
