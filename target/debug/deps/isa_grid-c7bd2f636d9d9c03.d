/root/repo/target/debug/deps/isa_grid-c7bd2f636d9d9c03.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs

/root/repo/target/debug/deps/libisa_grid-c7bd2f636d9d9c03.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs

/root/repo/target/debug/deps/libisa_grid-c7bd2f636d9d9c03.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/domain.rs:
crates/core/src/layout.rs:
crates/core/src/pcu.rs:
crates/core/src/policy.rs:
crates/core/src/shootdown.rs:
