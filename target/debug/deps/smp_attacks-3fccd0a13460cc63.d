/root/repo/target/debug/deps/smp_attacks-3fccd0a13460cc63.d: crates/bench/../../tests/smp_attacks.rs

/root/repo/target/debug/deps/smp_attacks-3fccd0a13460cc63: crates/bench/../../tests/smp_attacks.rs

crates/bench/../../tests/smp_attacks.rs:
