/root/repo/target/debug/deps/ablation-fb685d2d92c38585.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-fb685d2d92c38585.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
