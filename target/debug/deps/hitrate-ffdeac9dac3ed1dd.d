/root/repo/target/debug/deps/hitrate-ffdeac9dac3ed1dd.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/debug/deps/hitrate-ffdeac9dac3ed1dd: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
