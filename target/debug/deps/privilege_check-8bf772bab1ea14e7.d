/root/repo/target/debug/deps/privilege_check-8bf772bab1ea14e7.d: crates/bench/benches/privilege_check.rs Cargo.toml

/root/repo/target/debug/deps/libprivilege_check-8bf772bab1ea14e7.rmeta: crates/bench/benches/privilege_check.rs Cargo.toml

crates/bench/benches/privilege_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
