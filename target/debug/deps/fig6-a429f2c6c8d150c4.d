/root/repo/target/debug/deps/fig6-a429f2c6c8d150c4.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-a429f2c6c8d150c4.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
