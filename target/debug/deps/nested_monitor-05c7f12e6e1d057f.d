/root/repo/target/debug/deps/nested_monitor-05c7f12e6e1d057f.d: crates/bench/../../tests/nested_monitor.rs

/root/repo/target/debug/deps/nested_monitor-05c7f12e6e1d057f: crates/bench/../../tests/nested_monitor.rs

crates/bench/../../tests/nested_monitor.rs:
