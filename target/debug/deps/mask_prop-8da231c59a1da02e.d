/root/repo/target/debug/deps/mask_prop-8da231c59a1da02e.d: crates/core/tests/mask_prop.rs

/root/repo/target/debug/deps/mask_prop-8da231c59a1da02e: crates/core/tests/mask_prop.rs

crates/core/tests/mask_prop.rs:
