/root/repo/target/debug/deps/fig7-4ef060292049dbc5.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-4ef060292049dbc5: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
