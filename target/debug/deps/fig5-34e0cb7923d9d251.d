/root/repo/target/debug/deps/fig5-34e0cb7923d9d251.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-34e0cb7923d9d251: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
