/root/repo/target/debug/deps/hitrate-1452a739da6caae0.d: crates/bench/src/bin/hitrate.rs Cargo.toml

/root/repo/target/debug/deps/libhitrate-1452a739da6caae0.rmeta: crates/bench/src/bin/hitrate.rs Cargo.toml

crates/bench/src/bin/hitrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
