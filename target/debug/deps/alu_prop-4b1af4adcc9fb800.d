/root/repo/target/debug/deps/alu_prop-4b1af4adcc9fb800.d: crates/sim/tests/alu_prop.rs Cargo.toml

/root/repo/target/debug/deps/libalu_prop-4b1af4adcc9fb800.rmeta: crates/sim/tests/alu_prop.rs Cargo.toml

crates/sim/tests/alu_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
