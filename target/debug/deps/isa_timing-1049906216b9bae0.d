/root/repo/target/debug/deps/isa_timing-1049906216b9bae0.d: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

/root/repo/target/debug/deps/libisa_timing-1049906216b9bae0.rlib: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

/root/repo/target/debug/deps/libisa_timing-1049906216b9bae0.rmeta: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

crates/timing/src/lib.rs:
crates/timing/src/cache.rs:
crates/timing/src/model.rs:
