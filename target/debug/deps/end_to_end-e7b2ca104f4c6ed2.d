/root/repo/target/debug/deps/end_to_end-e7b2ca104f4c6ed2.d: crates/bench/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e7b2ca104f4c6ed2: crates/bench/../../tests/end_to_end.rs

crates/bench/../../tests/end_to_end.rs:
