/root/repo/target/debug/deps/isa_grid-27f8f557ffb4ad66.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs Cargo.toml

/root/repo/target/debug/deps/libisa_grid-27f8f557ffb4ad66.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/domain.rs:
crates/core/src/layout.rs:
crates/core/src/pcu.rs:
crates/core/src/policy.rs:
crates/core/src/shootdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
