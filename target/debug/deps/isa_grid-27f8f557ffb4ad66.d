/root/repo/target/debug/deps/isa_grid-27f8f557ffb4ad66.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libisa_grid-27f8f557ffb4ad66.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/domain.rs:
crates/core/src/layout.rs:
crates/core/src/pcu.rs:
crates/core/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
