/root/repo/target/debug/deps/decomposition-db8bcb4bf76c9237.d: crates/bench/../../tests/decomposition.rs Cargo.toml

/root/repo/target/debug/deps/libdecomposition-db8bcb4bf76c9237.rmeta: crates/bench/../../tests/decomposition.rs Cargo.toml

crates/bench/../../tests/decomposition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
