/root/repo/target/debug/deps/extensions-75bf5f535b281eb3.d: crates/core/tests/extensions.rs

/root/repo/target/debug/deps/extensions-75bf5f535b281eb3: crates/core/tests/extensions.rs

crates/core/tests/extensions.rs:
