/root/repo/target/debug/deps/extensions-ce9d1395ec1eea91.d: crates/core/tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-ce9d1395ec1eea91.rmeta: crates/core/tests/extensions.rs Cargo.toml

crates/core/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
