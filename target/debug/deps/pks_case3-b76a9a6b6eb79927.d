/root/repo/target/debug/deps/pks_case3-b76a9a6b6eb79927.d: crates/bench/src/bin/pks_case3.rs Cargo.toml

/root/repo/target/debug/deps/libpks_case3-b76a9a6b6eb79927.rmeta: crates/bench/src/bin/pks_case3.rs Cargo.toml

crates/bench/src/bin/pks_case3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
