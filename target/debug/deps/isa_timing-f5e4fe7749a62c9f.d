/root/repo/target/debug/deps/isa_timing-f5e4fe7749a62c9f.d: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

/root/repo/target/debug/deps/isa_timing-f5e4fe7749a62c9f: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

crates/timing/src/lib.rs:
crates/timing/src/cache.rs:
crates/timing/src/model.rs:
