/root/repo/target/debug/deps/gates-4b4d0086fe270819.d: crates/bench/../../tests/gates.rs

/root/repo/target/debug/deps/gates-4b4d0086fe270819: crates/bench/../../tests/gates.rs

crates/bench/../../tests/gates.rs:
