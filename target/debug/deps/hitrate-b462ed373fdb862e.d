/root/repo/target/debug/deps/hitrate-b462ed373fdb862e.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/debug/deps/hitrate-b462ed373fdb862e: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
