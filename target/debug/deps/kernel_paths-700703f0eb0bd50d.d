/root/repo/target/debug/deps/kernel_paths-700703f0eb0bd50d.d: crates/bench/benches/kernel_paths.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_paths-700703f0eb0bd50d.rmeta: crates/bench/benches/kernel_paths.rs Cargo.toml

crates/bench/benches/kernel_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
