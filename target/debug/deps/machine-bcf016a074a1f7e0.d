/root/repo/target/debug/deps/machine-bcf016a074a1f7e0.d: crates/sim/tests/machine.rs Cargo.toml

/root/repo/target/debug/deps/libmachine-bcf016a074a1f7e0.rmeta: crates/sim/tests/machine.rs Cargo.toml

crates/sim/tests/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
