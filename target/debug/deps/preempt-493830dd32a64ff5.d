/root/repo/target/debug/deps/preempt-493830dd32a64ff5.d: crates/kernel/tests/preempt.rs

/root/repo/target/debug/deps/preempt-493830dd32a64ff5: crates/kernel/tests/preempt.rs

crates/kernel/tests/preempt.rs:
