/root/repo/target/debug/deps/fig8-8df4f3e4e4379905.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-8df4f3e4e4379905: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
