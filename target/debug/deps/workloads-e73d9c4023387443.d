/root/repo/target/debug/deps/workloads-e73d9c4023387443.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/libworkloads-e73d9c4023387443.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/libworkloads-e73d9c4023387443.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
