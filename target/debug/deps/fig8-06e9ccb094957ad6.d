/root/repo/target/debug/deps/fig8-06e9ccb094957ad6.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-06e9ccb094957ad6: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
