/root/repo/target/debug/deps/fig5-e423c063a8fa15dc.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-e423c063a8fa15dc.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
