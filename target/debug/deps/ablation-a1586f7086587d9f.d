/root/repo/target/debug/deps/ablation-a1586f7086587d9f.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-a1586f7086587d9f.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
