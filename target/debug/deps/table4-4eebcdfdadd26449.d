/root/repo/target/debug/deps/table4-4eebcdfdadd26449.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-4eebcdfdadd26449: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
