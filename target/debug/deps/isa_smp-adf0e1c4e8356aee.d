/root/repo/target/debug/deps/isa_smp-adf0e1c4e8356aee.d: crates/smp/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libisa_smp-adf0e1c4e8356aee.rmeta: crates/smp/src/lib.rs Cargo.toml

crates/smp/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
