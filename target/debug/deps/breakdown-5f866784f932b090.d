/root/repo/target/debug/deps/breakdown-5f866784f932b090.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/debug/deps/breakdown-5f866784f932b090: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
