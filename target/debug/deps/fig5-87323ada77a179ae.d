/root/repo/target/debug/deps/fig5-87323ada77a179ae.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-87323ada77a179ae: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
