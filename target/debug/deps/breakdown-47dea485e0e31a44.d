/root/repo/target/debug/deps/breakdown-47dea485e0e31a44.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/debug/deps/breakdown-47dea485e0e31a44: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
