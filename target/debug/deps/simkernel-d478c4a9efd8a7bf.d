/root/repo/target/debug/deps/simkernel-d478c4a9efd8a7bf.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

/root/repo/target/debug/deps/libsimkernel-d478c4a9efd8a7bf.rlib: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

/root/repo/target/debug/deps/libsimkernel-d478c4a9efd8a7bf.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/usr.rs:
