/root/repo/target/debug/deps/decomposition-e1e183bda24aa407.d: crates/bench/../../tests/decomposition.rs Cargo.toml

/root/repo/target/debug/deps/libdecomposition-e1e183bda24aa407.rmeta: crates/bench/../../tests/decomposition.rs Cargo.toml

crates/bench/../../tests/decomposition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
