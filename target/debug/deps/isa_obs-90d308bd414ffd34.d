/root/repo/target/debug/deps/isa_obs-90d308bd414ffd34.d: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs

/root/repo/target/debug/deps/isa_obs-90d308bd414ffd34: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs

crates/obs/src/lib.rs:
crates/obs/src/counters.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/ring.rs:
