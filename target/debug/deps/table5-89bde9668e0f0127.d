/root/repo/target/debug/deps/table5-89bde9668e0f0127.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-89bde9668e0f0127: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
