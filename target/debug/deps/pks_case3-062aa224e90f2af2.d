/root/repo/target/debug/deps/pks_case3-062aa224e90f2af2.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/debug/deps/pks_case3-062aa224e90f2af2: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
