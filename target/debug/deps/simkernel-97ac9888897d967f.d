/root/repo/target/debug/deps/simkernel-97ac9888897d967f.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs Cargo.toml

/root/repo/target/debug/deps/libsimkernel-97ac9888897d967f.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/smp.rs:
crates/kernel/src/usr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
