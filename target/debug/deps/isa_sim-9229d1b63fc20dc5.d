/root/repo/target/debug/deps/isa_sim-9229d1b63fc20dc5.d: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/csr.rs crates/sim/src/decode.rs crates/sim/src/disas.rs crates/sim/src/mem.rs crates/sim/src/mmu.rs crates/sim/src/trap.rs Cargo.toml

/root/repo/target/debug/deps/libisa_sim-9229d1b63fc20dc5.rmeta: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/csr.rs crates/sim/src/decode.rs crates/sim/src/disas.rs crates/sim/src/mem.rs crates/sim/src/mmu.rs crates/sim/src/trap.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cpu.rs:
crates/sim/src/csr.rs:
crates/sim/src/decode.rs:
crates/sim/src/disas.rs:
crates/sim/src/mem.rs:
crates/sim/src/mmu.rs:
crates/sim/src/trap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
