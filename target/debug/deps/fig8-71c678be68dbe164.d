/root/repo/target/debug/deps/fig8-71c678be68dbe164.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-71c678be68dbe164: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
