/root/repo/target/debug/deps/fig6-938404d4cc19dc1e.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-938404d4cc19dc1e.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
