/root/repo/target/debug/deps/table4-c2a37fd718fb93d0.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-c2a37fd718fb93d0: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
