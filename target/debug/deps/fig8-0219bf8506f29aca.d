/root/repo/target/debug/deps/fig8-0219bf8506f29aca.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-0219bf8506f29aca: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
