/root/repo/target/debug/deps/nested_monitor-ace37acff9163706.d: crates/bench/../../tests/nested_monitor.rs

/root/repo/target/debug/deps/nested_monitor-ace37acff9163706: crates/bench/../../tests/nested_monitor.rs

crates/bench/../../tests/nested_monitor.rs:
