/root/repo/target/debug/deps/fig7-ec36b28e7da71616.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-ec36b28e7da71616: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
