/root/repo/target/debug/deps/workloads-635f6898946e25ad.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/libworkloads-635f6898946e25ad.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/libworkloads-635f6898946e25ad.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
