/root/repo/target/debug/deps/end_to_end-40fc8cf68ecb6e0c.d: crates/bench/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-40fc8cf68ecb6e0c.rmeta: crates/bench/../../tests/end_to_end.rs Cargo.toml

crates/bench/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
