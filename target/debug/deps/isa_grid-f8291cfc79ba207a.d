/root/repo/target/debug/deps/isa_grid-f8291cfc79ba207a.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs

/root/repo/target/debug/deps/libisa_grid-f8291cfc79ba207a.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs

/root/repo/target/debug/deps/libisa_grid-f8291cfc79ba207a.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/domain.rs:
crates/core/src/layout.rs:
crates/core/src/pcu.rs:
crates/core/src/policy.rs:
