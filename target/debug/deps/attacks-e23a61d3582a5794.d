/root/repo/target/debug/deps/attacks-e23a61d3582a5794.d: crates/bench/../../tests/attacks.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-e23a61d3582a5794.rmeta: crates/bench/../../tests/attacks.rs Cargo.toml

crates/bench/../../tests/attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
