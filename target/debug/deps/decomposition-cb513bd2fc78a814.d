/root/repo/target/debug/deps/decomposition-cb513bd2fc78a814.d: crates/bench/../../tests/decomposition.rs

/root/repo/target/debug/deps/decomposition-cb513bd2fc78a814: crates/bench/../../tests/decomposition.rs

crates/bench/../../tests/decomposition.rs:
