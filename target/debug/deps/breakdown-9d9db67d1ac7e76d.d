/root/repo/target/debug/deps/breakdown-9d9db67d1ac7e76d.d: crates/bench/src/bin/breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libbreakdown-9d9db67d1ac7e76d.rmeta: crates/bench/src/bin/breakdown.rs Cargo.toml

crates/bench/src/bin/breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
