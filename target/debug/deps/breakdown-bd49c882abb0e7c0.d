/root/repo/target/debug/deps/breakdown-bd49c882abb0e7c0.d: crates/bench/src/bin/breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libbreakdown-bd49c882abb0e7c0.rmeta: crates/bench/src/bin/breakdown.rs Cargo.toml

crates/bench/src/bin/breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
