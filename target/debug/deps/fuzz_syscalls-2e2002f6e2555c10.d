/root/repo/target/debug/deps/fuzz_syscalls-2e2002f6e2555c10.d: crates/bench/../../tests/fuzz_syscalls.rs

/root/repo/target/debug/deps/fuzz_syscalls-2e2002f6e2555c10: crates/bench/../../tests/fuzz_syscalls.rs

crates/bench/../../tests/fuzz_syscalls.rs:
