/root/repo/target/debug/deps/table4-54fb54ab16fdf67b.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-54fb54ab16fdf67b: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
