/root/repo/target/debug/deps/table6-50e24ff1e1cad211.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-50e24ff1e1cad211: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
