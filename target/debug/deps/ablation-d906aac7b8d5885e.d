/root/repo/target/debug/deps/ablation-d906aac7b8d5885e.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-d906aac7b8d5885e: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
