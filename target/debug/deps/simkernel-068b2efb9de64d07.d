/root/repo/target/debug/deps/simkernel-068b2efb9de64d07.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs Cargo.toml

/root/repo/target/debug/deps/libsimkernel-068b2efb9de64d07.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/usr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
