/root/repo/target/debug/deps/hitrate-8ba2baad49367805.d: crates/bench/src/bin/hitrate.rs Cargo.toml

/root/repo/target/debug/deps/libhitrate-8ba2baad49367805.rmeta: crates/bench/src/bin/hitrate.rs Cargo.toml

crates/bench/src/bin/hitrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
