/root/repo/target/debug/deps/table4-134eb35a8c7bbaa9.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-134eb35a8c7bbaa9: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
