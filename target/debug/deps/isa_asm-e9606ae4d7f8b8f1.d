/root/repo/target/debug/deps/isa_asm-e9606ae4d7f8b8f1.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libisa_asm-e9606ae4d7f8b8f1.rmeta: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs Cargo.toml

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/encode.rs:
crates/asm/src/parse.rs:
crates/asm/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
