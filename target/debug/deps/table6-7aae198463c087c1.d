/root/repo/target/debug/deps/table6-7aae198463c087c1.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-7aae198463c087c1: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
