/root/repo/target/debug/deps/attacks-9594267f4cf416ac.d: crates/bench/../../tests/attacks.rs

/root/repo/target/debug/deps/attacks-9594267f4cf416ac: crates/bench/../../tests/attacks.rs

crates/bench/../../tests/attacks.rs:
