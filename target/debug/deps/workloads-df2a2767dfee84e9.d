/root/repo/target/debug/deps/workloads-df2a2767dfee84e9.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-df2a2767dfee84e9.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
