/root/repo/target/debug/deps/fig8-18158045d29c98a8.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-18158045d29c98a8.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
