/root/repo/target/debug/deps/isa_sim-701cd6a8334603ec.d: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/csr.rs crates/sim/src/decode.rs crates/sim/src/disas.rs crates/sim/src/mem.rs crates/sim/src/mmu.rs crates/sim/src/trap.rs

/root/repo/target/debug/deps/libisa_sim-701cd6a8334603ec.rlib: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/csr.rs crates/sim/src/decode.rs crates/sim/src/disas.rs crates/sim/src/mem.rs crates/sim/src/mmu.rs crates/sim/src/trap.rs

/root/repo/target/debug/deps/libisa_sim-701cd6a8334603ec.rmeta: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/csr.rs crates/sim/src/decode.rs crates/sim/src/disas.rs crates/sim/src/mem.rs crates/sim/src/mmu.rs crates/sim/src/trap.rs

crates/sim/src/lib.rs:
crates/sim/src/cpu.rs:
crates/sim/src/csr.rs:
crates/sim/src/decode.rs:
crates/sim/src/disas.rs:
crates/sim/src/mem.rs:
crates/sim/src/mmu.rs:
crates/sim/src/trap.rs:
