/root/repo/target/debug/deps/alu_prop-15b199e9d9acc009.d: crates/sim/tests/alu_prop.rs

/root/repo/target/debug/deps/alu_prop-15b199e9d9acc009: crates/sim/tests/alu_prop.rs

crates/sim/tests/alu_prop.rs:
