/root/repo/target/debug/deps/kernel-c7d7fb3a4e95cc81.d: crates/kernel/tests/kernel.rs

/root/repo/target/debug/deps/kernel-c7d7fb3a4e95cc81: crates/kernel/tests/kernel.rs

crates/kernel/tests/kernel.rs:
