/root/repo/target/debug/deps/table4-2926353e8a364a67.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-2926353e8a364a67: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
