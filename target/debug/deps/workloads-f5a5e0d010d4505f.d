/root/repo/target/debug/deps/workloads-f5a5e0d010d4505f.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-f5a5e0d010d4505f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
