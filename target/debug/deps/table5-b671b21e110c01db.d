/root/repo/target/debug/deps/table5-b671b21e110c01db.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-b671b21e110c01db.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
