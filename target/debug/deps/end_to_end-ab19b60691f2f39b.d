/root/repo/target/debug/deps/end_to_end-ab19b60691f2f39b.d: crates/bench/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ab19b60691f2f39b: crates/bench/../../tests/end_to_end.rs

crates/bench/../../tests/end_to_end.rs:
