/root/repo/target/debug/deps/kernel-29e3a1eacf8a9c9f.d: crates/kernel/tests/kernel.rs

/root/repo/target/debug/deps/kernel-29e3a1eacf8a9c9f: crates/kernel/tests/kernel.rs

crates/kernel/tests/kernel.rs:
