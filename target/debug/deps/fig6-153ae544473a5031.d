/root/repo/target/debug/deps/fig6-153ae544473a5031.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-153ae544473a5031: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
