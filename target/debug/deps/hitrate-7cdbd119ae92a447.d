/root/repo/target/debug/deps/hitrate-7cdbd119ae92a447.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/debug/deps/hitrate-7cdbd119ae92a447: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
