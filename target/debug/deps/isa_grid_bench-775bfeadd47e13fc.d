/root/repo/target/debug/deps/isa_grid_bench-775bfeadd47e13fc.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/breakdown.rs crates/bench/src/figs.rs crates/bench/src/gatebench.rs crates/bench/src/hitrate.rs crates/bench/src/pks.rs crates/bench/src/report.rs crates/bench/src/smpbench.rs crates/bench/src/table4.rs crates/bench/src/table5.rs Cargo.toml

/root/repo/target/debug/deps/libisa_grid_bench-775bfeadd47e13fc.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/breakdown.rs crates/bench/src/figs.rs crates/bench/src/gatebench.rs crates/bench/src/hitrate.rs crates/bench/src/pks.rs crates/bench/src/report.rs crates/bench/src/smpbench.rs crates/bench/src/table4.rs crates/bench/src/table5.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/breakdown.rs:
crates/bench/src/figs.rs:
crates/bench/src/gatebench.rs:
crates/bench/src/hitrate.rs:
crates/bench/src/pks.rs:
crates/bench/src/report.rs:
crates/bench/src/smpbench.rs:
crates/bench/src/table4.rs:
crates/bench/src/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
