/root/repo/target/debug/deps/simkernel-fb1247540cc1e144.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

/root/repo/target/debug/deps/libsimkernel-fb1247540cc1e144.rlib: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

/root/repo/target/debug/deps/libsimkernel-fb1247540cc1e144.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/usr.rs:
