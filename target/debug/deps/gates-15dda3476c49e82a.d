/root/repo/target/debug/deps/gates-15dda3476c49e82a.d: crates/bench/../../tests/gates.rs

/root/repo/target/debug/deps/gates-15dda3476c49e82a: crates/bench/../../tests/gates.rs

crates/bench/../../tests/gates.rs:
