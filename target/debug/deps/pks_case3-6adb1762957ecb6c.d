/root/repo/target/debug/deps/pks_case3-6adb1762957ecb6c.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/debug/deps/pks_case3-6adb1762957ecb6c: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
