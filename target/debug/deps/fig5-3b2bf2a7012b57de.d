/root/repo/target/debug/deps/fig5-3b2bf2a7012b57de.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-3b2bf2a7012b57de: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
