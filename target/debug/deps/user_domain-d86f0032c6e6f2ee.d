/root/repo/target/debug/deps/user_domain-d86f0032c6e6f2ee.d: crates/kernel/tests/user_domain.rs Cargo.toml

/root/repo/target/debug/deps/libuser_domain-d86f0032c6e6f2ee.rmeta: crates/kernel/tests/user_domain.rs Cargo.toml

crates/kernel/tests/user_domain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
