/root/repo/target/debug/deps/disas_roundtrip-738d4e91a49fbb21.d: crates/sim/tests/disas_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libdisas_roundtrip-738d4e91a49fbb21.rmeta: crates/sim/tests/disas_roundtrip.rs Cargo.toml

crates/sim/tests/disas_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
