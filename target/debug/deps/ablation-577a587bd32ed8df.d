/root/repo/target/debug/deps/ablation-577a587bd32ed8df.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-577a587bd32ed8df: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
