/root/repo/target/debug/deps/simkernel-1ad1724b3b64c885.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

/root/repo/target/debug/deps/simkernel-1ad1724b3b64c885: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/usr.rs:
