/root/repo/target/debug/deps/user_domain-ac74f81dd760beb7.d: crates/kernel/tests/user_domain.rs Cargo.toml

/root/repo/target/debug/deps/libuser_domain-ac74f81dd760beb7.rmeta: crates/kernel/tests/user_domain.rs Cargo.toml

crates/kernel/tests/user_domain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
