/root/repo/target/debug/deps/attacks-05f135692de7eb1f.d: crates/bench/../../tests/attacks.rs

/root/repo/target/debug/deps/attacks-05f135692de7eb1f: crates/bench/../../tests/attacks.rs

crates/bench/../../tests/attacks.rs:
