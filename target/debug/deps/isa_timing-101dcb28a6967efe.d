/root/repo/target/debug/deps/isa_timing-101dcb28a6967efe.d: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

/root/repo/target/debug/deps/isa_timing-101dcb28a6967efe: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

crates/timing/src/lib.rs:
crates/timing/src/cache.rs:
crates/timing/src/model.rs:
