/root/repo/target/debug/deps/preempt-375744fdae4393d7.d: crates/kernel/tests/preempt.rs Cargo.toml

/root/repo/target/debug/deps/libpreempt-375744fdae4393d7.rmeta: crates/kernel/tests/preempt.rs Cargo.toml

crates/kernel/tests/preempt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
