/root/repo/target/debug/deps/table5-4f8cb87d151d6c90.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-4f8cb87d151d6c90: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
