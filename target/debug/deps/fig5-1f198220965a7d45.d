/root/repo/target/debug/deps/fig5-1f198220965a7d45.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-1f198220965a7d45: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
