/root/repo/target/debug/deps/fig6-dc103b6215032300.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-dc103b6215032300: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
