/root/repo/target/debug/deps/fig5-41323c7ec3b56783.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-41323c7ec3b56783: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
