/root/repo/target/debug/deps/ablation-306a800634e9f561.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-306a800634e9f561: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
