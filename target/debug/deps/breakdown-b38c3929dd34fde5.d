/root/repo/target/debug/deps/breakdown-b38c3929dd34fde5.d: crates/bench/src/bin/breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libbreakdown-b38c3929dd34fde5.rmeta: crates/bench/src/bin/breakdown.rs Cargo.toml

crates/bench/src/bin/breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
