/root/repo/target/debug/deps/breakdown-bdc1b647ad27875e.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/debug/deps/breakdown-bdc1b647ad27875e: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
