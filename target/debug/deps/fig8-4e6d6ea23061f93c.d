/root/repo/target/debug/deps/fig8-4e6d6ea23061f93c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-4e6d6ea23061f93c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
