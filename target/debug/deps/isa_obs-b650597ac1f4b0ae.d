/root/repo/target/debug/deps/isa_obs-b650597ac1f4b0ae.d: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libisa_obs-b650597ac1f4b0ae.rmeta: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/counters.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
