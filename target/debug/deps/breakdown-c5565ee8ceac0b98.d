/root/repo/target/debug/deps/breakdown-c5565ee8ceac0b98.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/debug/deps/breakdown-c5565ee8ceac0b98: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
