/root/repo/target/debug/deps/smp-8955ff42c3f4da46.d: crates/bench/src/bin/smp.rs

/root/repo/target/debug/deps/smp-8955ff42c3f4da46: crates/bench/src/bin/smp.rs

crates/bench/src/bin/smp.rs:
