/root/repo/target/debug/deps/smp-71ece13c43c8aa60.d: crates/bench/../../tests/smp.rs

/root/repo/target/debug/deps/smp-71ece13c43c8aa60: crates/bench/../../tests/smp.rs

crates/bench/../../tests/smp.rs:
