/root/repo/target/debug/deps/fig7-2366ef972da26179.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-2366ef972da26179: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
