/root/repo/target/debug/deps/pks_case3-f96368d2eaa52410.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/debug/deps/pks_case3-f96368d2eaa52410: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
