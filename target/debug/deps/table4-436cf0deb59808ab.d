/root/repo/target/debug/deps/table4-436cf0deb59808ab.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-436cf0deb59808ab: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
