/root/repo/target/debug/deps/fuzz_syscalls-ac53ef226b420193.d: crates/bench/../../tests/fuzz_syscalls.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_syscalls-ac53ef226b420193.rmeta: crates/bench/../../tests/fuzz_syscalls.rs Cargo.toml

crates/bench/../../tests/fuzz_syscalls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
