/root/repo/target/debug/deps/preempt-9f067416e2cf47ec.d: crates/kernel/tests/preempt.rs

/root/repo/target/debug/deps/preempt-9f067416e2cf47ec: crates/kernel/tests/preempt.rs

crates/kernel/tests/preempt.rs:
