/root/repo/target/debug/deps/table4-006957b32ca33dbc.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-006957b32ca33dbc: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
