/root/repo/target/debug/deps/smp_attacks-fc0c128ef93562e6.d: crates/bench/../../tests/smp_attacks.rs Cargo.toml

/root/repo/target/debug/deps/libsmp_attacks-fc0c128ef93562e6.rmeta: crates/bench/../../tests/smp_attacks.rs Cargo.toml

crates/bench/../../tests/smp_attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
