/root/repo/target/debug/deps/smp-ff9c4ebcfb1ff678.d: crates/bench/src/bin/smp.rs Cargo.toml

/root/repo/target/debug/deps/libsmp-ff9c4ebcfb1ff678.rmeta: crates/bench/src/bin/smp.rs Cargo.toml

crates/bench/src/bin/smp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
