/root/repo/target/debug/deps/fig7-f4192859f4858980.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-f4192859f4858980: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
