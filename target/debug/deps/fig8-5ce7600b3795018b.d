/root/repo/target/debug/deps/fig8-5ce7600b3795018b.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-5ce7600b3795018b: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
