/root/repo/target/debug/deps/kernel-cfff74cdf6a6b01a.d: crates/kernel/tests/kernel.rs

/root/repo/target/debug/deps/kernel-cfff74cdf6a6b01a: crates/kernel/tests/kernel.rs

crates/kernel/tests/kernel.rs:
