/root/repo/target/debug/deps/table6-1fd87715d7da9d17.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-1fd87715d7da9d17: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
