/root/repo/target/debug/deps/breakdown-8e3e94015acc7f30.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/debug/deps/breakdown-8e3e94015acc7f30: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
