/root/repo/target/debug/deps/pks_case3-52c17e6f5d1160bd.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/debug/deps/pks_case3-52c17e6f5d1160bd: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
