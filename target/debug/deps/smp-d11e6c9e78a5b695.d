/root/repo/target/debug/deps/smp-d11e6c9e78a5b695.d: crates/bench/../../tests/smp.rs Cargo.toml

/root/repo/target/debug/deps/libsmp-d11e6c9e78a5b695.rmeta: crates/bench/../../tests/smp.rs Cargo.toml

crates/bench/../../tests/smp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
