/root/repo/target/debug/deps/isa_smp-e70fe76645d48a8e.d: crates/smp/src/lib.rs

/root/repo/target/debug/deps/isa_smp-e70fe76645d48a8e: crates/smp/src/lib.rs

crates/smp/src/lib.rs:
