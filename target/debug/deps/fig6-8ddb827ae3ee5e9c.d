/root/repo/target/debug/deps/fig6-8ddb827ae3ee5e9c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-8ddb827ae3ee5e9c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
