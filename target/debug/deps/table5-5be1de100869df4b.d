/root/repo/target/debug/deps/table5-5be1de100869df4b.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-5be1de100869df4b: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
