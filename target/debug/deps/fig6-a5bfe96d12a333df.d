/root/repo/target/debug/deps/fig6-a5bfe96d12a333df.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a5bfe96d12a333df: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
