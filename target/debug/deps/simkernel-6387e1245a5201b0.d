/root/repo/target/debug/deps/simkernel-6387e1245a5201b0.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

/root/repo/target/debug/deps/libsimkernel-6387e1245a5201b0.rlib: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

/root/repo/target/debug/deps/libsimkernel-6387e1245a5201b0.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/usr.rs:
