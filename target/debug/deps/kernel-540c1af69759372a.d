/root/repo/target/debug/deps/kernel-540c1af69759372a.d: crates/kernel/tests/kernel.rs Cargo.toml

/root/repo/target/debug/deps/libkernel-540c1af69759372a.rmeta: crates/kernel/tests/kernel.rs Cargo.toml

crates/kernel/tests/kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
