/root/repo/target/debug/deps/table6-46a7f9e68f4f0192.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-46a7f9e68f4f0192: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
