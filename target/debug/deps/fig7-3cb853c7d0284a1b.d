/root/repo/target/debug/deps/fig7-3cb853c7d0284a1b.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-3cb853c7d0284a1b: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
