/root/repo/target/debug/deps/pks_case3-25159b3186ddd6c3.d: crates/bench/src/bin/pks_case3.rs Cargo.toml

/root/repo/target/debug/deps/libpks_case3-25159b3186ddd6c3.rmeta: crates/bench/src/bin/pks_case3.rs Cargo.toml

crates/bench/src/bin/pks_case3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
