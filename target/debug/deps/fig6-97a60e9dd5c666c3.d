/root/repo/target/debug/deps/fig6-97a60e9dd5c666c3.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-97a60e9dd5c666c3: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
