/root/repo/target/debug/deps/gates-7f0603c9cc1c87a7.d: crates/bench/../../tests/gates.rs

/root/repo/target/debug/deps/gates-7f0603c9cc1c87a7: crates/bench/../../tests/gates.rs

crates/bench/../../tests/gates.rs:
