/root/repo/target/debug/deps/simkernel-bf51726bb9125880.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs

/root/repo/target/debug/deps/simkernel-bf51726bb9125880: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/smp.rs:
crates/kernel/src/usr.rs:
