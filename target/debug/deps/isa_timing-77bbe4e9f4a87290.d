/root/repo/target/debug/deps/isa_timing-77bbe4e9f4a87290.d: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libisa_timing-77bbe4e9f4a87290.rmeta: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs Cargo.toml

crates/timing/src/lib.rs:
crates/timing/src/cache.rs:
crates/timing/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
