/root/repo/target/debug/deps/pks_case3-0436bd7a75d05c4f.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/debug/deps/pks_case3-0436bd7a75d05c4f: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
