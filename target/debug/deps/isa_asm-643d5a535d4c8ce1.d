/root/repo/target/debug/deps/isa_asm-643d5a535d4c8ce1.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs

/root/repo/target/debug/deps/libisa_asm-643d5a535d4c8ce1.rlib: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs

/root/repo/target/debug/deps/libisa_asm-643d5a535d4c8ce1.rmeta: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/encode.rs:
crates/asm/src/parse.rs:
crates/asm/src/reg.rs:
