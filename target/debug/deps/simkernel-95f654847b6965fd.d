/root/repo/target/debug/deps/simkernel-95f654847b6965fd.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs Cargo.toml

/root/repo/target/debug/deps/libsimkernel-95f654847b6965fd.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/usr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
