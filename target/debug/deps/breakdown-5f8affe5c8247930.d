/root/repo/target/debug/deps/breakdown-5f8affe5c8247930.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/debug/deps/breakdown-5f8affe5c8247930: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
