/root/repo/target/debug/deps/attacks-62147e00c060db20.d: crates/bench/../../tests/attacks.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-62147e00c060db20.rmeta: crates/bench/../../tests/attacks.rs Cargo.toml

crates/bench/../../tests/attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
