/root/repo/target/debug/deps/table5-058a296676c6715f.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-058a296676c6715f: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
