/root/repo/target/debug/deps/isa_smp-baa44b97be790d37.d: crates/smp/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libisa_smp-baa44b97be790d37.rmeta: crates/smp/src/lib.rs Cargo.toml

crates/smp/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
