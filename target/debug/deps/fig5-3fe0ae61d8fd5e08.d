/root/repo/target/debug/deps/fig5-3fe0ae61d8fd5e08.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-3fe0ae61d8fd5e08: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
