/root/repo/target/debug/deps/fuzz_syscalls-cacfca328d188949.d: crates/bench/../../tests/fuzz_syscalls.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_syscalls-cacfca328d188949.rmeta: crates/bench/../../tests/fuzz_syscalls.rs Cargo.toml

crates/bench/../../tests/fuzz_syscalls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
