/root/repo/target/debug/deps/table5-f85e1838d33fdcf6.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-f85e1838d33fdcf6.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
