/root/repo/target/debug/deps/gates-58f841a8da454767.d: crates/bench/../../tests/gates.rs Cargo.toml

/root/repo/target/debug/deps/libgates-58f841a8da454767.rmeta: crates/bench/../../tests/gates.rs Cargo.toml

crates/bench/../../tests/gates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
