/root/repo/target/debug/deps/fig6-c1e4c54a0af93e96.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-c1e4c54a0af93e96: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
