/root/repo/target/debug/deps/machine-fd88b6f0a8b3de98.d: crates/sim/tests/machine.rs

/root/repo/target/debug/deps/machine-fd88b6f0a8b3de98: crates/sim/tests/machine.rs

crates/sim/tests/machine.rs:
