/root/repo/target/debug/deps/hwcost-9ebfe04675101be0.d: crates/hwcost/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhwcost-9ebfe04675101be0.rmeta: crates/hwcost/src/lib.rs Cargo.toml

crates/hwcost/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
