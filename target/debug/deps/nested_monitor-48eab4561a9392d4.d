/root/repo/target/debug/deps/nested_monitor-48eab4561a9392d4.d: crates/bench/../../tests/nested_monitor.rs Cargo.toml

/root/repo/target/debug/deps/libnested_monitor-48eab4561a9392d4.rmeta: crates/bench/../../tests/nested_monitor.rs Cargo.toml

crates/bench/../../tests/nested_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
