/root/repo/target/debug/deps/fig6-6b66975a787df0a4.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-6b66975a787df0a4: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
