/root/repo/target/debug/deps/mask_prop-abc7a37ef584e381.d: crates/core/tests/mask_prop.rs

/root/repo/target/debug/deps/mask_prop-abc7a37ef584e381: crates/core/tests/mask_prop.rs

crates/core/tests/mask_prop.rs:
