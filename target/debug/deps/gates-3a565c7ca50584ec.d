/root/repo/target/debug/deps/gates-3a565c7ca50584ec.d: crates/bench/../../tests/gates.rs Cargo.toml

/root/repo/target/debug/deps/libgates-3a565c7ca50584ec.rmeta: crates/bench/../../tests/gates.rs Cargo.toml

crates/bench/../../tests/gates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
