/root/repo/target/debug/deps/hwcost-55d1baf0374f4630.d: crates/hwcost/src/lib.rs

/root/repo/target/debug/deps/libhwcost-55d1baf0374f4630.rlib: crates/hwcost/src/lib.rs

/root/repo/target/debug/deps/libhwcost-55d1baf0374f4630.rmeta: crates/hwcost/src/lib.rs

crates/hwcost/src/lib.rs:
