/root/repo/target/debug/deps/table5-9911651950b977e1.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-9911651950b977e1: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
