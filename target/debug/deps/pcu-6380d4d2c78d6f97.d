/root/repo/target/debug/deps/pcu-6380d4d2c78d6f97.d: crates/core/tests/pcu.rs

/root/repo/target/debug/deps/pcu-6380d4d2c78d6f97: crates/core/tests/pcu.rs

crates/core/tests/pcu.rs:
