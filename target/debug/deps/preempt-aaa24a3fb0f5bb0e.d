/root/repo/target/debug/deps/preempt-aaa24a3fb0f5bb0e.d: crates/kernel/tests/preempt.rs

/root/repo/target/debug/deps/preempt-aaa24a3fb0f5bb0e: crates/kernel/tests/preempt.rs

crates/kernel/tests/preempt.rs:
