/root/repo/target/debug/deps/decomposition-e2cbf271be8371b8.d: crates/bench/../../tests/decomposition.rs

/root/repo/target/debug/deps/decomposition-e2cbf271be8371b8: crates/bench/../../tests/decomposition.rs

crates/bench/../../tests/decomposition.rs:
