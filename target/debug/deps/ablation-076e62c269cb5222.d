/root/repo/target/debug/deps/ablation-076e62c269cb5222.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-076e62c269cb5222: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
