/root/repo/target/debug/deps/table4-0aa03016ae6c06cc.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-0aa03016ae6c06cc: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
