/root/repo/target/debug/deps/extensions-98fa965c060306f5.d: crates/core/tests/extensions.rs

/root/repo/target/debug/deps/extensions-98fa965c060306f5: crates/core/tests/extensions.rs

crates/core/tests/extensions.rs:
