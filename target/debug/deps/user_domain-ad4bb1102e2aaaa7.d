/root/repo/target/debug/deps/user_domain-ad4bb1102e2aaaa7.d: crates/kernel/tests/user_domain.rs

/root/repo/target/debug/deps/user_domain-ad4bb1102e2aaaa7: crates/kernel/tests/user_domain.rs

crates/kernel/tests/user_domain.rs:
