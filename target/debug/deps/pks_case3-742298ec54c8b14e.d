/root/repo/target/debug/deps/pks_case3-742298ec54c8b14e.d: crates/bench/src/bin/pks_case3.rs Cargo.toml

/root/repo/target/debug/deps/libpks_case3-742298ec54c8b14e.rmeta: crates/bench/src/bin/pks_case3.rs Cargo.toml

crates/bench/src/bin/pks_case3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
