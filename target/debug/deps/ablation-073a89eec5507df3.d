/root/repo/target/debug/deps/ablation-073a89eec5507df3.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-073a89eec5507df3: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
