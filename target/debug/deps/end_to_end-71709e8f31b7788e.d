/root/repo/target/debug/deps/end_to_end-71709e8f31b7788e.d: crates/bench/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-71709e8f31b7788e: crates/bench/../../tests/end_to_end.rs

crates/bench/../../tests/end_to_end.rs:
