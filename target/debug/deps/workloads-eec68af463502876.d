/root/repo/target/debug/deps/workloads-eec68af463502876.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/workloads-eec68af463502876: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
