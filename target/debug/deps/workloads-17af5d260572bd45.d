/root/repo/target/debug/deps/workloads-17af5d260572bd45.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/libworkloads-17af5d260572bd45.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/libworkloads-17af5d260572bd45.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
