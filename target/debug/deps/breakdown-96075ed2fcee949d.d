/root/repo/target/debug/deps/breakdown-96075ed2fcee949d.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/debug/deps/breakdown-96075ed2fcee949d: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
