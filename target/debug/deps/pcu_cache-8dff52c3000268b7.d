/root/repo/target/debug/deps/pcu_cache-8dff52c3000268b7.d: crates/bench/benches/pcu_cache.rs Cargo.toml

/root/repo/target/debug/deps/libpcu_cache-8dff52c3000268b7.rmeta: crates/bench/benches/pcu_cache.rs Cargo.toml

crates/bench/benches/pcu_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
