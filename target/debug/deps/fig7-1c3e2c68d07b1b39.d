/root/repo/target/debug/deps/fig7-1c3e2c68d07b1b39.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-1c3e2c68d07b1b39: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
