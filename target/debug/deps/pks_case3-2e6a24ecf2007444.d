/root/repo/target/debug/deps/pks_case3-2e6a24ecf2007444.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/debug/deps/pks_case3-2e6a24ecf2007444: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
