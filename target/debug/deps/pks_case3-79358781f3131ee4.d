/root/repo/target/debug/deps/pks_case3-79358781f3131ee4.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/debug/deps/pks_case3-79358781f3131ee4: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
