/root/repo/target/debug/deps/breakdown-844059952caf7a1a.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/debug/deps/breakdown-844059952caf7a1a: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
