/root/repo/target/debug/deps/table6-e565c4ad323e34b6.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-e565c4ad323e34b6: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
