/root/repo/target/debug/deps/hwcost-6a50f67ba107240d.d: crates/hwcost/src/lib.rs

/root/repo/target/debug/deps/libhwcost-6a50f67ba107240d.rlib: crates/hwcost/src/lib.rs

/root/repo/target/debug/deps/libhwcost-6a50f67ba107240d.rmeta: crates/hwcost/src/lib.rs

crates/hwcost/src/lib.rs:
