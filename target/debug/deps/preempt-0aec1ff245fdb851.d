/root/repo/target/debug/deps/preempt-0aec1ff245fdb851.d: crates/kernel/tests/preempt.rs Cargo.toml

/root/repo/target/debug/deps/libpreempt-0aec1ff245fdb851.rmeta: crates/kernel/tests/preempt.rs Cargo.toml

crates/kernel/tests/preempt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
