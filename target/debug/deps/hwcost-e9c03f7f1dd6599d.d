/root/repo/target/debug/deps/hwcost-e9c03f7f1dd6599d.d: crates/hwcost/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhwcost-e9c03f7f1dd6599d.rmeta: crates/hwcost/src/lib.rs Cargo.toml

crates/hwcost/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
