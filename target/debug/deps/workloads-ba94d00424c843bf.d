/root/repo/target/debug/deps/workloads-ba94d00424c843bf.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/libworkloads-ba94d00424c843bf.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/debug/deps/libworkloads-ba94d00424c843bf.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
