/root/repo/target/debug/deps/observability-a335b5f0db780028.d: crates/bench/../../tests/observability.rs

/root/repo/target/debug/deps/observability-a335b5f0db780028: crates/bench/../../tests/observability.rs

crates/bench/../../tests/observability.rs:
