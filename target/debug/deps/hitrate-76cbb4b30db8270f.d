/root/repo/target/debug/deps/hitrate-76cbb4b30db8270f.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/debug/deps/hitrate-76cbb4b30db8270f: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
