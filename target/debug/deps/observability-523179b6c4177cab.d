/root/repo/target/debug/deps/observability-523179b6c4177cab.d: crates/bench/../../tests/observability.rs

/root/repo/target/debug/deps/observability-523179b6c4177cab: crates/bench/../../tests/observability.rs

crates/bench/../../tests/observability.rs:
