/root/repo/target/debug/deps/end_to_end-c1df9689edd1c1a4.d: crates/bench/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-c1df9689edd1c1a4.rmeta: crates/bench/../../tests/end_to_end.rs Cargo.toml

crates/bench/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
