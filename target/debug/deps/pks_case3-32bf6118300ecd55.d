/root/repo/target/debug/deps/pks_case3-32bf6118300ecd55.d: crates/bench/src/bin/pks_case3.rs Cargo.toml

/root/repo/target/debug/deps/libpks_case3-32bf6118300ecd55.rmeta: crates/bench/src/bin/pks_case3.rs Cargo.toml

crates/bench/src/bin/pks_case3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
