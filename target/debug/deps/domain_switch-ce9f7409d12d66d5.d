/root/repo/target/debug/deps/domain_switch-ce9f7409d12d66d5.d: crates/bench/benches/domain_switch.rs Cargo.toml

/root/repo/target/debug/deps/libdomain_switch-ce9f7409d12d66d5.rmeta: crates/bench/benches/domain_switch.rs Cargo.toml

crates/bench/benches/domain_switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
