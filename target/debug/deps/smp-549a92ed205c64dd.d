/root/repo/target/debug/deps/smp-549a92ed205c64dd.d: crates/bench/src/bin/smp.rs

/root/repo/target/debug/deps/smp-549a92ed205c64dd: crates/bench/src/bin/smp.rs

crates/bench/src/bin/smp.rs:
