/root/repo/target/debug/deps/ablation-85f92491994ed106.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-85f92491994ed106.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
