/root/repo/target/debug/deps/pks_case3-f81e0fb554011363.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/debug/deps/pks_case3-f81e0fb554011363: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
