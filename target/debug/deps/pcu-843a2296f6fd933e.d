/root/repo/target/debug/deps/pcu-843a2296f6fd933e.d: crates/core/tests/pcu.rs

/root/repo/target/debug/deps/pcu-843a2296f6fd933e: crates/core/tests/pcu.rs

crates/core/tests/pcu.rs:
