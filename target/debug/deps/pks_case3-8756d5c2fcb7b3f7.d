/root/repo/target/debug/deps/pks_case3-8756d5c2fcb7b3f7.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/debug/deps/pks_case3-8756d5c2fcb7b3f7: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
