/root/repo/target/debug/deps/kernel-86450660341e841e.d: crates/kernel/tests/kernel.rs Cargo.toml

/root/repo/target/debug/deps/libkernel-86450660341e841e.rmeta: crates/kernel/tests/kernel.rs Cargo.toml

crates/kernel/tests/kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
