/root/repo/target/debug/deps/fig6-19112d81a927a458.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-19112d81a927a458: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
