/root/repo/target/debug/deps/fig7-35b07280cba59a93.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-35b07280cba59a93: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
