/root/repo/target/debug/deps/observability-dbd5e37ad6803332.d: crates/bench/../../tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-dbd5e37ad6803332.rmeta: crates/bench/../../tests/observability.rs Cargo.toml

crates/bench/../../tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
