/root/repo/target/debug/deps/hitrate-35e523e2e06b9c5e.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/debug/deps/hitrate-35e523e2e06b9c5e: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
