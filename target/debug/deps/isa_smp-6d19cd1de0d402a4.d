/root/repo/target/debug/deps/isa_smp-6d19cd1de0d402a4.d: crates/smp/src/lib.rs

/root/repo/target/debug/deps/libisa_smp-6d19cd1de0d402a4.rlib: crates/smp/src/lib.rs

/root/repo/target/debug/deps/libisa_smp-6d19cd1de0d402a4.rmeta: crates/smp/src/lib.rs

crates/smp/src/lib.rs:
