/root/repo/target/debug/deps/ablation-5303a55f38ce9d18.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-5303a55f38ce9d18: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
