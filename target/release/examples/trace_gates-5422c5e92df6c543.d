/root/repo/target/release/examples/trace_gates-5422c5e92df6c543.d: crates/bench/../../examples/trace_gates.rs

/root/repo/target/release/examples/trace_gates-5422c5e92df6c543: crates/bench/../../examples/trace_gates.rs

crates/bench/../../examples/trace_gates.rs:
