/root/repo/target/release/examples/attack_gallery-bb336b2f91127bb9.d: crates/bench/../../examples/attack_gallery.rs

/root/repo/target/release/examples/attack_gallery-bb336b2f91127bb9: crates/bench/../../examples/attack_gallery.rs

crates/bench/../../examples/attack_gallery.rs:
