/root/repo/target/release/examples/kernel_decomposition-84d3e4abd7cd8b98.d: crates/bench/../../examples/kernel_decomposition.rs

/root/repo/target/release/examples/kernel_decomposition-84d3e4abd7cd8b98: crates/bench/../../examples/kernel_decomposition.rs

crates/bench/../../examples/kernel_decomposition.rs:
