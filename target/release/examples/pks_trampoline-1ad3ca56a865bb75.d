/root/repo/target/release/examples/pks_trampoline-1ad3ca56a865bb75.d: crates/bench/../../examples/pks_trampoline.rs

/root/repo/target/release/examples/pks_trampoline-1ad3ca56a865bb75: crates/bench/../../examples/pks_trampoline.rs

crates/bench/../../examples/pks_trampoline.rs:
