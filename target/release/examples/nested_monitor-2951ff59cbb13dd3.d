/root/repo/target/release/examples/nested_monitor-2951ff59cbb13dd3.d: crates/bench/../../examples/nested_monitor.rs

/root/repo/target/release/examples/nested_monitor-2951ff59cbb13dd3: crates/bench/../../examples/nested_monitor.rs

crates/bench/../../examples/nested_monitor.rs:
