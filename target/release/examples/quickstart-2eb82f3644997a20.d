/root/repo/target/release/examples/quickstart-2eb82f3644997a20.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2eb82f3644997a20: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
