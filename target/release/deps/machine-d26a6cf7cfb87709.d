/root/repo/target/release/deps/machine-d26a6cf7cfb87709.d: crates/sim/tests/machine.rs

/root/repo/target/release/deps/machine-d26a6cf7cfb87709: crates/sim/tests/machine.rs

crates/sim/tests/machine.rs:
