/root/repo/target/release/deps/user_domain-764a607e5b71a0fb.d: crates/kernel/tests/user_domain.rs

/root/repo/target/release/deps/user_domain-764a607e5b71a0fb: crates/kernel/tests/user_domain.rs

crates/kernel/tests/user_domain.rs:
