/root/repo/target/release/deps/table6-6acdae70b85fcd54.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-6acdae70b85fcd54: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
