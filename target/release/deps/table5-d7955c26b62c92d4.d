/root/repo/target/release/deps/table5-d7955c26b62c92d4.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-d7955c26b62c92d4: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
