/root/repo/target/release/deps/ablation-8c45df5f482efaf9.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-8c45df5f482efaf9: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
