/root/repo/target/release/deps/breakdown-a583218bafe403d8.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/release/deps/breakdown-a583218bafe403d8: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
