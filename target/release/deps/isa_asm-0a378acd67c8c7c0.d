/root/repo/target/release/deps/isa_asm-0a378acd67c8c7c0.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs

/root/repo/target/release/deps/isa_asm-0a378acd67c8c7c0: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/encode.rs:
crates/asm/src/parse.rs:
crates/asm/src/reg.rs:
