/root/repo/target/release/deps/pcu-a19fef8358a83aac.d: crates/core/tests/pcu.rs

/root/repo/target/release/deps/pcu-a19fef8358a83aac: crates/core/tests/pcu.rs

crates/core/tests/pcu.rs:
