/root/repo/target/release/deps/table4-dc4b0b32c4410f5a.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-dc4b0b32c4410f5a: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
