/root/repo/target/release/deps/pks_case3-44fade7bb7c6696a.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/release/deps/pks_case3-44fade7bb7c6696a: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
