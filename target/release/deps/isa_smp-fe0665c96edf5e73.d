/root/repo/target/release/deps/isa_smp-fe0665c96edf5e73.d: crates/smp/src/lib.rs

/root/repo/target/release/deps/isa_smp-fe0665c96edf5e73: crates/smp/src/lib.rs

crates/smp/src/lib.rs:
