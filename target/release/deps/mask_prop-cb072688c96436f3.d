/root/repo/target/release/deps/mask_prop-cb072688c96436f3.d: crates/core/tests/mask_prop.rs

/root/repo/target/release/deps/mask_prop-cb072688c96436f3: crates/core/tests/mask_prop.rs

crates/core/tests/mask_prop.rs:
