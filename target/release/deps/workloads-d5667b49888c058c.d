/root/repo/target/release/deps/workloads-d5667b49888c058c.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/release/deps/libworkloads-d5667b49888c058c.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/release/deps/libworkloads-d5667b49888c058c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
