/root/repo/target/release/deps/isa_timing-79c0114f450e20c4.d: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

/root/repo/target/release/deps/isa_timing-79c0114f450e20c4: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

crates/timing/src/lib.rs:
crates/timing/src/cache.rs:
crates/timing/src/model.rs:
