/root/repo/target/release/deps/hitrate-2ba6f7cc053447b4.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/release/deps/hitrate-2ba6f7cc053447b4: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
