/root/repo/target/release/deps/decomposition-a15dde8f9e9302e6.d: crates/bench/../../tests/decomposition.rs

/root/repo/target/release/deps/decomposition-a15dde8f9e9302e6: crates/bench/../../tests/decomposition.rs

crates/bench/../../tests/decomposition.rs:
