/root/repo/target/release/deps/fig6-68f4f22e93909c63.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-68f4f22e93909c63: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
