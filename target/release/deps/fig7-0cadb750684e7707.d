/root/repo/target/release/deps/fig7-0cadb750684e7707.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-0cadb750684e7707: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
