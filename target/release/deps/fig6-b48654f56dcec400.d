/root/repo/target/release/deps/fig6-b48654f56dcec400.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-b48654f56dcec400: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
