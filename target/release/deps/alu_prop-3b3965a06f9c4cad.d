/root/repo/target/release/deps/alu_prop-3b3965a06f9c4cad.d: crates/sim/tests/alu_prop.rs

/root/repo/target/release/deps/alu_prop-3b3965a06f9c4cad: crates/sim/tests/alu_prop.rs

crates/sim/tests/alu_prop.rs:
