/root/repo/target/release/deps/simkernel-d44cc93cdcaf86cd.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

/root/repo/target/release/deps/libsimkernel-d44cc93cdcaf86cd.rlib: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

/root/repo/target/release/deps/libsimkernel-d44cc93cdcaf86cd.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/usr.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/usr.rs:
