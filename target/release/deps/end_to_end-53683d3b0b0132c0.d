/root/repo/target/release/deps/end_to_end-53683d3b0b0132c0.d: crates/bench/../../tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-53683d3b0b0132c0: crates/bench/../../tests/end_to_end.rs

crates/bench/../../tests/end_to_end.rs:
