/root/repo/target/release/deps/isa_grid-5a99f30e6a04267a.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs

/root/repo/target/release/deps/isa_grid-5a99f30e6a04267a: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/domain.rs:
crates/core/src/layout.rs:
crates/core/src/pcu.rs:
crates/core/src/policy.rs:
crates/core/src/shootdown.rs:
