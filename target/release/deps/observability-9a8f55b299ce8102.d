/root/repo/target/release/deps/observability-9a8f55b299ce8102.d: crates/bench/../../tests/observability.rs

/root/repo/target/release/deps/observability-9a8f55b299ce8102: crates/bench/../../tests/observability.rs

crates/bench/../../tests/observability.rs:
