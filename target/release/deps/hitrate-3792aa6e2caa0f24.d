/root/repo/target/release/deps/hitrate-3792aa6e2caa0f24.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/release/deps/hitrate-3792aa6e2caa0f24: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
