/root/repo/target/release/deps/isa_grid_bench-b6b00cf6bbfda782.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/breakdown.rs crates/bench/src/figs.rs crates/bench/src/gatebench.rs crates/bench/src/hitrate.rs crates/bench/src/pks.rs crates/bench/src/report.rs crates/bench/src/smpbench.rs crates/bench/src/table4.rs crates/bench/src/table5.rs

/root/repo/target/release/deps/isa_grid_bench-b6b00cf6bbfda782: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/breakdown.rs crates/bench/src/figs.rs crates/bench/src/gatebench.rs crates/bench/src/hitrate.rs crates/bench/src/pks.rs crates/bench/src/report.rs crates/bench/src/smpbench.rs crates/bench/src/table4.rs crates/bench/src/table5.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/breakdown.rs:
crates/bench/src/figs.rs:
crates/bench/src/gatebench.rs:
crates/bench/src/hitrate.rs:
crates/bench/src/pks.rs:
crates/bench/src/report.rs:
crates/bench/src/smpbench.rs:
crates/bench/src/table4.rs:
crates/bench/src/table5.rs:
