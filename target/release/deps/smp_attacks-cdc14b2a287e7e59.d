/root/repo/target/release/deps/smp_attacks-cdc14b2a287e7e59.d: crates/bench/../../tests/smp_attacks.rs

/root/repo/target/release/deps/smp_attacks-cdc14b2a287e7e59: crates/bench/../../tests/smp_attacks.rs

crates/bench/../../tests/smp_attacks.rs:
