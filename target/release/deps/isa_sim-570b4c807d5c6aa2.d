/root/repo/target/release/deps/isa_sim-570b4c807d5c6aa2.d: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/csr.rs crates/sim/src/decode.rs crates/sim/src/disas.rs crates/sim/src/mem.rs crates/sim/src/mmu.rs crates/sim/src/trap.rs

/root/repo/target/release/deps/isa_sim-570b4c807d5c6aa2: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/csr.rs crates/sim/src/decode.rs crates/sim/src/disas.rs crates/sim/src/mem.rs crates/sim/src/mmu.rs crates/sim/src/trap.rs

crates/sim/src/lib.rs:
crates/sim/src/cpu.rs:
crates/sim/src/csr.rs:
crates/sim/src/decode.rs:
crates/sim/src/disas.rs:
crates/sim/src/mem.rs:
crates/sim/src/mmu.rs:
crates/sim/src/trap.rs:
