/root/repo/target/release/deps/fuzz_syscalls-fcd849689401b52f.d: crates/bench/../../tests/fuzz_syscalls.rs

/root/repo/target/release/deps/fuzz_syscalls-fcd849689401b52f: crates/bench/../../tests/fuzz_syscalls.rs

crates/bench/../../tests/fuzz_syscalls.rs:
