/root/repo/target/release/deps/smp-99cfe4df9719852c.d: crates/bench/src/bin/smp.rs

/root/repo/target/release/deps/smp-99cfe4df9719852c: crates/bench/src/bin/smp.rs

crates/bench/src/bin/smp.rs:
