/root/repo/target/release/deps/hwcost-d1683963a93868ed.d: crates/hwcost/src/lib.rs

/root/repo/target/release/deps/hwcost-d1683963a93868ed: crates/hwcost/src/lib.rs

crates/hwcost/src/lib.rs:
