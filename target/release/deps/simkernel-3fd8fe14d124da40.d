/root/repo/target/release/deps/simkernel-3fd8fe14d124da40.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs

/root/repo/target/release/deps/libsimkernel-3fd8fe14d124da40.rlib: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs

/root/repo/target/release/deps/libsimkernel-3fd8fe14d124da40.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/smp.rs:
crates/kernel/src/usr.rs:
