/root/repo/target/release/deps/fig8-f139edeca9013377.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-f139edeca9013377: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
