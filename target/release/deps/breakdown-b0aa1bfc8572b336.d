/root/repo/target/release/deps/breakdown-b0aa1bfc8572b336.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/release/deps/breakdown-b0aa1bfc8572b336: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
