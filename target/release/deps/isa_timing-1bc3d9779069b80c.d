/root/repo/target/release/deps/isa_timing-1bc3d9779069b80c.d: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

/root/repo/target/release/deps/libisa_timing-1bc3d9779069b80c.rlib: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

/root/repo/target/release/deps/libisa_timing-1bc3d9779069b80c.rmeta: crates/timing/src/lib.rs crates/timing/src/cache.rs crates/timing/src/model.rs

crates/timing/src/lib.rs:
crates/timing/src/cache.rs:
crates/timing/src/model.rs:
