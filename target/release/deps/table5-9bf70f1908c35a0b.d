/root/repo/target/release/deps/table5-9bf70f1908c35a0b.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-9bf70f1908c35a0b: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
