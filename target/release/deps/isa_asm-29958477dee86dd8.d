/root/repo/target/release/deps/isa_asm-29958477dee86dd8.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs

/root/repo/target/release/deps/libisa_asm-29958477dee86dd8.rlib: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs

/root/repo/target/release/deps/libisa_asm-29958477dee86dd8.rmeta: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/encode.rs crates/asm/src/parse.rs crates/asm/src/reg.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/encode.rs:
crates/asm/src/parse.rs:
crates/asm/src/reg.rs:
