/root/repo/target/release/deps/fig6-a32a856989f68865.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-a32a856989f68865: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
