/root/repo/target/release/deps/pcu_cache-a3d4b57d85268eb4.d: crates/bench/benches/pcu_cache.rs

/root/repo/target/release/deps/pcu_cache-a3d4b57d85268eb4: crates/bench/benches/pcu_cache.rs

crates/bench/benches/pcu_cache.rs:
