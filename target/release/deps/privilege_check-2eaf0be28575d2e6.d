/root/repo/target/release/deps/privilege_check-2eaf0be28575d2e6.d: crates/bench/benches/privilege_check.rs

/root/repo/target/release/deps/privilege_check-2eaf0be28575d2e6: crates/bench/benches/privilege_check.rs

crates/bench/benches/privilege_check.rs:
