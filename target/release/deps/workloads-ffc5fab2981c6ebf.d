/root/repo/target/release/deps/workloads-ffc5fab2981c6ebf.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/release/deps/libworkloads-ffc5fab2981c6ebf.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/release/deps/libworkloads-ffc5fab2981c6ebf.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
