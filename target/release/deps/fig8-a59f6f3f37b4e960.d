/root/repo/target/release/deps/fig8-a59f6f3f37b4e960.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-a59f6f3f37b4e960: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
