/root/repo/target/release/deps/kernel_paths-1fbe5563c09ce814.d: crates/bench/benches/kernel_paths.rs

/root/repo/target/release/deps/kernel_paths-1fbe5563c09ce814: crates/bench/benches/kernel_paths.rs

crates/bench/benches/kernel_paths.rs:
