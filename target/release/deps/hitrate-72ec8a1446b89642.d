/root/repo/target/release/deps/hitrate-72ec8a1446b89642.d: crates/bench/src/bin/hitrate.rs

/root/repo/target/release/deps/hitrate-72ec8a1446b89642: crates/bench/src/bin/hitrate.rs

crates/bench/src/bin/hitrate.rs:
