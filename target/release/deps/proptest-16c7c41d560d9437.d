/root/repo/target/release/deps/proptest-16c7c41d560d9437.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-16c7c41d560d9437: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
