/root/repo/target/release/deps/table6-66d907141e219582.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-66d907141e219582: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
