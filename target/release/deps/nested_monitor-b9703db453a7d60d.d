/root/repo/target/release/deps/nested_monitor-b9703db453a7d60d.d: crates/bench/../../tests/nested_monitor.rs

/root/repo/target/release/deps/nested_monitor-b9703db453a7d60d: crates/bench/../../tests/nested_monitor.rs

crates/bench/../../tests/nested_monitor.rs:
