/root/repo/target/release/deps/isa_obs-ddf9d90849abb1ac.d: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs

/root/repo/target/release/deps/isa_obs-ddf9d90849abb1ac: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs

crates/obs/src/lib.rs:
crates/obs/src/counters.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/ring.rs:
