/root/repo/target/release/deps/table5-2f6d7ee51ff8e670.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-2f6d7ee51ff8e670: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
