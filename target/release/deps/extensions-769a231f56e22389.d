/root/repo/target/release/deps/extensions-769a231f56e22389.d: crates/core/tests/extensions.rs

/root/repo/target/release/deps/extensions-769a231f56e22389: crates/core/tests/extensions.rs

crates/core/tests/extensions.rs:
