/root/repo/target/release/deps/workloads-a83c6418ac83ac10.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

/root/repo/target/release/deps/workloads-a83c6418ac83ac10: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/lmbench.rs crates/workloads/src/measure.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/lmbench.rs:
crates/workloads/src/measure.rs:
