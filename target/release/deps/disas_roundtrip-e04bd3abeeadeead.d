/root/repo/target/release/deps/disas_roundtrip-e04bd3abeeadeead.d: crates/sim/tests/disas_roundtrip.rs

/root/repo/target/release/deps/disas_roundtrip-e04bd3abeeadeead: crates/sim/tests/disas_roundtrip.rs

crates/sim/tests/disas_roundtrip.rs:
