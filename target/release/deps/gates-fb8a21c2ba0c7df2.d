/root/repo/target/release/deps/gates-fb8a21c2ba0c7df2.d: crates/bench/../../tests/gates.rs

/root/repo/target/release/deps/gates-fb8a21c2ba0c7df2: crates/bench/../../tests/gates.rs

crates/bench/../../tests/gates.rs:
