/root/repo/target/release/deps/fig5-3a577d70d7ff8c2c.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-3a577d70d7ff8c2c: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
