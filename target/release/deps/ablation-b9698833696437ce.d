/root/repo/target/release/deps/ablation-b9698833696437ce.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-b9698833696437ce: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
