/root/repo/target/release/deps/pks_case3-04ed2c7d8761dd39.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/release/deps/pks_case3-04ed2c7d8761dd39: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
