/root/repo/target/release/deps/table4-fbfd9d1f35076c73.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-fbfd9d1f35076c73: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
