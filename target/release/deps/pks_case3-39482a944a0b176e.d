/root/repo/target/release/deps/pks_case3-39482a944a0b176e.d: crates/bench/src/bin/pks_case3.rs

/root/repo/target/release/deps/pks_case3-39482a944a0b176e: crates/bench/src/bin/pks_case3.rs

crates/bench/src/bin/pks_case3.rs:
