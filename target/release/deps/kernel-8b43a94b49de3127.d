/root/repo/target/release/deps/kernel-8b43a94b49de3127.d: crates/kernel/tests/kernel.rs

/root/repo/target/release/deps/kernel-8b43a94b49de3127: crates/kernel/tests/kernel.rs

crates/kernel/tests/kernel.rs:
