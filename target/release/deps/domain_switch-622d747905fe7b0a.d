/root/repo/target/release/deps/domain_switch-622d747905fe7b0a.d: crates/bench/benches/domain_switch.rs

/root/repo/target/release/deps/domain_switch-622d747905fe7b0a: crates/bench/benches/domain_switch.rs

crates/bench/benches/domain_switch.rs:
