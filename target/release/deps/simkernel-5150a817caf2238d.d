/root/repo/target/release/deps/simkernel-5150a817caf2238d.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs

/root/repo/target/release/deps/simkernel-5150a817caf2238d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/image.rs crates/kernel/src/layout.rs crates/kernel/src/machine.rs crates/kernel/src/smp.rs crates/kernel/src/usr.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/image.rs:
crates/kernel/src/layout.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/smp.rs:
crates/kernel/src/usr.rs:
