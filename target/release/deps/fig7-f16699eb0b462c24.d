/root/repo/target/release/deps/fig7-f16699eb0b462c24.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-f16699eb0b462c24: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
