/root/repo/target/release/deps/criterion-4500557eb3cfeb11.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-4500557eb3cfeb11: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
