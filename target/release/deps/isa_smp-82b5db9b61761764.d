/root/repo/target/release/deps/isa_smp-82b5db9b61761764.d: crates/smp/src/lib.rs

/root/repo/target/release/deps/libisa_smp-82b5db9b61761764.rlib: crates/smp/src/lib.rs

/root/repo/target/release/deps/libisa_smp-82b5db9b61761764.rmeta: crates/smp/src/lib.rs

crates/smp/src/lib.rs:
