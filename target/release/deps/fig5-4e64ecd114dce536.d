/root/repo/target/release/deps/fig5-4e64ecd114dce536.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-4e64ecd114dce536: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
