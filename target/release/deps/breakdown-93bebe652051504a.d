/root/repo/target/release/deps/breakdown-93bebe652051504a.d: crates/bench/src/bin/breakdown.rs

/root/repo/target/release/deps/breakdown-93bebe652051504a: crates/bench/src/bin/breakdown.rs

crates/bench/src/bin/breakdown.rs:
