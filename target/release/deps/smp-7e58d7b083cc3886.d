/root/repo/target/release/deps/smp-7e58d7b083cc3886.d: crates/bench/src/bin/smp.rs

/root/repo/target/release/deps/smp-7e58d7b083cc3886: crates/bench/src/bin/smp.rs

crates/bench/src/bin/smp.rs:
