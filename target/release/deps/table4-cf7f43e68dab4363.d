/root/repo/target/release/deps/table4-cf7f43e68dab4363.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-cf7f43e68dab4363: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
