/root/repo/target/release/deps/fig5-581228f43f3ca6a7.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-581228f43f3ca6a7: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
