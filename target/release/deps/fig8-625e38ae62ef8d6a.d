/root/repo/target/release/deps/fig8-625e38ae62ef8d6a.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-625e38ae62ef8d6a: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
