/root/repo/target/release/deps/privilege_check-98d0174242f1962e.d: crates/bench/benches/privilege_check.rs

/root/repo/target/release/deps/privilege_check-98d0174242f1962e: crates/bench/benches/privilege_check.rs

crates/bench/benches/privilege_check.rs:
