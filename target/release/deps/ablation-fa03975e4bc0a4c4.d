/root/repo/target/release/deps/ablation-fa03975e4bc0a4c4.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-fa03975e4bc0a4c4: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
