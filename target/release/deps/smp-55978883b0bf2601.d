/root/repo/target/release/deps/smp-55978883b0bf2601.d: crates/bench/../../tests/smp.rs

/root/repo/target/release/deps/smp-55978883b0bf2601: crates/bench/../../tests/smp.rs

crates/bench/../../tests/smp.rs:
