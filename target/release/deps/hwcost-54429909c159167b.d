/root/repo/target/release/deps/hwcost-54429909c159167b.d: crates/hwcost/src/lib.rs

/root/repo/target/release/deps/libhwcost-54429909c159167b.rlib: crates/hwcost/src/lib.rs

/root/repo/target/release/deps/libhwcost-54429909c159167b.rmeta: crates/hwcost/src/lib.rs

crates/hwcost/src/lib.rs:
