/root/repo/target/release/deps/fig7-da5788bd518dddf8.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-da5788bd518dddf8: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
