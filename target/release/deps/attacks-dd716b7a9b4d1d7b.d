/root/repo/target/release/deps/attacks-dd716b7a9b4d1d7b.d: crates/bench/../../tests/attacks.rs

/root/repo/target/release/deps/attacks-dd716b7a9b4d1d7b: crates/bench/../../tests/attacks.rs

crates/bench/../../tests/attacks.rs:
