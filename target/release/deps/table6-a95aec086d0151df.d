/root/repo/target/release/deps/table6-a95aec086d0151df.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-a95aec086d0151df: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
