/root/repo/target/release/deps/isa_obs-a0ae5f298b6b4a97.d: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs

/root/repo/target/release/deps/libisa_obs-a0ae5f298b6b4a97.rlib: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs

/root/repo/target/release/deps/libisa_obs-a0ae5f298b6b4a97.rmeta: crates/obs/src/lib.rs crates/obs/src/counters.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/ring.rs

crates/obs/src/lib.rs:
crates/obs/src/counters.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/ring.rs:
