/root/repo/target/release/deps/preempt-289cae85c935eeb0.d: crates/kernel/tests/preempt.rs

/root/repo/target/release/deps/preempt-289cae85c935eeb0: crates/kernel/tests/preempt.rs

crates/kernel/tests/preempt.rs:
