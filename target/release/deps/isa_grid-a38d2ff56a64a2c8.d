/root/repo/target/release/deps/isa_grid-a38d2ff56a64a2c8.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs

/root/repo/target/release/deps/libisa_grid-a38d2ff56a64a2c8.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs

/root/repo/target/release/deps/libisa_grid-a38d2ff56a64a2c8.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/domain.rs crates/core/src/layout.rs crates/core/src/pcu.rs crates/core/src/policy.rs crates/core/src/shootdown.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/domain.rs:
crates/core/src/layout.rs:
crates/core/src/pcu.rs:
crates/core/src/policy.rs:
crates/core/src/shootdown.rs:
