//! Use case 1 (§6.1): decomposing a kernel with ISA-Grid.
//!
//! Boots the full guest kernel in its decomposed configuration — the
//! kernel body in a de-privileged basic domain, `satp` writers and the
//! four ioctl services behind gates in their own domains — runs a
//! workload, and prints what the PCU saw.
//!
//! Run with: `cargo run --release --example kernel_decomposition`

use simkernel::layout::sys;
use simkernel::{usr, KernelConfig, Platform, SimBuilder};

fn main() {
    // A user program that exercises files, services and the scheduler.
    let mut a = usr::program();
    a.li(isa_asm::Reg::A0, 2);
    usr::syscall(&mut a, sys::OPEN);
    a.mv(isa_asm::Reg::S5, isa_asm::Reg::A0);
    usr::repeat(&mut a, 50, "io", |a| {
        a.mv(isa_asm::Reg::A0, isa_asm::Reg::S5);
        a.li(isa_asm::Reg::A1, usr::heap_base());
        a.li(isa_asm::Reg::A2, 256);
        usr::syscall(a, sys::READ);
    });
    usr::repeat(&mut a, 20, "svc", |a| {
        a.andi(isa_asm::Reg::A0, isa_asm::Reg::S4, 3);
        a.li(isa_asm::Reg::A1, 0);
        usr::syscall(a, sys::IOCTL);
    });
    usr::exit_code(&mut a, 0);
    let user = a.assemble().expect("assembles");

    for (name, cfg) in [
        ("native ", KernelConfig::native()),
        ("ISA-Grid", KernelConfig::decomposed()),
    ] {
        let mut sim = SimBuilder::new(cfg)
            .platform(Platform::Rocket)
            .boot(&user, None);
        let code = sim.run_to_halt(100_000_000).unwrap();
        let cycles = sim.cycles();
        println!(
            "{name}: exit {code}, {cycles} cycles, {} instructions",
            sim.machine.steps
        );
        if cfg.mode.uses_grid() {
            let s = sim.machine.ext.stats;
            let c = sim.machine.ext.cache_stats();
            println!(
                "          domain now: {}, gate calls: {}, inst checks: {}, csr checks: {}",
                sim.machine.ext.current_domain(),
                s.gate_calls,
                s.inst_checks,
                s.csr_checks
            );
            println!(
                "          HPT reg cache: {:.3}% hit, SGT cache: {:.3}% hit, faults: {}",
                c.reg.hit_rate() * 100.0,
                c.sgt.hit_rate() * 100.0,
                s.faults
            );
        }
    }
    println!("\nThe decomposed kernel computed the same results with the kernel body");
    println!("holding no right to touch satp/stvec/MSR-analogues — those live in");
    println!("dedicated ISA domains reachable only through registered gates.");
}
