//! The Table 1 attack gallery: every surveyed ISA-abuse-based attack,
//! mounted through an "exploited kernel component" against the native
//! kernel (where it succeeds) and the ISA-Grid decomposed kernel (where
//! the PCU kills it).
//!
//! Run with: `cargo run --release --example attack_gallery`

use simkernel::layout::{exit, sys, vuln_op};
use simkernel::{usr, KernelConfig, SimBuilder};

const ATTACKS: [(u64, &str, &str); 8] = [
    (
        vuln_op::WRITE_STVEC,
        "Controlled-Channel Attacks [77]",
        "IDTR (stvec)",
    ),
    (
        vuln_op::READ_DBG,
        "FORESHADOW / TRESOR-HUNT [63,15]",
        "DR0-7 (dbg0)",
    ),
    (
        vuln_op::READ_PMU,
        "NAILGUN Attacks [51]",
        "PMU regs (hpmcounter)",
    ),
    (
        vuln_op::WRITE_WPCTL,
        "Stealthy Page-Table Attacks [64]",
        "CR0.CD/WP (wpctl)",
    ),
    (
        vuln_op::WRITE_SATP,
        "Super-Root-style PT takeover [79]",
        "CR3 (satp)",
    ),
    (
        vuln_op::WRITE_BTBCTL,
        "SgxPectre Attacks [16]",
        "MSR 0x48/0x49 (btbctl)",
    ),
    (
        vuln_op::WRITE_VFCTL,
        "Voltage-based Attacks [36,48,54]",
        "MSR 0x150 (vfctl)",
    ),
    (
        vuln_op::READ_CYCLE,
        "Timing side channels [77]",
        "rdtsc (cycle)",
    ),
];

fn mount(op: u64, cfg: KernelConfig) -> u64 {
    let mut a = usr::program();
    a.li(isa_asm::Reg::A0, op);
    usr::syscall(&mut a, sys::VULN);
    usr::exit_code(&mut a, 0x600D); // "good" for the attacker
    let prog = a.assemble().expect("assembles");
    let mut sim = SimBuilder::new(cfg).boot(&prog, None);
    sim.run_to_halt(5_000_000).unwrap()
}

fn main() {
    println!(
        "{:<36} {:<22} {:<10} ISA-Grid",
        "attack", "prerequisite", "native"
    );
    println!("{}", "-".repeat(88));
    let mut blocked = 0;
    for (op, attack, resource) in ATTACKS {
        let native = mount(op, KernelConfig::native());
        let mut cfg = KernelConfig::decomposed();
        cfg.deny_cycle = true;
        let grid = mount(op, cfg);
        let native_s = if native == 0x600D {
            "SUCCEEDS"
        } else {
            "blocked"
        };
        let grid_s = if grid & exit::GRID_FAULT == exit::GRID_FAULT {
            blocked += 1;
            format!("BLOCKED (cause {})", grid & 0xff)
        } else {
            "succeeds!?".into()
        };
        println!("{attack:<36} {resource:<22} {native_s:<10} {grid_s}");
    }
    println!("{}", "-".repeat(88));
    println!(
        "{blocked}/{} attacks mitigated by fine-grained ISA-resource control",
        ATTACKS.len()
    );
    assert_eq!(blocked, ATTACKS.len());
}
