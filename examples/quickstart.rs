//! Quickstart: create a machine with the ISA-Grid PCU, define a
//! de-privileged ISA domain, enter it through an unforgeable gate, and
//! watch a forbidden CSR write get stopped in hardware.
//!
//! Run with: `cargo run --example quickstart`

use isa_asm::{Asm, Reg::*};
use isa_grid::{DomainSpec, GateSpec, GridLayout, Pcu, PcuConfig};
use isa_sim::csr::addr;
use isa_sim::{mmio, Exit, Kind, Machine, DEFAULT_RAM_BASE as RAM};

fn main() {
    // 1. A guest program: drop to S-mode, hccall into a restricted
    //    domain, then try to write satp (the CR3 analogue).
    let mut a = Asm::new(RAM);
    a.la(T0, "mtrap");
    a.csrw(addr::MTVEC as u32, T0);
    a.li(T1, 0b11 << 11);
    a.csrrc(Zero, addr::MSTATUS as u32, T1);
    a.li(T1, 0b01 << 11);
    a.csrrs(Zero, addr::MSTATUS as u32, T1);
    a.la(T0, "kernel");
    a.csrw(addr::MEPC as u32, T0);
    a.mret();

    a.label("kernel");
    a.li(A0, 0); // gate id 0
    a.label("gate");
    a.hccall(A0);
    a.label("restricted");
    a.csrr(T0, addr::SATP as u32); // reading is allowed below
    a.csrw(addr::SATP as u32, T0); // writing is not -> ISA-Grid fault

    a.label("mtrap");
    a.csrr(A0, addr::MCAUSE as u32);
    a.li(T6, mmio::HALT);
    a.sd(A0, T6, 0);
    let prog = a.assemble().expect("assembles");

    // 2. A machine with the PCU plugged into the pipeline.
    let mut m = Machine::new(Pcu::new(PcuConfig::eight_e()));
    m.load_program(&prog);
    m.ext
        .install(&mut m.bus, GridLayout::new(0x8380_0000, 1 << 20));

    // 3. Domain-0 configuration: a compute domain that may *read* satp
    //    but never write it, plus one registered gate into it.
    let mut spec = DomainSpec::compute_only();
    spec.allow_insts([Kind::Csrrw, Kind::Csrrs]);
    spec.allow_csr_read(addr::SATP);
    let domain = m.ext.add_domain(&mut m.bus, &spec);
    let gate = m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("restricted"),
            dest_domain: domain,
        },
    );
    println!("registered {domain} and {gate}");

    // 4. Run. The write must die with ISA-Grid's CSR-privilege fault
    //    (cause 25), caught by domain-0's M-mode handler.
    match m.run(10_000) {
        Exit::Halted(cause) => {
            println!("machine halted with mcause = {cause}");
            assert_eq!(cause, isa_sim::Exception::CAUSE_GRID_CSR);
            println!(
                "satp write blocked by the PCU ({} faults, {} gate calls)",
                m.ext.stats.faults, m.ext.stats.gate_calls
            );
        }
        Exit::StepLimit => unreachable!("program always halts"),
    }
}
