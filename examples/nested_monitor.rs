//! Use case 2 (§6.2): a Nested-Kernel-style memory monitor built on
//! ISA-Grid. Page tables sit behind a write-protect range; only the
//! monitor's ISA domain may toggle `wpctl` (the CR0.WP analogue), and the
//! `Nest.Mon.Log` variant records every mapping change.
//!
//! Run with: `cargo run --release --example nested_monitor`

use isa_sim::mmu::pte;
use simkernel::layout::{self, sys};
use simkernel::{usr, KernelConfig, SimBuilder};

fn scratch_pte(page: u64) -> u64 {
    ((layout::SCRATCH_PAGES + page * 4096) >> 12 << 10)
        | pte::V
        | pte::R
        | pte::W
        | pte::U
        | pte::A
        | pte::D
}

fn main() {
    let mut a = usr::program();
    // Perform eight mapping updates through the mapctl syscall.
    usr::repeat(&mut a, 8, "map", |a| {
        a.andi(isa_asm::Reg::A0, isa_asm::Reg::S4, 7);
        // Compute the PTE for that page (base + page * (1 << 10)).
        a.slli(isa_asm::Reg::A1, isa_asm::Reg::A0, 10);
        a.li(isa_asm::Reg::T0, scratch_pte(0));
        a.add(isa_asm::Reg::A1, isa_asm::Reg::A1, isa_asm::Reg::T0);
        usr::syscall(a, sys::MAPCTL);
    });
    usr::exit_code(&mut a, 0);
    let user = a.assemble().expect("assembles");

    let mut sim = SimBuilder::new(KernelConfig::nested(true)).boot(&user, None);
    let code = sim.run_to_halt(50_000_000).unwrap();
    println!("exit code: {code}");
    println!(
        "monitor entries (hccalls): {}, returns (hcrets): {}",
        sim.machine.ext.stats.gate_calls - 1, // minus the boot gate
        sim.machine.ext.stats.gate_returns
    );
    println!(
        "write-protect still armed: {}",
        sim.machine.cpu.csrs.read_raw(isa_sim::csr::addr::WPCTL) & 1 == 1
    );
    let cursor = sim.machine.bus.read_u64(layout::MONLOG);
    println!("monitor log holds {cursor} mapping changes:");
    for i in 0..cursor.min(8) {
        let e = sim
            .machine
            .bus
            .read_u64(layout::MONLOG + layout::monlog::ENTRIES + i * 8);
        println!("  [{i}] pte = {e:#018x}");
    }
    println!("\nUnlike the original Nested Kernel, no binary scanning or code");
    println!("rewriting was needed: the PCU guarantees the outer kernel cannot");
    println!("execute a wpctl write even if the instruction bytes appear in its");
    println!("text — see tests/attacks.rs for the enforcement checks.");
}
