//! Watch ISA-Grid work instruction by instruction: run a guest through
//! an unforgeable gate crossing with the observability layer enabled
//! and print the structured trace-event stream as JSON lines — every
//! privilege-check verdict, cache probe, gate call, domain switch and
//! the final CSR-fault trap, in commit order — followed by the unified
//! counter snapshot.
//!
//! Run with: `cargo run --example trace_gates`

use isa_asm::{Asm, Reg::*};
use isa_grid::{DomainSpec, GateSpec, GridLayout, Pcu, PcuConfig};
use isa_obs::{ToJson, TraceSink};
use isa_sim::csr::addr;
use isa_sim::{mmio, Kind, Machine, DEFAULT_RAM_BASE as RAM};

fn main() {
    let mut a = Asm::new(RAM);
    a.la(T0, "mtrap");
    a.csrw(addr::MTVEC as u32, T0);
    a.li(T1, 0b11 << 11);
    a.csrrc(Zero, addr::MSTATUS as u32, T1);
    a.li(T1, 0b01 << 11);
    a.csrrs(Zero, addr::MSTATUS as u32, T1);
    a.la(T0, "kernel");
    a.csrw(addr::MEPC as u32, T0);
    a.mret();
    a.label("kernel");
    a.li(A0, 0);
    a.label("gate");
    a.hccall(A0); // -> helper domain
    a.label("helper");
    a.add(T0, T1, T2);
    a.csrr(T3, addr::CYCLE as u32);
    a.li(A0, 1);
    a.label("gate_back");
    a.hccall(A0); // -> back
    a.label("back");
    a.csrw(addr::SATP as u32, Zero); // denied: watch the fault fire
    a.label("mtrap");
    a.csrr(A0, addr::MCAUSE as u32);
    a.li(T6, mmio::HALT);
    a.sd(A0, T6, 0);
    a.nop();
    let prog = a.assemble().expect("assembles");

    let mut m = Machine::new(Pcu::new(PcuConfig::eight_e()));
    m.load_program(&prog);
    m.ext
        .install(&mut m.bus, GridLayout::new(0x8380_0000, 1 << 20));
    let mut spec = DomainSpec::compute_only();
    spec.allow_insts([Kind::Csrrw, Kind::Csrrs]);
    spec.allow_csr_read(addr::CYCLE);
    let d1 = m.ext.add_domain(&mut m.bus, &spec);
    let d2 = m.ext.add_domain(&mut m.bus, &spec);
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate"),
            dest_addr: prog.symbol("helper"),
            dest_domain: d2,
        },
    );
    m.ext.add_gate(
        &mut m.bus,
        GateSpec {
            gate_addr: prog.symbol("gate_back"),
            dest_addr: prog.symbol("back"),
            dest_domain: d1,
        },
    );

    // One ring, two handles: the machine stamps retires and traps, the
    // PCU stamps checks, cache probes and gate activity. Sharing the
    // sink is what keeps the stream in commit order.
    let sink = TraceSink::ring(4096);
    m.set_tracer(sink.clone());
    m.ext.set_tracer(sink.clone());

    for _ in 0..200 {
        m.step();
        if m.bus.halted().is_some() {
            break;
        }
    }

    // One JSON object per line, in commit order.
    for ev in sink.snapshot() {
        println!("{}", ev.to_json());
    }
    println!("counters = {}", m.ext.counters().to_json().pretty());
    println!("halted with mcause = {:?}", m.bus.halted());
}
