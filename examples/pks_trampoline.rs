//! Use case 3 (§6.3): protecting Intel-PKS-style protection keys with
//! ISA-Grid. The `pkr` CSR (PKRU/PKRS analogue) is writable only inside
//! a trampoline's ISA domain, so the classic MPK weakness — any code can
//! execute `wrpkru` — disappears.
//!
//! Run with: `cargo run --release --example pks_trampoline`

use isa_asm::{Asm, Reg::*};
use isa_grid::{DomainSpec, GateSpec, GridLayout, Pcu, PcuConfig};
use isa_sim::csr::addr;
use isa_sim::mmu::{pte, PageTableBuilder};
use isa_sim::{mmio, Exit, Kind, Machine, DEFAULT_RAM_BASE as RAM};

fn main() {
    // Guest: S-mode code with paging on. A "secret" page carries
    // protection key 3. The pkr register (2 bits per key) starts with
    // key 3 access-disabled; only the trampoline domain may change it.
    let mut a = Asm::new(RAM);
    a.la(T0, "mtrap");
    a.csrw(addr::MTVEC as u32, T0);
    a.li(T1, 0b11 << 11);
    a.csrrc(Zero, addr::MSTATUS as u32, T1);
    a.li(T1, 0b01 << 11);
    a.csrrs(Zero, addr::MSTATUS as u32, T1);
    // Deny key 3 before entering the kernel: pkr = 01 << 6.
    a.li(T0, 0b01 << 6);
    a.csrw(addr::PKR as u32, T0);
    a.csrr(T0, addr::MSCRATCH as u32); // satp prepared by host
    a.csrw(addr::SATP as u32, T0);
    a.la(T0, "kernel");
    a.csrw(addr::MEPC as u32, T0);
    a.mret();

    a.label("kernel");
    a.li(A0, 0);
    a.label("boot_gate");
    a.hccall(A0); // enter the untrusted domain
    a.label("untrusted");
    // The untrusted code asks the trampoline to open the secret domain,
    // reads the secret, then the trampoline closes it again.
    a.li(A0, 1);
    a.label("open_gate");
    a.hccall(A0); // -> trampoline (enable key 3)
    a.label("after_open");
    a.li(T0, 0x4000_0000);
    a.ld(S5, T0, 0); // read the secret
    a.li(A0, 2);
    a.label("close_gate");
    a.hccall(A0); // -> trampoline (disable key 3)
    a.label("after_close");
    // Directly executing wrpkr here would be the ERIM/Hodor attack:
    a.li(T0, 0);
    a.csrw(addr::PKR as u32, T0); // BLOCKED by the PCU
    a.label("never");
    a.li(S5, 0xbad);
    a.j("report");

    // The trampoline domain: the only place `csrw pkr` may execute.
    a.label("tramp_open");
    a.li(T0, 0);
    a.csrw(addr::PKR as u32, T0); // enable all keys
    a.li(A0, 3);
    a.label("open_ret_gate");
    a.hccall(A0);
    a.label("tramp_close");
    a.li(T0, 0b01 << 6);
    a.csrw(addr::PKR as u32, T0); // deny key 3 again
    a.li(A0, 4);
    a.label("close_ret_gate");
    a.hccall(A0);

    a.label("mtrap");
    a.csrr(T0, addr::MCAUSE as u32);
    a.label("report");
    a.li(T6, mmio::VALUE_LOG);
    a.sd(S5, T6, 0);
    a.sd(T0, T6, 0);
    a.li(T6, mmio::HALT);
    a.li(T5, 1);
    a.sd(T5, T6, 0);
    let prog = a.assemble().expect("assembles");

    // Machine + page tables: identity map code, alias 0x4000_0000 to a
    // secret frame tagged with protection key 3.
    let mut m = Machine::new(Pcu::new(PcuConfig::eight_e()));
    m.load_program(&prog);
    let mut ptb = PageTableBuilder::new(&mut m.bus, RAM + 0x20_0000, 0x10_0000);
    ptb.map_range(&mut m.bus, RAM, RAM, 2 << 20, pte::R | pte::W | pte::X);
    ptb.map_range(
        &mut m.bus,
        0x1000_0000,
        0x1000_0000,
        0x2000,
        pte::R | pte::W,
    );
    ptb.map_page(
        &mut m.bus,
        0x4000_0000,
        RAM + 0x10_0000,
        pte::R | pte::key(3),
    );
    m.bus.write_u64(RAM + 0x10_0000, 0x5EC12E7);
    m.cpu.csrs.write_raw(addr::MSCRATCH, ptb.satp());

    m.ext
        .install(&mut m.bus, GridLayout::new(0x8380_0000, 1 << 20));
    // Untrusted domain: compute + CSR classes, but NO pkr rights.
    let mut untrusted = DomainSpec::compute_only();
    untrusted.allow_insts([Kind::Csrrw, Kind::Csrrs]);
    // Trampoline domain: additionally owns pkr.
    let mut tramp = untrusted.clone();
    tramp.allow_csr_rw(addr::PKR);
    let du = m.ext.add_domain(&mut m.bus, &untrusted);
    let dt = m.ext.add_domain(&mut m.bus, &tramp);
    for (site, dest, dom) in [
        ("boot_gate", "untrusted", du),
        ("open_gate", "tramp_open", dt),
        ("close_gate", "tramp_close", dt),
        ("open_ret_gate", "after_open", du),
        ("close_ret_gate", "after_close", du),
    ] {
        m.ext.add_gate(
            &mut m.bus,
            GateSpec {
                gate_addr: prog.symbol(site),
                dest_addr: prog.symbol(dest),
                dest_domain: dom,
            },
        );
    }

    match m.run(100_000) {
        Exit::Halted(_) => {
            let log = m.bus.value_log();
            let secret = log[0];
            let cause = log[1];
            println!("secret read through the trampoline: {secret:#x}");
            println!("direct wrpkr outside the trampoline: mcause = {cause}");
            assert_eq!(secret, 0x5EC12E7);
            assert_eq!(cause, isa_sim::Exception::CAUSE_GRID_CSR);
            println!("PKS protected: wrpkrs confined to the trampoline domain.");
            println!("(Cost estimate vs other mechanisms: cargo run --bin pks_case3)");
        }
        Exit::StepLimit => unreachable!(),
    }
}
