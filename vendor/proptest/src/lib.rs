//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched; this vendored stub implements exactly the API surface the
//! workspace's property tests use: the `proptest!` macro, `prop_assert*`
//! macros, `any`, integer-range / tuple / `Just` / `prop_map` /
//! `prop_oneof!` / `prop::collection::vec` strategies, and
//! `ProptestConfig::with_cases`.
//!
//! Generation is a deterministic SplitMix64 stream seeded from the test
//! name, so runs are reproducible. There is no shrinking: a failing case
//! panics with the offending values in the message.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test runner configuration and error types.

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The name the `proptest!` macro and the prelude use.
    pub type ProptestConfig = Config;

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was filtered out by `prop_assume!`; retry with new values.
        Reject,
        /// An assertion failed; the test fails with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed the stream from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy (the result of [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Union over the given non-empty alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Generates any value of `T` from the raw bit stream.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// `T: Arbitrary` can be produced by `any::<T>()`.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy producing unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (self.start as i128, self.end as i128);
                    assert!(e > s, "empty range strategy");
                    (s + (rng.next_u64() as i128).rem_euclid(e - s)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start() as i128, *self.end() as i128);
                    assert!(e >= s, "empty range strategy");
                    (s + (rng.next_u64() as i128).rem_euclid(e - s + 1)) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.end > size.start, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                $(let $arg = ($strat).generate(&mut rng);)+
                let mut case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                match case() {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 65_536,
                            "proptest: too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {passed} failed: {msg}");
                    }
                }
            }
        }
        $crate::__proptest_body!(($cfg); $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Discard the current case and draw fresh values.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
