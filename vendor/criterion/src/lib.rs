//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched; this vendored stub implements the API surface the
//! workspace's benches use — `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`/`iter_batched`, `BatchSize`, `black_box` — with a
//! simple wall-clock measurement loop that reports median ns/iter.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure one closure under a name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        println!(
            "  {id:<40} {median:>14.1} ns/iter ({} samples)",
            samples.len()
        );
        self
    }

    /// Finish the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// How `iter_batched` amortises setup cost; ignored by this stub.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, excluding nothing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup, then a small fixed batch per sample.
        black_box(routine());
        const BATCH: u64 = 4;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }

    /// Time `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        const BATCH: u64 = 4;
        for _ in 0..BATCH {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += BATCH;
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
